//! The batch (tau-leap) kernel against its two contracts.
//!
//! **Exactness of the fallback path:** with `safety_threshold >= n`
//! every step of `run_batch` falls back to exact leap stepping, and —
//! because the fallback eligibility check consumes no randomness — the
//! whole run is bit-identical to `run_leap` for the same seed. That is a
//! hard equality, property-tested over a grid of cells.
//!
//! **Bounded error of the leap path:** with the default configuration
//! the kernel freezes propensities over each leap, a deliberate,
//! *bounded* approximation (Cao-style tau selection with epsilon = 0.05;
//! see `pp_engine::batch`). Stabilisation-time samples are therefore NOT
//! expected to match the leap kernel exactly — the tests below compare
//! them under an explicit error model: the Welch comparison of means
//! allows an epsilon-level relative drift on top of sampling noise, and
//! the Kolmogorov–Smirnov distance threshold is set above the alpha =
//! 0.001 critical value for identical distributions, so the tests catch
//! gross divergence (wrong propensities, broken fallback) while
//! tolerating the documented O(epsilon) drift.

use proptest::prelude::*;

use uniform_k_partition::engine::observer::{FallbackReason, Observer};
use uniform_k_partition::engine::protocol::StateId;
use uniform_k_partition::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `run_batch` with `safety_threshold = n` (every step low-count →
    /// always falls back) is bit-identical to `run_leap`: same
    /// interaction and effective-interaction counts, same final
    /// configuration, for the same seed.
    #[test]
    fn full_fallback_is_bit_identical_to_leap(
        k in 2usize..=4,
        n in 10u64..=60,
        seed in 1u64..100_000,
    ) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let sig = kp.stable_signature(n);
        let sim = Simulator::new(&proto);

        let mut pop_leap = CountPopulation::new(&proto, n);
        let mut sched_leap = UniformRandomScheduler::from_seed(seed);
        let leap = sim
            .run_leap(&mut pop_leap, &mut sched_leap, &sig, u64::MAX)
            .unwrap();

        let cfg = BatchConfig {
            safety_threshold: n,
            ..BatchConfig::default()
        };
        let mut pop_batch = CountPopulation::new(&proto, n);
        let mut sched_batch = UniformRandomScheduler::from_seed(seed);
        let batch = sim
            .run_batch_configured(
                &mut pop_batch,
                &mut sched_batch,
                &sig,
                u64::MAX,
                &cfg,
                &mut uniform_k_partition::engine::observer::NullObserver,
            )
            .unwrap();

        prop_assert_eq!(leap, batch);
        prop_assert_eq!(pop_leap.counts(), pop_batch.counts());
    }
}

/// Counts applied leaps so the distribution test can prove it exercised
/// the approximate path rather than comparing exact against exact.
#[derive(Default)]
struct LeapCounter {
    leaps: u64,
}

impl Observer for LeapCounter {
    fn on_interaction(
        &mut self,
        _step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        _counts: &[u64],
    ) {
    }
    fn on_leap_batch(&mut self, _last_step: u64, _tau: u64, _effective: u64, _counts: &[u64]) {
        self.leaps += 1;
    }
    fn on_batch_fallback(&mut self, _reason: FallbackReason) {}
}

/// Stabilisation-time samples (scheduler interactions) for one kernel.
fn samples(batch_kernel: bool, k: usize, n: u64, trials: u64, seed_base: u64) -> (Vec<f64>, u64) {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let sig = kp.stable_signature(n);
    let sim = Simulator::new(&proto);
    let mut out = Vec::with_capacity(trials as usize);
    let mut leaps = 0;
    for t in 0..trials {
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed_base + t);
        let r = if batch_kernel {
            let mut counter = LeapCounter::default();
            let r = sim
                .run_batch_observed(&mut pop, &mut sched, &sig, u64::MAX, &mut counter)
                .unwrap();
            leaps += counter.leaps;
            r
        } else {
            sim.run_leap(&mut pop, &mut sched, &sig, u64::MAX).unwrap()
        };
        out.push(r.interactions as f64);
    }
    (out, leaps)
}

fn mean_sem(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Two-sample Kolmogorov–Smirnov statistic (max CDF distance).
fn ks_statistic(a: &mut [f64], b: &mut [f64]) -> f64 {
    a.sort_by(|x, y| x.partial_cmp(y).unwrap());
    b.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (mut i, mut j, mut d) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Batch vs leap on a mid-size cell, under the bounded-error model
/// spelled out in the module docs: the batch kernel's mean
/// interactions-to-stability may drift from the leap kernel's by up to
/// ~epsilon (the tau-selection parameter, 0.05 by default) relative,
/// plus ordinary sampling noise; the KS distance threshold 0.25 sits
/// well above the ~0.17 alpha = 0.001 critical value for 120-vs-120
/// identical samples. The test also asserts the batch runs actually
/// leapt — otherwise it would vacuously compare exact against exact.
#[test]
fn batch_and_leap_agree_in_distribution_on_mid_size_cell() {
    let (k, n, trials) = (3usize, 600u64, 120u64);
    let epsilon = 0.05; // BatchConfig::default().epsilon
    let (mut leap, _) = samples(false, k, n, trials, 300_000);
    let (mut batch, leaps) = samples(true, k, n, trials, 400_000);
    assert!(
        leaps > 0,
        "batch runs never leapt at n={n} — the comparison is vacuous"
    );

    let (m_leap, s_leap) = mean_sem(&leap);
    let (m_batch, s_batch) = mean_sem(&batch);
    // Welch comparison with an explicit epsilon-drift allowance: the
    // tolerated gap is 2*epsilon relative (twice the per-leap freeze
    // bound, generous for accumulated drift) plus 4 joint standard
    // errors of sampling noise.
    let gap = (m_batch - m_leap).abs();
    let tolerance = 2.0 * epsilon * m_leap + 4.0 * (s_leap * s_leap + s_batch * s_batch).sqrt();
    assert!(
        gap < tolerance,
        "means diverged beyond the bounded-error model: leap {m_leap:.0} ± {s_leap:.0}, \
batch {m_batch:.0} ± {s_batch:.0}, gap {gap:.0} > tolerance {tolerance:.0}"
    );

    let d = ks_statistic(&mut leap, &mut batch);
    assert!(
        d < 0.25,
        "KS distance {d:.3} exceeds the bounded-error threshold 0.25"
    );
}
