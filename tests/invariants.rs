//! Property-based tests (V2 and engine-level invariants) with proptest:
//! Lemma 1 along random executions, conservation of agents, symmetry of
//! the compiled table, stable-outcome correctness across the parameter
//! space, and bit-reproducibility.

use pp_engine::observer::Observer;
use pp_engine::protocol::StateId;
use pp_engine::stability::StabilityCriterion;
use proptest::prelude::*;
use uniform_k_partition::prelude::*;

/// Observer asserting Lemma 1 after every interaction.
struct Lemma1Checker {
    kp: UniformKPartition,
    violations: u64,
}

impl Observer for Lemma1Checker {
    fn on_interaction(
        &mut self,
        _step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        counts: &[u64],
    ) {
        if !self.kp.lemma1_holds(counts) {
            self.violations += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1 holds after every single interaction of a random run, and
    /// the run ends in the expected uniform partition.
    #[test]
    fn lemma1_holds_along_random_runs(
        k in 2usize..7,
        n in 3u64..40,
        seed in any::<u64>(),
    ) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let mut checker = Lemma1Checker { kp, violations: 0 };
        let res = Simulator::new(&proto).run_observed(
            &mut pop,
            &mut sched,
            &kp.stable_signature(n),
            kp.interaction_budget(n),
            &mut checker,
        );
        prop_assert!(res.is_ok(), "did not stabilise: {res:?}");
        prop_assert_eq!(checker.violations, 0, "Lemma 1 violated mid-run");
        prop_assert_eq!(pop.group_sizes(&proto), kp.expected_group_sizes(n));
    }

    /// Agent conservation: counts always sum to n, whatever the protocol
    /// does (checked on the k-partition protocol across the sweep).
    #[test]
    fn population_is_conserved(
        k in 2usize..7,
        n in 3u64..40,
        seed in any::<u64>(),
        steps in 1u64..3000,
    ) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        struct SumCheck { n: u64, bad: bool }
        impl Observer for SumCheck {
            fn on_interaction(&mut self, _s: u64, _p: StateId, _q: StateId,
                              _p2: StateId, _q2: StateId, counts: &[u64]) {
                if counts.iter().sum::<u64>() != self.n { self.bad = true; }
            }
        }
        let mut chk = SumCheck { n, bad: false };
        Simulator::new(&proto).run_fixed(&mut pop, &mut sched, steps, &mut chk);
        prop_assert!(!chk.bad);
        prop_assert_eq!(pop.counts().iter().sum::<u64>(), n);
    }

    /// The compiled protocol is symmetric and deterministic for every k,
    /// and its state count is exactly 3k − 2.
    #[test]
    fn protocol_shape(k in 2usize..24) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        prop_assert!(proto.is_symmetric());
        prop_assert_eq!(proto.num_states(), 3 * k - 2);
        prop_assert_eq!(proto.num_groups(), k);
        // f maps every state into 1..=k.
        for s in proto.states() {
            let g = proto.group_of(s).number();
            prop_assert!(g >= 1 && g <= k);
        }
    }

    /// Transition totals: every rule preserves the number of agents (2 in,
    /// 2 out) — trivially true by construction, so instead check the
    /// *semantic* conservation laws: settled g_k agents are never consumed
    /// by any rule.
    #[test]
    fn gk_is_absorbing(k in 3usize..12) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let gk = kp.g(k);
        for p in proto.states() {
            let (r1, r2) = proto.delta(gk, p);
            prop_assert_eq!(r1, gk, "rule consumes g_k: ({:?}, {:?})", gk, p);
            let (s1, s2) = proto.delta(p, gk);
            prop_assert_eq!(s2, gk);
            let _ = (r2, s1);
        }
    }

    /// Determinism: identical seeds give identical runs; different seeds
    /// (almost surely) differ in interaction counts for non-trivial n.
    #[test]
    fn runs_are_reproducible(k in 2usize..6, n in 10u64..40, seed in any::<u64>()) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let run = |s: u64| {
            let mut pop = CountPopulation::new(&proto, n);
            let mut sched = UniformRandomScheduler::from_seed(s);
            let r = Simulator::new(&proto)
                .run(&mut pop, &mut sched, &kp.stable_signature(n), kp.interaction_budget(n))
                .unwrap();
            (r.interactions, pop.counts().to_vec())
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b);
    }

    /// The stable signature is group-closure-stable: whenever the
    /// signature fires, the sound-and-complete criterion agrees.
    #[test]
    fn signature_implies_group_closure(k in 2usize..6, n in 3u64..24, seed in any::<u64>()) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        Simulator::new(&proto)
            .run(&mut pop, &mut sched, &kp.stable_signature(n), kp.interaction_budget(n))
            .unwrap();
        prop_assert!(pp_engine::stability::GroupClosure::default()
            .is_stable(&proto, pop.counts()));
    }

    /// Ratio partitions hit their exact expected sizes for random ratios.
    #[test]
    fn ratio_partition_exact_sizes(
        r1 in 1u32..4, r2 in 1u32..4, r3 in 1u32..3,
        mult in 1u64..5,
        seed in any::<u64>(),
    ) {
        use uniform_k_partition::protocols::ratio::RatioPartition;
        let rp = RatioPartition::new(vec![r1, r2, r3]);
        let s = rp.num_slots() as u64;
        let n = s * mult + 3; // deliberately non-divisible sometimes
        let proto = rp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        Simulator::new(&proto)
            .run(&mut pop, &mut sched, &rp.stable_signature(n),
                 rp.slots().interaction_budget(n))
            .unwrap();
        prop_assert_eq!(pop.group_sizes(&proto), rp.expected_group_sizes(n));
    }
}

/// Non-proptest sanity: the Lemma 1 residual is *sensitive* — corrupting
/// a stable configuration breaks it (guards against a vacuous invariant).
#[test]
fn lemma1_checker_is_not_vacuous() {
    let kp = UniformKPartition::new(5);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 20);
    let mut sched = UniformRandomScheduler::from_seed(1);
    Simulator::new(&proto)
        .run(
            &mut pop,
            &mut sched,
            &kp.stable_signature(20),
            kp.interaction_budget(20),
        )
        .unwrap();
    assert!(kp.lemma1_holds(pop.counts()));
    let mut corrupted = pop.counts().to_vec();
    corrupted[kp.g(5).index()] += 1;
    corrupted[kp.g(1).index()] -= 1;
    assert!(!kp.lemma1_holds(&corrupted));
}
