//! End-to-end: pp-lint's statically derived invariants drive pp-verify's
//! pruned invariant checks, and the pruning is (a) measurably cheaper
//! than exhaustive exploration and (b) verdict-identical to it.
//!
//! The chain under test:
//!
//! 1. pp-lint extracts the integer P-invariant basis of Algorithm 1 from
//!    the displacement matrix and proves the paper's Lemma 1 residuals
//!    lie in its span (a static derivation, independent of `n`).
//! 2. The same functionals, handed to `pp_verify::oracle` as plain
//!    coefficient vectors, are certified inductively — so checking
//!    "Lemma 1 holds at every reachable configuration" explores **zero**
//!    configurations, versus the thousands the exhaustive
//!    `ConfigGraph::check_invariant` path visits.
//! 3. On a deliberately broken protocol the certificate is refused and
//!    the oracle transparently falls back to exhaustive exploration,
//!    agreeing with the direct path and producing a counterexample.

use pp_lint::registry;
use pp_protocols::kpartition::UniformKPartition;
use pp_verify::oracle::{self, LinearInvariant};
use pp_verify::ConfigGraph;

const MAX_CONFIGS: usize = 400_000;

/// pp-lint's `Functional` and pp-verify's `LinearInvariant` are the same
/// plain data; the conversion is field-for-field.
fn to_oracle(f: &pp_lint::Functional) -> LinearInvariant {
    LinearInvariant::new(f.name.clone(), f.coeffs.clone())
}

#[test]
fn lemma1_lies_in_the_derived_invariant_span() {
    for k in [2usize, 3, 4, 5] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let basis = pp_lint::invariant::extract(&proto);
        assert!(
            basis.rank() >= k - 1,
            "k={k}: rank {} too small",
            basis.rank()
        );
        for f in registry::lemma1_functionals(&kp) {
            assert!(basis.implies(&f), "k={k}: {} not implied", f.name);
        }
    }
}

#[test]
fn pruned_lemma1_check_explores_zero_configs_and_matches_exhaustive() {
    for (k, n, min_baseline) in [(2usize, 8u64, 10usize), (3, 10, 50), (4, 8, 100)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();

        // Exhaustive path: build the graph, evaluate every residual at
        // every reachable configuration.
        let graph = ConfigGraph::explore(&proto, n, MAX_CONFIGS).unwrap();
        let exhaustive_configs = graph.num_configs();
        assert!(exhaustive_configs > 1, "k={k} n={n}: trivial graph");
        let exhaustive_holds = graph
            .check_invariant(|cfg| {
                let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                kp.lemma1_holds(&counts)
            })
            .is_none();

        // Pruned path: the statically derived functionals certify
        // inductively, so no configuration is ever visited.
        let mut pruned_configs = 0usize;
        let mut pruned_holds = true;
        for f in registry::lemma1_functionals(&kp) {
            let check = oracle::check_conserved(&proto, n, MAX_CONFIGS, &to_oracle(&f)).unwrap();
            assert!(check.pruned, "k={k}: {} fell back to exploration", f.name);
            pruned_configs += check.configs_explored;
            pruned_holds &= check.holds;
        }

        assert_eq!(
            pruned_holds, exhaustive_holds,
            "k={k} n={n}: verdicts differ"
        );
        assert!(
            exhaustive_holds,
            "Lemma 1 must hold (Theorem 1 precondition)"
        );
        assert_eq!(
            pruned_configs, 0,
            "k={k} n={n}: pruned path explored configs"
        );
        // The measured reduction the oracle exists for: N → 0.
        assert!(
            exhaustive_configs > min_baseline,
            "k={k} n={n}: exhaustive baseline suspiciously small ({exhaustive_configs})"
        );
    }
}

#[test]
fn registry_entries_certify_end_to_end() {
    // Every declared invariant of every sweep-facing registry entry is
    // inductively certifiable by the verify oracle — the exact property
    // the pp-sweep lint gate relies on.
    for entry in [
        registry::ukp(3),
        registry::ukp(5),
        registry::oneside(4),
        registry::bipartition(),
    ] {
        let invs: Vec<LinearInvariant> = entry
            .expect
            .declared_invariants
            .iter()
            .map(to_oracle)
            .collect();
        assert!(
            oracle::certify_all(&entry.proto, &invs).is_ok(),
            "{}: declared invariants not certifiable",
            entry.slug
        );
    }
}

#[test]
fn broken_protocol_falls_back_and_both_paths_agree() {
    // Reuse the conservation-breaking mutation from the lint tests:
    // rule 10 releases (g1, initial) instead of (initial, initial).
    let k = 3usize;
    let n = 8u64;
    let kp = UniformKPartition::new(k);
    let mut spec = kp.spec();
    spec.retain_rules(|_, _, _, _, label| label != Some("r10"));
    spec.add_rule_symmetric_labelled(kp.d(1), kp.g(1), kp.g(1), kp.initial(), "r10");
    let proto = spec.compile().unwrap();

    let broken = registry::lemma1_functionals(&kp)
        .iter()
        .map(to_oracle)
        .find(|inv| oracle::certify(&proto, inv).is_err())
        .expect("the mutation must refute at least one residual");

    // Oracle path: certificate refused, exhaustive fallback engaged.
    let check = oracle::check_conserved(&proto, n, MAX_CONFIGS, &broken).unwrap();
    assert!(!check.pruned);
    assert!(check.configs_explored > 0);
    assert!(check.refutation.is_some());

    // Direct exhaustive path must reach the same verdict.
    let graph = ConfigGraph::explore(&proto, n, MAX_CONFIGS).unwrap();
    let expected = broken.initial_value(&proto, n);
    let direct_holds = graph
        .check_invariant(|cfg| broken.value_at(cfg) == expected)
        .is_none();
    assert_eq!(check.holds, direct_holds);

    // The leak is real: the residual actually drifts somewhere reachable.
    assert!(!check.holds, "mutated rule 10 must break Lemma 1");
    let cx = check.counterexample.expect("fallback provides a witness");
    assert_ne!(broken.value_at(&cx), expected);
}

#[test]
fn pruning_telemetry_counters_advance() {
    let kp = UniformKPartition::new(3);
    let proto = kp.compile();
    let before = pp_telemetry::Snapshot::capture_global()
        .value("verify.pruned_checks")
        .unwrap_or(0);
    for f in registry::lemma1_functionals(&kp) {
        let check = oracle::check_conserved(&proto, 6, MAX_CONFIGS, &to_oracle(&f)).unwrap();
        assert!(check.pruned);
    }
    let after = pp_telemetry::Snapshot::capture_global()
        .value("verify.pruned_checks")
        .unwrap_or(0);
    assert!(
        after >= before + 2,
        "pruned_checks counter did not advance ({before} -> {after})"
    );
}
