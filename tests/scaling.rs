//! E7: coarse statistical checks of the paper's §5 scaling claims, kept
//! deliberately loose (few trials, generous margins) so they are stable
//! in CI while still catching order-of-magnitude regressions.

use pp_analysis::experiments::{kpartition_cell, kpartition_grouping_cell};
use pp_analysis::fit;

/// "The number of interactions increases exponentially with k": at fixed
/// n, doubling k from 3 to 6 should multiply the cost well beyond the
/// k-linear factor. We assert a conservative 2x.
#[test]
fn cost_grows_quickly_in_k() {
    let n = 120u64;
    let trials = 12;
    let mean3 = kpartition_cell(3, n, trials, 7).summary().mean;
    let mean6 = kpartition_cell(6, n, trials, 7).summary().mean;
    assert!(
        mean6 > 2.0 * mean3,
        "k=6 ({mean6}) should cost well over 2x k=3 ({mean3})"
    );
}

/// "More than linearly but less than exponentially with n": the log-log
/// slope over n ∈ {60, 120, 240, 480} at k = 4 should be comfortably
/// above 1 (superlinear) and below 4 (clearly subexponential over this
/// range — an exponential would blow past any fixed power).
#[test]
fn cost_superlinear_subexponential_in_n() {
    let trials = 12;
    let ns = [60u64, 120, 240, 480];
    let pts: Vec<(f64, f64)> = ns
        .iter()
        .map(|&n| (n as f64, kpartition_cell(4, n, trials, 11).summary().mean))
        .collect();
    let (b, r2) = fit::power_law_exponent(&pts);
    assert!(b > 1.1, "expected superlinear growth, got exponent {b}");
    assert!(b < 4.0, "expected subexponential growth, got exponent {b}");
    assert!(r2 > 0.8, "power law should fit well, r2 = {r2}");
}

/// Figure 3's sawtooth driver: for n just past a multiple of k, the final
/// grouping accounts for a large share of the run ("more than half of the
/// total number of interactions for n = c·k + k and c·k + (k+1)").
/// We assert the weaker, stable form: the last grouping's mean increment
/// exceeds the first grouping's by a wide margin.
#[test]
fn final_grouping_dominates() {
    let k = 4usize;
    let n = 24u64; // c·k with c = 6
    let cell = kpartition_grouping_cell(k, n, 16, 3);
    let first = cell.breakdown.increments.first().unwrap().mean;
    let last = cell.breakdown.increments.last().unwrap().mean;
    assert!(
        last > 3.0 * first,
        "last grouping ({last}) should dwarf the first ({first})"
    );
}

/// The n mod k effect (Figure 3's jaggedness): at equal scale, finishing
/// a population with remainder 1 costs more than one with remainder
/// k − 1, because the remainder-1 run must complete ⌊n/k⌋ full groupings
/// from a nearly-exhausted pool. Compare n = 25 (r = 1) against n = 23
/// (r = 3) at k = 4: the paper's curves dip right after multiples of k.
#[test]
fn remainder_effect_visible() {
    let trials = 24;
    let just_past = kpartition_cell(4, 25, trials, 19).summary().mean;
    let just_before = kpartition_cell(4, 23, trials, 19).summary().mean;
    assert!(
        just_past > just_before,
        "n=25 (r=1, {just_past}) should cost more than n=23 (r=3, {just_before})"
    );
}
