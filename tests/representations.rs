//! Cross-representation and cross-scheduler consistency: the count-vector
//! population (used for all figures) and the per-agent population must be
//! statistically interchangeable, and the graph scheduler on a complete
//! graph must match the uniform-pair scheduler.

use pp_engine::population::AgentPopulation;
use pp_topo::{CompleteTopology, EdgeListTopology, TopologyScheduler};
use uniform_k_partition::prelude::*;

/// Means of interactions-to-stability from the two representations agree
/// within sampling error (they implement the same Markov chain).
#[test]
fn count_and_agent_representations_agree_statistically() {
    let kp = UniformKPartition::new(3);
    let proto = kp.compile();
    let n = 24u64;
    let trials = 60u64;
    let sig = kp.stable_signature(n);

    let mut count_sum = 0u64;
    for seed in 0..trials {
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        count_sum += Simulator::new(&proto)
            .run(&mut pop, &mut sched, &sig, kp.interaction_budget(n))
            .unwrap()
            .interactions;
        assert_eq!(pop.group_sizes(&proto), kp.expected_group_sizes(n));
    }

    let mut agent_sum = 0u64;
    for seed in 0..trials {
        let mut pop = AgentPopulation::new(&proto, n as usize);
        let mut sched = UniformRandomScheduler::from_seed(1_000_000 + seed);
        agent_sum += Simulator::new(&proto)
            .run_agents(&mut pop, &mut sched, &sig, kp.interaction_budget(n))
            .unwrap()
            .interactions;
        assert_eq!(pop.group_sizes(&proto), kp.expected_group_sizes(n));
    }

    let count_mean = count_sum as f64 / trials as f64;
    let agent_mean = agent_sum as f64 / trials as f64;
    let ratio = count_mean / agent_mean;
    assert!(
        (0.6..1.67).contains(&ratio),
        "means diverge: count {count_mean} vs agent {agent_mean}"
    );
}

/// The complete-graph TopologyScheduler is the same process as the
/// uniform-pair scheduler: identical stable outcomes, comparable cost.
#[test]
fn complete_graph_scheduler_equivalent_to_uniform() {
    let kp = UniformKPartition::new(4);
    let proto = kp.compile();
    let n = 20usize;
    let sig = kp.stable_signature(n as u64);
    let mut sum = 0u64;
    for seed in 0..30 {
        let mut pop = AgentPopulation::new(&proto, n);
        let mut sched = TopologyScheduler::uniform(Box::new(CompleteTopology::new(n)), seed);
        sum += Simulator::new(&proto)
            .run_agents(&mut pop, &mut sched, &sig, kp.interaction_budget(n as u64))
            .unwrap()
            .interactions;
        assert_eq!(pop.group_sizes(&proto), kp.expected_group_sizes(n as u64));
    }
    assert!(sum > 0);
}

/// Per-agent stability semantics: once the run stops, every agent's
/// group is frozen — continue interacting at random and confirm no agent
/// ever changes its group again (the paper's §2.2 stability definition,
/// checked per agent rather than per count).
#[test]
fn per_agent_groups_frozen_after_stability() {
    let kp = UniformKPartition::new(4);
    let proto = kp.compile();
    let n = 21usize; // r = 1: the lone free agent keeps flipping states
    let sig = kp.stable_signature(n as u64);
    let mut pop = AgentPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(5);
    Simulator::new(&proto)
        .run_agents(&mut pop, &mut sched, &sig, kp.interaction_budget(n as u64))
        .unwrap();
    let groups_before: Vec<usize> = (0..n).map(|i| pop.group_of(&proto, i).number()).collect();

    // Keep scheduling long after stability.
    use pp_engine::scheduler::AgentScheduler;
    let mut flips = 0u64;
    for _ in 0..50_000 {
        let (i, j) = sched.select_agents(&pop);
        let (p, q, p2, q2) = pop.interact(&proto, i, j);
        if p != p2 || q != q2 {
            flips += 1;
        }
    }
    let groups_after: Vec<usize> = (0..n).map(|i| pop.group_of(&proto, i).number()).collect();
    assert_eq!(
        groups_before, groups_after,
        "a group changed post-stability"
    );
    // With r = 1 the free agent's initial/initial' flips continue forever
    // (rules 3–4) — state changes happen, group changes don't.
    assert!(flips > 0, "expected the lone free agent to keep flipping");
}

/// The complete-graph assumption is load-bearing: on a star, once the
/// hub settles (the first rule-5 firing always involves the hub), leaves
/// can only ever meet the settled hub and flip — no further agent can
/// settle, so the uniform partition is unreachable. The engine's graph
/// machinery makes this failure observable.
#[test]
fn star_graph_cannot_partition() {
    let kp = UniformKPartition::new(2);
    let proto = kp.compile();
    let n = 9usize;
    let sig = kp.stable_signature(n as u64);
    let mut pop = AgentPopulation::new(&proto, n);
    let mut sched = TopologyScheduler::uniform(Box::new(EdgeListTopology::star(n)), 8);
    let res = Simulator::new(&proto).run_agents(&mut pop, &mut sched, &sig, 200_000);
    assert!(res.is_err(), "bipartition cannot stabilise on a star");
    // Exactly one pair (hub + one leaf) ever settles: one agent in g2.
    let sizes = pop.group_sizes(&proto);
    assert_eq!(
        sizes[1], 1,
        "only the hub's partner reaches group 2: {sizes:?}"
    );
}
