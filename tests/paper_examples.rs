//! E1/E2: exact replays of the paper's worked examples (Figures 1 and 2).
//!
//! Figure 1 (§3.1) walks the basic strategy's happy path on `n = k = 6`;
//! Figure 2 (§3.2) shows two colliding chains being unwound through the
//! `D` states. The interaction sequences and agent labels follow the
//! paper's prose; configuration (a) of Figure 2 is reconstructed from the
//! prose plus the Lemma 1 invariant (two concurrent chains imply two `g1`
//! agents).

use pp_engine::population::Population;
use pp_engine::trace::ScriptedExecution;
use uniform_k_partition::prelude::*;

#[test]
fn figure1_execution() {
    let kp = UniformKPartition::new(6);
    let proto = kp.compile();
    let mut exec = ScriptedExecution::new(&proto, 6);
    let ini = kp.initial();
    let inip = kp.initial_prime();

    // (a) -> (b): interactions (a1,a2), (a3,a4), (a5,a6) flip everyone to
    // initial'.
    exec.interact_all(&[(0, 1), (2, 3), (4, 5)]);
    assert_eq!(exec.population().count(inip), 6, "Fig 1(b): all initial'");

    // (b) -> (c): (a1,a6), (a2,a3), (a4,a5) flip everyone back. The paper
    // notes this could loop forever under an unfair scheduler — global
    // fairness is what rules it out.
    exec.interact_all(&[(0, 5), (1, 2), (3, 4)]);
    assert_eq!(exec.population().count(ini), 6, "Fig 1(c): all initial");

    // (c) -> (d): (a5,a6) makes a5, a6 initial'.
    exec.interact(4, 5);
    assert_eq!(exec.population().count(inip), 2, "Fig 1(d)");

    // (d) -> (e): (a1,a6) is an (initial, initial') meeting — rule 5.
    let rec = exec.interact(0, 5);
    assert_eq!(rec.p2, kp.g(1), "a1 enters g1");
    assert_eq!(rec.q2, kp.m(2), "a6 enters m2");

    // (e) -> (f): a6 recruits a2, a3, a4 (rule 6) then settles with a5
    // (rule 7), ending with one agent per group.
    exec.interact(5, 1);
    assert_eq!(exec.population().state_of(1), kp.g(2));
    exec.interact(5, 2);
    assert_eq!(exec.population().state_of(2), kp.g(3));
    exec.interact(5, 3);
    assert_eq!(exec.population().state_of(3), kp.g(4));
    let rec = exec.interact(5, 4);
    assert_eq!(rec.p2, kp.g(6), "a6 settles into g6");
    assert_eq!(rec.q2, kp.g(5), "a5 settles into g5");

    assert_eq!(
        exec.population().group_sizes(&proto),
        vec![1, 1, 1, 1, 1, 1],
        "Fig 1(f): uniform 6-partition of 6 agents"
    );
    // The stable signature agrees.
    assert!(kp.stable_signature(6).matches(exec.population().counts()));
}

#[test]
fn figure2_execution() {
    let kp = UniformKPartition::new(6);
    let proto = kp.compile();
    // Fig 2(a): two chains started concurrently. Lemma 1 forces #g1 = 2.
    let mut exec = ScriptedExecution::from_states(
        &proto,
        vec![
            kp.g(1),      // a1
            kp.g(1),      // a2
            kp.initial(), // a3
            kp.initial(), // a4
            kp.m(2),      // a5
            kp.m(2),      // a6
        ],
    );
    assert!(kp.lemma1_holds(exec.population().counts()));

    // (a) -> (c): a5 absorbs the remaining free agents.
    exec.interact(2, 4);
    assert_eq!(exec.population().state_of(4), kp.m(3));
    exec.interact(3, 4);
    assert_eq!(exec.population().state_of(4), kp.m(4));
    assert_eq!(
        exec.population().count(kp.initial()) + exec.population().count(kp.initial_prime()),
        0,
        "Fig 2(c): no free agents — rules 1-7 all disabled"
    );
    // Rules 1–7 are indeed all disabled: every enabled pair that is not
    // (m, m) is an identity.
    for s in proto.states() {
        for t in proto.states() {
            if exec.population().count(s) == 0 || exec.population().count(t) == 0 {
                continue;
            }
            let is_mm = kp.m_index(s).is_some() && kp.m_index(t).is_some();
            if !is_mm {
                assert!(proto.is_identity(s, t), "unexpected enabled rule");
            }
        }
    }

    // (c) -> (d): rule 8, (a5, a6) = (m4, m2) -> (d3, d1).
    let rec = exec.interact(4, 5);
    assert_eq!(rec.p2, kp.d(3));
    assert_eq!(rec.q2, kp.d(1));
    assert!(kp.lemma1_holds(exec.population().counts()));

    // (d) -> (e): the paper's exact sequence (a1,a6), (a4,a5), (a3,a5),
    // (a2,a5) returns every agent to initial.
    exec.interact(0, 5); // rule 10
    exec.interact(3, 4); // rule 9: d3 + g3 -> d2 + initial
    exec.interact(2, 4); // rule 9: d2 + g2 -> d1 + initial
    exec.interact(1, 4); // rule 10
    assert_eq!(
        exec.population().count(kp.initial()),
        6,
        "Fig 2(e): all agents back in initial"
    );
    assert!(kp.lemma1_holds(exec.population().counts()));
}

/// After the Figure 2 reset, the population can still stabilise — the
/// unwind loses no agents and corrupts no invariant.
#[test]
fn figure2_population_recovers_to_uniform_partition() {
    let kp = UniformKPartition::new(6);
    let proto = kp.compile();
    let mut exec = ScriptedExecution::from_states(
        &proto,
        vec![
            kp.g(1),
            kp.g(1),
            kp.initial(),
            kp.initial(),
            kp.m(2),
            kp.m(2),
        ],
    );
    exec.interact_all(&[(2, 4), (3, 4), (4, 5), (0, 5), (3, 4), (2, 4), (1, 4)]);

    // Hand the recovered population to the random simulator.
    let mut pop =
        pp_engine::population::CountPopulation::from_counts(exec.population().counts().to_vec());
    let mut sched = UniformRandomScheduler::from_seed(3);
    Simulator::new(&proto)
        .run(
            &mut pop,
            &mut sched,
            &kp.stable_signature(6),
            kp.interaction_budget(6),
        )
        .expect("recovered population stabilises");
    assert_eq!(pop.group_sizes(&proto), vec![1; 6]);
}
