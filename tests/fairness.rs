//! Global fairness is about schedules, not probability. The paper proves
//! correctness for *every* globally fair execution; the simulations merely
//! sample the random scheduler (fair with probability 1). Here we drive
//! the protocol with the engine's deterministic [`LeastVisitedScheduler`]
//! — fair by construction, zero randomness — and with adversarial
//! schedulers that are *not* fair, to delimit the guarantee.

use pp_engine::scheduler::{GreedyPriorityScheduler, LeastVisitedScheduler};
use pp_engine::stability::Never;
use uniform_k_partition::prelude::*;

/// The k-partition protocol stabilises under the deterministic fair
/// scheduler — no randomness anywhere in the run.
#[test]
fn stabilises_under_deterministic_global_fairness() {
    for (k, n) in [(2usize, 7u64), (3, 8), (4, 9)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = LeastVisitedScheduler::new();
        let res = Simulator::new(&proto)
            .run(&mut pop, &mut sched, &kp.stable_signature(n), 10_000_000)
            .unwrap_or_else(|e| panic!("k={k} n={n}: {e}"));
        assert_eq!(pop.group_sizes(&proto), kp.expected_group_sizes(n));
        // Deterministic: same run twice gives the same count.
        let mut pop2 = CountPopulation::new(&proto, n);
        let mut sched2 = LeastVisitedScheduler::new();
        let res2 = Simulator::new(&proto)
            .run(&mut pop2, &mut sched2, &kp.stable_signature(n), 10_000_000)
            .unwrap();
        assert_eq!(res.interactions, res2.interactions, "k={k} n={n}");
    }
}

/// An *unfair* schedule can starve the protocol forever: alternating
/// rule 1 and rule 2 keeps every agent free. This is the paper's
/// Figure 1 (b)↔(c) loop — legal for a mere weakly-fair scheduler,
/// excluded by global fairness.
#[test]
fn unfair_flip_schedule_never_stabilises() {
    let kp = UniformKPartition::new(3);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 6);
    let ini = kp.initial();
    let inip = kp.initial_prime();
    // Priority: always prefer the same-state flips, never rule 5.
    let mut sched = GreedyPriorityScheduler::new(
        move |a, b| {
            if (a == ini && b == ini) || (a == inip && b == inip) {
                1
            } else {
                0
            }
        },
        0,
    );
    // 10k interactions later nothing has settled.
    let res = Simulator::new(&proto).run(&mut pop, &mut sched, &Never, 10_000);
    assert!(res.is_err());
    assert_eq!(
        pop.count(ini) + pop.count(inip),
        6,
        "all agents must still be free under the flip-only schedule"
    );
}

/// The deterministic fair scheduler also drives the *recovery* path: from
/// a hand-built two-chain deadlock-in-waiting (Figure 2's setup), it
/// reaches the uniform partition.
#[test]
fn deterministic_fairness_recovers_from_chain_collision_setup() {
    let kp = UniformKPartition::new(6);
    let proto = kp.compile();
    // Two chains already started: g1 g1 m2 m2 + two free agents (n = 6).
    let mut counts = vec![0u64; proto.num_states()];
    counts[kp.g(1).index()] = 2;
    counts[kp.m(2).index()] = 2;
    counts[kp.initial().index()] = 2;
    let mut pop = CountPopulation::from_counts(counts);
    assert!(kp.lemma1_holds(pop.counts()));
    let mut sched = LeastVisitedScheduler::new();
    Simulator::new(&proto)
        .run(&mut pop, &mut sched, &kp.stable_signature(6), 10_000_000)
        .expect("fair execution must resolve the chain collision");
    assert_eq!(pop.group_sizes(&proto), vec![1; 6]);
}
