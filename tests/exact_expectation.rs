//! V3 (test-sized): the simulator's sample mean matches the exact
//! Markov-chain expectation of the paper's metric on small instances.
//! The full sweep lives in the `exact_vs_sim` binary; these cells are
//! small enough for debug-mode CI.

use uniform_k_partition::prelude::*;
use uniform_k_partition::verify::hitting::{hitting_moments, SolverOptions};
use uniform_k_partition::verify::ConfigGraph;

fn exact_and_simulated(k: usize, n: u64, trials: u64) -> (f64, f64, f64) {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let graph = ConfigGraph::explore(&proto, n, 1_000_000).unwrap();
    let sig = kp.stable_signature(n);
    let exact = hitting_moments(
        &graph,
        |cfg| {
            let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
            sig.matches(&counts)
        },
        SolverOptions::default(),
    )
    .unwrap();

    let mut sum = 0u64;
    let mut sumsq = 0f64;
    for seed in 0..trials {
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed * 7 + 1);
        let r = Simulator::new(&proto)
            .run(&mut pop, &mut sched, &sig, kp.interaction_budget(n))
            .unwrap();
        sum += r.interactions;
        sumsq += (r.interactions as f64).powi(2);
    }
    let mean = sum as f64 / trials as f64;
    let var = (sumsq / trials as f64 - mean * mean).max(0.0);
    let sem = (var / trials as f64).sqrt();
    (exact.mean, mean, sem)
}

#[test]
fn simulated_mean_matches_exact_k2() {
    let (exact, sim, sem) = exact_and_simulated(2, 6, 300);
    let z = (sim - exact) / sem;
    assert!(
        z.abs() < 4.0,
        "exact {exact}, sim {sim} ± {sem} (z = {z:.2})"
    );
}

#[test]
fn simulated_mean_matches_exact_k3() {
    let (exact, sim, sem) = exact_and_simulated(3, 7, 300);
    let z = (sim - exact) / sem;
    assert!(
        z.abs() < 4.0,
        "exact {exact}, sim {sim} ± {sem} (z = {z:.2})"
    );
}

/// The exact expectation reproduces Figure 3's remainder effect in
/// miniature, with no sampling noise at all: at k = 3, finishing from
/// remainder 1 (n = 7) costs more than from remainder 2 (n = 8) *per
/// grouping*… the absolute assertion that is always true: E[T] is
/// increasing from n = 6 to n = 7 (new grouping partially started) —
/// and, the paper's dip, E[T](7) > E[T](8) would be the sawtooth; assert
/// the one that the solver shows robustly: E grows from 6 to 7.
#[test]
fn exact_expectation_shows_remainder_structure() {
    let e = |n: u64| {
        let kp = UniformKPartition::new(3);
        let proto = kp.compile();
        let graph = ConfigGraph::explore(&proto, n, 1_000_000).unwrap();
        let sig = kp.stable_signature(n);
        hitting_moments(
            &graph,
            |cfg| {
                let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                sig.matches(&counts)
            },
            SolverOptions::default(),
        )
        .unwrap()
        .mean
    };
    let e6 = e(6);
    let e7 = e(7);
    assert!(e7 > e6, "E[T] should grow with n: E(6) = {e6}, E(7) = {e7}");
}
