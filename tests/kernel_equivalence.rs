//! The leap kernel is distribution-exact: on cells small enough for the
//! exact Markov-chain solver, naive and leap sample means of the paper's
//! interactions-to-stability metric must both match the exact
//! expectation (and hence each other). A fixed-seed regression test pins
//! the leap kernel's RNG-stream consumption so accidental changes to the
//! sampling order are caught immediately.

use proptest::prelude::*;

use uniform_k_partition::prelude::*;
use uniform_k_partition::verify::hitting::{hitting_moments, SolverOptions};
use uniform_k_partition::verify::ConfigGraph;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kernel {
    Naive,
    Leap,
}

/// Mean and standard error of interactions-to-stability over `trials`
/// seeded runs of one kernel.
fn sample_mean(kernel: Kernel, k: usize, n: u64, trials: u64, seed_base: u64) -> (f64, f64) {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let sig = kp.stable_signature(n);
    let sim = Simulator::new(&proto);
    let mut sum = 0u64;
    let mut sumsq = 0f64;
    for t in 0..trials {
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed_base + t);
        let r = match kernel {
            Kernel::Naive => sim.run(&mut pop, &mut sched, &sig, u64::MAX),
            Kernel::Leap => sim.run_leap(&mut pop, &mut sched, &sig, u64::MAX),
        }
        .unwrap();
        sum += r.interactions;
        sumsq += (r.interactions as f64).powi(2);
    }
    let mean = sum as f64 / trials as f64;
    let var = (sumsq / trials as f64 - mean * mean).max(0.0);
    (mean, (var / trials as f64).sqrt())
}

/// Exact expected interactions-to-stability from the configuration
/// graph.
fn exact_mean(k: usize, n: u64) -> f64 {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let graph = ConfigGraph::explore(&proto, n, 1_000_000).unwrap();
    let sig = kp.stable_signature(n);
    hitting_moments(
        &graph,
        |cfg| {
            let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
            sig.matches(&counts)
        },
        SolverOptions::default(),
    )
    .unwrap()
    .mean
}

proptest! {
    // Each case solves a Markov chain and runs 2 × 150 trials; keep the
    // case count small — the grid below only has a handful of cells
    // anyway.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Both kernels' sample means sit within 4 standard errors of the
    /// exact expectation on every small (k, n) cell.
    #[test]
    fn both_kernels_match_exact_hitting_time(
        k in 2usize..=3,
        n in 5u64..=7,
        seed_base in 1u64..10_000,
    ) {
        let trials = 150;
        let exact = exact_mean(k, n);
        for kernel in [Kernel::Naive, Kernel::Leap] {
            let (mean, sem) = sample_mean(kernel, k, n, trials, seed_base);
            let z = (mean - exact) / sem;
            prop_assert!(
                z.abs() < 4.0,
                "{kernel:?} k={k} n={n}: exact {exact}, sim {mean} ± {sem} (z = {z:.2})"
            );
        }
    }
}

/// Welch two-sample comparison of naive vs leap on a cell too large for
/// the exact solver: the two kernels must agree in distribution, not
/// just with the exact solver on tiny cells.
#[test]
fn kernels_agree_on_larger_cell() {
    let (k, n, trials) = (4, 20, 200);
    let (m_naive, s_naive) = sample_mean(Kernel::Naive, k, n, trials, 100_000);
    let (m_leap, s_leap) = sample_mean(Kernel::Leap, k, n, trials, 200_000);
    let z = (m_naive - m_leap) / (s_naive * s_naive + s_leap * s_leap).sqrt();
    assert!(
        z.abs() < 4.0,
        "naive {m_naive} ± {s_naive} vs leap {m_leap} ± {s_leap} (z = {z:.2})"
    );
}

/// Fixed-seed regression: the leap kernel's exact RNG-stream consumption
/// (one geometric draw per identity run, two weighted draws per
/// effective interaction). If the sampling order changes, this value
/// changes — bump it only with a distribution-level justification.
#[test]
fn leap_fixed_seed_regression() {
    let kp = UniformKPartition::new(4);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 30);
    let mut sched = UniformRandomScheduler::from_seed(2024);
    let r = Simulator::new(&proto)
        .run_leap(&mut pop, &mut sched, &kp.stable_signature(30), u64::MAX)
        .unwrap();
    assert_eq!(pop.group_sizes(&proto), vec![8, 8, 7, 7]);
    assert_eq!((r.interactions, r.effective_interactions), (354, 84));
}
