//! V1/V2: mechanical verification of Theorem 1 and Lemma 1 on small
//! instances, plus a *negative* control (the basic-strategy ablation must
//! fail verification, confirming the checker has teeth).

use uniform_k_partition::prelude::*;
use uniform_k_partition::protocols::bipartition::UniformBipartition;
use uniform_k_partition::protocols::kpartition::ablation::BasicStrategyKPartition;
use uniform_k_partition::verify::{ConfigGraph, VerifyFailure};

/// Theorem 1 for k ∈ {2, 3, 4}, n ∈ 3..=10 (plus a taller n for k = 2):
/// every terminal SCC of the reachable configuration graph is a correct,
/// group-frozen uniform partition.
#[test]
fn theorem1_verified_exhaustively() {
    for (k, ns) in [(2usize, 3u64..=12), (3, 3..=10), (4, 3..=10)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        for n in ns {
            let graph = ConfigGraph::explore(&proto, n, 2_000_000)
                .unwrap_or_else(|e| panic!("k={k} n={n}: {e}"));
            let expected = kp.expected_group_sizes(n);
            let report = graph.verify_stable_partition(|groups| groups == expected);
            assert!(
                report.verified(),
                "k={k} n={n}: {:?} over {} configs",
                report.failure,
                report.num_configs
            );
        }
    }
}

/// Lemma 1 holds in *every* reachable configuration, not just sampled
/// ones.
#[test]
fn lemma1_verified_exhaustively() {
    for (k, n) in [(3usize, 9u64), (3, 10), (4, 8), (4, 11), (5, 8)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let graph = ConfigGraph::explore(&proto, n, 2_000_000).unwrap();
        let violation = graph.check_invariant(|cfg| {
            let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
            kp.lemma1_holds(&counts)
        });
        assert_eq!(violation, None, "k={k} n={n}");
    }
}

/// The stable signature characterises exactly the terminal-SCC
/// configurations (up to the r = 1 free-agent flip): every terminal SCC
/// config matches the signature, and every reachable signature-matching
/// config lies in a terminal SCC.
#[test]
fn stable_signature_equals_terminal_sccs() {
    for (k, n) in [(3usize, 7u64), (3, 8), (4, 9), (4, 10), (2, 7)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let graph = ConfigGraph::explore(&proto, n, 2_000_000).unwrap();
        let sig = kp.stable_signature(n);
        let matching: std::collections::HashSet<u32> = graph
            .matching_configs(|cfg| {
                let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                sig.matches(&counts)
            })
            .into_iter()
            .collect();
        let in_terminals: std::collections::HashSet<u32> =
            graph.terminal_sccs().into_iter().flatten().collect();
        assert_eq!(matching, in_terminals, "k={k} n={n}");
        assert!(!matching.is_empty(), "k={k} n={n}: no stable configuration");
    }
}

/// The 4-state bipartition protocol verifies for both parities of n.
#[test]
fn bipartition_verified_exhaustively() {
    let bi = UniformBipartition::new();
    let proto = bi.compile();
    for n in 3..=14u64 {
        let graph = ConfigGraph::explore(&proto, n, 100_000).unwrap();
        let expected = bi.expected_group_sizes(n);
        let report = graph.verify_stable_partition(|g| g == expected);
        assert!(report.verified(), "n={n}: {:?}", report.failure);
    }
}

/// Negative control: without the D states, verification must FAIL — the
/// deadlocked partial-chain configurations are terminal but not uniform.
/// This is the paper's §3.2 made mechanical.
#[test]
fn basic_strategy_fails_verification() {
    let bp = BasicStrategyKPartition::new(4);
    let proto = bp.compile();
    let n = 12u64;
    let graph = ConfigGraph::explore(&proto, n, 2_000_000).unwrap();
    let report = graph.verify_stable_partition(|groups| {
        let max = groups.iter().max().unwrap();
        let min = groups.iter().min().unwrap();
        max - min <= 1
    });
    assert!(
        matches!(report.failure, Some(VerifyFailure::BadGroupSizes { .. })),
        "expected a non-uniform terminal configuration, got {:?}",
        report.failure
    );
}

/// …and with the D states restored, the very same instance verifies.
#[test]
fn full_protocol_passes_where_basic_fails() {
    let kp = UniformKPartition::new(4);
    let proto = kp.compile();
    let graph = ConfigGraph::explore(&proto, 12, 2_000_000).unwrap();
    let report = graph.verify_stable_partition(|g| g == [3, 3, 3, 3]);
    assert!(report.verified(), "{:?}", report.failure);
}

/// Lemmas 2–4 mechanically: from every reachable configuration with
/// `n − k·#g_k ≥ k`, a configuration with strictly more `g_k` agents is
/// reachable — so `#g_k` can always ratchet until it reaches `⌊n/k⌋`
/// (and by Lemma 4's monotonicity, under global fairness it *will*).
#[test]
fn lemmas_2_3_4_progress_verified_exhaustively() {
    for (k, n) in [(3usize, 9u64), (3, 11), (4, 9), (4, 12)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let graph = ConfigGraph::explore(&proto, n, 2_000_000).unwrap();
        let gk = kp.g(k).index();
        let best = graph.max_reachable(|cfg| u64::from(cfg[gk]));
        for id in 0..graph.num_configs() as u32 {
            let cfg = graph.config(id);
            let here = u64::from(cfg[gk]);
            // Lemma 2/3 precondition: enough unsettled agents for one
            // more complete grouping.
            if n - (k as u64) * here >= k as u64 {
                assert!(
                    best[id as usize] > here,
                    "k={k} n={n}: no grouping progress from {cfg:?}"
                );
            }
            // And the global maximum is ⌊n/k⌋ from everywhere below it.
            assert_eq!(
                best[id as usize],
                (n / k as u64).max(here),
                "k={k} n={n}: wrong reachable maximum from {cfg:?}"
            );
        }
    }
}

/// Our one-sided-abort extension (kpartition::variant) is not proved in
/// the paper — so prove it here, the same way: every terminal SCC of its
/// reachable graph is a correct frozen partition, for k ∈ {3, 4} across
/// a range of n. (Runtime comparisons live in the `variants` binary.)
#[test]
fn one_sided_abort_variant_verified_exhaustively() {
    use uniform_k_partition::protocols::kpartition::variant::OneSidedAbortKPartition;
    for (k, ns) in [(3usize, 3u64..=10), (4, 3..=10)] {
        let v = OneSidedAbortKPartition::new(k);
        let proto = v.compile();
        for n in ns {
            let graph = ConfigGraph::explore(&proto, n, 2_000_000)
                .unwrap_or_else(|e| panic!("k={k} n={n}: {e}"));
            let expected = v.base().expected_group_sizes(n);
            let report = graph.verify_stable_partition(|groups| groups == expected);
            assert!(
                report.verified(),
                "variant k={k} n={n}: {:?} over {} configs",
                report.failure,
                report.num_configs
            );
            // Lemma 1 holds for the variant's reachable set too.
            assert_eq!(
                graph.check_invariant(|cfg| {
                    let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                    v.base().lemma1_holds(&counts)
                }),
                None,
                "variant k={k} n={n}: Lemma 1 violated"
            );
        }
    }
}

/// Cross-check simulator against model checker: the final configuration
/// of a random run is one of the graph's terminal configurations.
#[test]
fn simulator_ends_in_a_terminal_configuration() {
    let kp = UniformKPartition::new(3);
    let proto = kp.compile();
    let n = 8u64;
    let graph = ConfigGraph::explore(&proto, n, 2_000_000).unwrap();
    let terminal: std::collections::HashSet<Vec<u32>> = graph
        .terminal_sccs()
        .into_iter()
        .flatten()
        .map(|id| graph.config(id).to_vec())
        .collect();
    for seed in 0..5 {
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        Simulator::new(&proto)
            .run(
                &mut pop,
                &mut sched,
                &kp.stable_signature(n),
                kp.interaction_budget(n),
            )
            .unwrap();
        let as_u32: Vec<u32> = pop.counts().iter().map(|&c| c as u32).collect();
        assert!(
            terminal.contains(&as_u32),
            "seed {seed}: simulator ended outside the terminal SCCs"
        );
    }
}
