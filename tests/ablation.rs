//! A1: the basic-strategy ablation (rules 1–7 without the D states) fails
//! on random executions with measurable probability, while the full
//! protocol succeeds on every one — the quantitative form of §3.2.

use pp_analysis::runner::{run_trials_full, TrialConfig};
use pp_engine::population::{CountPopulation, Population};
use pp_engine::stability::Silent;
use uniform_k_partition::prelude::*;
use uniform_k_partition::protocols::kpartition::ablation::BasicStrategyKPartition;

#[test]
fn basic_strategy_deadlocks_with_positive_probability() {
    let bp = BasicStrategyKPartition::new(4);
    let proto = bp.compile();
    let n = 12u64;
    let outcomes = run_trials_full(
        &proto,
        n,
        &Silent,
        TrialConfig {
            trials: 60,
            master_seed: 2,
            max_interactions: 1_000_000_000,
        },
    );
    let mut deadlocks = 0;
    for o in &outcomes {
        assert!(
            o.interactions.is_some(),
            "basic strategy must always reach a silent configuration"
        );
        let pop = CountPopulation::from_counts(o.final_counts.clone());
        let sizes = pop.group_sizes(&proto);
        if bp.is_deadlocked(&o.final_counts) {
            deadlocks += 1;
            // Deadlocked runs are non-uniform…
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() > 1);
        } else {
            // …and non-deadlocked runs are perfectly uniform.
            assert_eq!(sizes, vec![3, 3, 3, 3]);
        }
    }
    // At n = 12, k = 4 concurrent chains are common; over 60 seeded trials
    // the deadlock count is deterministic and comfortably positive.
    assert!(
        deadlocks >= 5,
        "expected frequent deadlocks, saw {deadlocks}/60"
    );
}

#[test]
fn full_protocol_never_deadlocks_on_same_cells() {
    for (k, n) in [(4usize, 12u64), (5, 20), (6, 24)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let outcomes = run_trials_full(
            &proto,
            n,
            &kp.stable_signature(n),
            TrialConfig {
                trials: 30,
                master_seed: 3,
                max_interactions: kp.interaction_budget(n),
            },
        );
        for o in &outcomes {
            assert!(o.interactions.is_some(), "k={k} n={n}: censored run");
            let pop = CountPopulation::from_counts(o.final_counts.clone());
            assert_eq!(
                pop.group_sizes(&proto),
                kp.expected_group_sizes(n),
                "k={k} n={n}"
            );
        }
    }
}

/// The D states cost something: on cells where the basic strategy
/// *happens* to succeed it can be cheaper than the full protocol, but the
/// full protocol's price buys certainty. This test just documents that
/// both protocols produce comparable interaction scales (within 100x) so
/// the ablation table is meaningful.
#[test]
fn ablation_costs_are_comparable() {
    let kp = UniformKPartition::new(4);
    let full = {
        let proto = kp.compile();
        let out = run_trials_full(
            &proto,
            12,
            &kp.stable_signature(12),
            TrialConfig {
                trials: 20,
                master_seed: 4,
                max_interactions: kp.interaction_budget(12),
            },
        );
        out.iter().map(|o| o.interactions.unwrap()).sum::<u64>() as f64 / 20.0
    };
    let bp = BasicStrategyKPartition::new(4);
    let basic = {
        let proto = bp.compile();
        let out = run_trials_full(
            &proto,
            12,
            &Silent,
            TrialConfig {
                trials: 20,
                master_seed: 4,
                max_interactions: 1_000_000_000,
            },
        );
        out.iter().map(|o| o.interactions.unwrap()).sum::<u64>() as f64 / 20.0
    };
    assert!(basic > 0.0 && full > 0.0);
    assert!(full / basic < 100.0 && basic / full < 100.0);
}
