//! Linear invariant extraction from the rule displacement matrix.
//!
//! A compiled protocol is a vector addition system: firing the rule on
//! ordered pair `(p, q) → (p', q')` adds the *displacement* vector
//! `d = −e_p − e_q + e_{p'} + e_{q'}` to the configuration's count
//! vector. A functional `y ∈ ℤ^{|Q|}` is a **P-invariant** iff `y · d = 0`
//! for every rule displacement — then `y · c` is conserved along every
//! execution, and since the initial configuration is `n · e_{s0}`, every
//! reachable configuration satisfies `y · c = n · y[s0]`.
//!
//! [`extract`] computes an integer basis of the full left-nullspace by
//! fraction-free Gaussian elimination over ℤ (Bareiss-style row
//! reduction on the transposed displacement matrix), so *every* linear
//! invariant of the protocol is a rational combination of the returned
//! basis. [`InvariantBasis::implies`] decides that span membership —
//! which is how pp-lint proves the paper's Lemma 1 follows from the rule
//! table alone — and [`conservation_violations`] pinpoints the rules
//! breaking a declared invariant, anchored for the findings model.

use pp_engine::protocol::{CompiledProtocol, StateId};

/// A linear functional over state counts: `value(c) = Σ coeffs[s] · c[s]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Functional {
    /// Optional human name (e.g. `"lemma1[x=2]"`).
    pub name: String,
    /// One coefficient per state, indexed by `StateId`.
    pub coeffs: Vec<i64>,
}

impl Functional {
    /// Build a named functional.
    pub fn new(name: impl Into<String>, coeffs: Vec<i64>) -> Self {
        Functional {
            name: name.into(),
            coeffs,
        }
    }

    /// Evaluate at a count vector.
    pub fn value_at(&self, counts: &[u64]) -> i64 {
        assert_eq!(counts.len(), self.coeffs.len());
        self.coeffs
            .iter()
            .zip(counts)
            .map(|(&y, &c)| y * c as i64)
            .sum()
    }

    /// The conserved value on executions from all-`s0` with `n` agents:
    /// `n · coeffs[s0]`.
    pub fn initial_value(&self, proto: &CompiledProtocol, n: u64) -> i64 {
        self.coeffs[proto.initial_state().index()] * n as i64
    }

    /// Dot product with a displacement vector.
    fn dot(&self, d: &[i64]) -> i64 {
        self.coeffs.iter().zip(d).map(|(&y, &x)| y * x).sum()
    }

    /// Whether the functional is the zero map.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

/// An integer basis of the protocol's P-invariant space.
#[derive(Clone, Debug)]
pub struct InvariantBasis {
    /// Basis functionals (content-reduced: each divided by its gcd).
    pub basis: Vec<Functional>,
    /// Number of states (the ambient dimension).
    pub num_states: usize,
    /// Number of *distinct* rule displacements the basis annihilates.
    pub num_displacements: usize,
}

impl InvariantBasis {
    /// Dimension of the invariant space.
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Whether `target` lies in the rational span of the basis — i.e.
    /// whether it is itself conserved by every rule. Decided exactly
    /// over ℚ: adjoining `target` to the basis leaves the rank unchanged
    /// iff `target` is a rational combination of basis vectors.
    pub fn implies(&self, target: &Functional) -> bool {
        if target.is_zero() {
            return true;
        }
        let rows: Vec<Vec<i128>> = self
            .basis
            .iter()
            .map(|b| b.coeffs.iter().map(|&c| c as i128).collect())
            .collect();
        let mut with_target = rows.clone();
        with_target.push(target.coeffs.iter().map(|&c| c as i128).collect());
        row_echelon(rows).1.len() == row_echelon(with_target).1.len()
    }
}

/// Fraction-free row reduction over ℤ. Returns the reduced matrix
/// (echelon rows first, then zero rows) and the pivot column of each
/// echelon row in order; the pivot count is the matrix rank.
fn row_echelon(mut mat: Vec<Vec<i128>>) -> (Vec<Vec<i128>>, Vec<usize>) {
    let width = mat.first().map_or(0, Vec::len);
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut row = 0usize;
    for col in 0..width {
        let Some(pr) = (row..mat.len()).find(|&r| mat[r][col] != 0) else {
            continue;
        };
        mat.swap(row, pr);
        let (head, rest) = mat.split_at_mut(row + 1);
        let pivot_row = &head[row];
        let p = pivot_row[col];
        for r in rest.iter_mut() {
            if r[col] == 0 {
                continue;
            }
            let t = r[col];
            for (x, &pv) in r.iter_mut().zip(pivot_row.iter()) {
                *x = *x * p - t * pv;
            }
            reduce_content(r);
        }
        pivot_cols.push(col);
        row += 1;
        if row == mat.len() {
            break;
        }
    }
    (mat, pivot_cols)
}

/// The distinct non-zero displacement vectors of the rule table. Mirror
/// registrations and distinct rules with equal net effect collapse to
/// one column.
pub fn displacements(proto: &CompiledProtocol) -> Vec<Vec<i64>> {
    let mut cols: Vec<Vec<i64>> = Vec::new();
    for e in proto.rule_entries() {
        let d = proto.displacement(e.p, e.q);
        if d.iter().all(|&x| x == 0) {
            continue; // swap-only transitions conserve everything
        }
        if !cols.contains(&d) {
            cols.push(d);
        }
    }
    cols
}

/// Compute an integer basis of the left-nullspace of the displacement
/// matrix: all `y` with `y · d = 0` for every rule displacement `d`.
///
/// Method: assemble the displacement vectors as rows of an
/// `m × |Q|` matrix `D` and row-reduce (fraction-free) to find the
/// nullspace of `Dᵀ y = 0`, i.e. the kernel of the matrix whose rows are
/// displacements. Free columns yield one basis vector each, so
/// `rank(basis) = |Q| − rank(D)`.
pub fn extract(proto: &CompiledProtocol) -> InvariantBasis {
    let s = proto.num_states();
    let cols = displacements(proto);
    let m = cols.len();

    // Row-echelon form of the m × s displacement matrix, exact integers.
    let (mut mat, pivot_col_of_row) = row_echelon(
        cols.iter()
            .map(|d| d.iter().map(|&x| x as i128).collect())
            .collect(),
    );
    let rank = pivot_col_of_row.len();
    mat.truncate(rank);

    // Back-substitute one basis vector per free column: set the free
    // coordinate to a value clearing denominators, solve pivots bottom-up.
    let pivot_cols: std::collections::HashSet<usize> = pivot_col_of_row.iter().copied().collect();
    let mut basis: Vec<Functional> = Vec::new();
    for free in (0..s).filter(|c| !pivot_cols.contains(c)) {
        let mut y: Vec<i128> = vec![0; s];
        y[free] = 1;
        // Solve rows bottom-up; keep exact by rescaling the whole vector
        // when a pivot does not divide the accumulated sum.
        for r in (0..rank).rev() {
            let pc = pivot_col_of_row[r];
            let sum: i128 = (0..s).filter(|&c| c != pc).map(|c| mat[r][c] * y[c]).sum();
            // y[pc] must satisfy  mat[r][pc]·y[pc] + sum = 0.
            let p = mat[r][pc];
            let g = gcd(p.unsigned_abs(), sum.unsigned_abs()).max(1);
            let scale = (p.unsigned_abs() / g) as i128;
            if scale != 1 {
                for v in y.iter_mut() {
                    *v *= scale;
                }
            }
            let sum: i128 = (0..s).filter(|&c| c != pc).map(|c| mat[r][c] * y[c]).sum();
            debug_assert_eq!(sum % p, 0);
            y[pc] = -sum / p;
        }
        reduce_content(&mut y);
        // Normalise sign: first non-zero coefficient positive.
        if y.iter().find(|&&v| v != 0).is_some_and(|&v| v < 0) {
            for v in y.iter_mut() {
                *v = -*v;
            }
        }
        let coeffs: Vec<i64> = y
            .iter()
            .map(|&v| i64::try_from(v).expect("invariant coefficients fit i64"))
            .collect();
        basis.push(Functional::new(format!("inv{}", basis.len()), coeffs));
    }

    let out = InvariantBasis {
        basis,
        num_states: s,
        num_displacements: m,
    };
    debug_assert!(out.basis.iter().all(|y| cols.iter().all(|d| y.dot(d) == 0)));
    out
}

/// The rules that fail to conserve `target`: each violating ordered pair
/// with the (non-zero) drift `target · displacement`.
pub fn conservation_violations(
    proto: &CompiledProtocol,
    target: &Functional,
) -> Vec<(StateId, StateId, i64)> {
    proto
        .rule_entries()
        .filter_map(|e| {
            let drift = target.dot(&proto.displacement(e.p, e.q));
            (drift != 0).then_some((e.p, e.q, drift))
        })
        .collect()
}

/// Divide a vector by the gcd of its entries (no-op for zero vectors).
fn reduce_content(v: &mut [i128]) {
    let mut g: u128 = 0;
    for &x in v.iter() {
        g = gcd(g, x.unsigned_abs());
    }
    if g > 1 {
        for x in v.iter_mut() {
            *x /= g as i128;
        }
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;

    /// Epidemic (S, I): only rule flips S→I, so the conserved functionals
    /// are spanned by the total count... plus nothing else: rank 1.
    #[test]
    fn epidemic_invariants_are_total_count_only() {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        let p = spec.compile().unwrap();
        let b = extract(&p);
        assert_eq!(b.rank(), 1);
        // The total population functional is (in the span of) the basis.
        assert!(b.implies(&Functional::new("total", vec![1, 1])));
        // The infected count is not conserved.
        assert!(!b.implies(&Functional::new("infected", vec![0, 1])));
    }

    /// A pure renaming protocol (a, a) → (b, b) conserves total count and
    /// nothing finer; adding the reverse rule changes nothing (same
    /// displacement, negated — still rank 1... no: negated is a distinct
    /// column but spans the same line, so the nullspace is identical).
    #[test]
    fn flip_cycle_nullspace() {
        let mut spec = ProtocolSpec::new("flip");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, a, a);
        let p = spec.compile().unwrap();
        let basis = extract(&p);
        assert_eq!(basis.rank(), 1);
        assert!(basis.implies(&Functional::new("total", vec![1, 1])));
        let _ = (a, b);
    }

    /// Two independent populations (no interaction between them) conserve
    /// each side separately: rank 2.
    #[test]
    fn independent_components_give_rank_two() {
        let mut spec = ProtocolSpec::new("pair");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        let d = spec.add_state("d", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b); // a-side churn
        spec.add_rule(c, c, d, d); // c-side churn
        let p = spec.compile().unwrap();
        let basis = extract(&p);
        assert_eq!(basis.rank(), 2);
        assert!(basis.implies(&Functional::new("ab", vec![1, 1, 0, 0])));
        assert!(basis.implies(&Functional::new("cd", vec![0, 0, 1, 1])));
        assert!(!basis.implies(&Functional::new("mix", vec![1, 0, 1, 0])));
        let _ = (a, b, c, d);
    }

    /// Swap-style rules have zero displacement and constrain nothing:
    /// the invariant space is all of ℤ^{|Q|}.
    #[test]
    fn swap_only_protocol_conserves_everything() {
        let mut spec = ProtocolSpec::new("swap");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, b, b, a);
        let p = spec.compile().unwrap();
        let basis = extract(&p);
        assert_eq!(basis.num_displacements, 0);
        assert_eq!(basis.rank(), 2);
        assert!(basis.implies(&Functional::new("a", vec![1, 0])));
        assert!(basis.implies(&Functional::new("b", vec![0, 1])));
    }

    /// Violations are anchored at the offending pairs with their drift.
    #[test]
    fn conservation_violations_are_anchored() {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        let p = spec.compile().unwrap();
        let infected = Functional::new("infected", vec![0, 1]);
        let v = conservation_violations(&p, &infected);
        assert_eq!(v.len(), 2); // both orders of the symmetric rule
        assert!(v.iter().all(|&(_, _, drift)| drift == 1));
        let total = Functional::new("total", vec![1, 1]);
        assert!(conservation_violations(&p, &total).is_empty());
        let _ = (s, i);
    }

    #[test]
    fn functional_evaluation() {
        let f = Functional::new("f", vec![2, -1, 0]);
        assert_eq!(f.value_at(&[3, 4, 5]), 2);
        assert!(!f.is_zero());
        assert!(Functional::new("z", vec![0, 0]).is_zero());
    }
}
