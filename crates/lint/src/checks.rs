//! The lint pass: runs every check against a compiled protocol and an
//! [`Expectations`] declaration, producing a [`LintReport`].
//!
//! Checks are *expectation-gated*: a protocol family declares what it
//! promises (symmetric rule table, fully labelled rules, a state budget,
//! conserved functionals), and pp-lint verifies exactly those promises
//! plus the unconditional structural facts (reachability, group-map
//! sanity, invariant extraction). This keeps the built-in zoo clean
//! under `--deny warnings` without weakening the checks: the classics
//! family legitimately ships asymmetric protocols, so it simply does not
//! declare symmetry, while Algorithm 1 declares everything.

use crate::findings::{Finding, FindingKind, LintReport, Severity};
use crate::invariant::{self, Functional};
use crate::reach;
use pp_engine::protocol::{CompiledProtocol, StateId};

/// What a protocol family promises; the lint pass verifies these.
#[derive(Clone, Debug)]
pub struct Expectations {
    /// The rule table is mirror-closed and diagonal-symmetric (the
    /// paper's protocol class). Enables the mirror checks.
    pub symmetric: bool,
    /// Every non-identity pair carries a rule label, and every label
    /// covers at least one pair. Enables the label-coverage checks.
    pub labelled: bool,
    /// The exact label set the compiled protocol must carry (e.g.
    /// Algorithm 1's applicable subset of `r1`..`r10`).
    pub expected_labels: Option<Vec<String>>,
    /// Upper bound on `|Q|` (the k-partition family's `3k − 2`).
    pub state_budget: Option<usize>,
    /// Executions start from *seeded* mixtures rather than the all-`s0`
    /// configuration (the classics: epidemic, approximate majority), so
    /// reachability-from-`s0` checks are meaningless and skipped.
    pub seeded: bool,
    /// Functionals the family claims are conserved by every rule
    /// (e.g. the paper's Lemma 1 residuals). Each is checked both
    /// inductively (per-rule drift) and against the derived basis span.
    pub declared_invariants: Vec<Functional>,
    /// Finding kinds to suppress for this protocol (documented
    /// deviations; use sparingly).
    pub allow: Vec<FindingKind>,
}

impl Default for Expectations {
    /// The paper's default contract: symmetric, unlabelled, no budget.
    fn default() -> Self {
        Expectations {
            symmetric: true,
            labelled: false,
            expected_labels: None,
            state_budget: None,
            seeded: false,
            declared_invariants: Vec::new(),
            allow: Vec::new(),
        }
    }
}

/// Cap on anchor lists so one systemic defect doesn't flood the report.
const MAX_ANCHORS: usize = 8;

/// Run all checks.
pub fn lint(proto: &CompiledProtocol, expect: &Expectations) -> LintReport {
    let mut findings: Vec<Finding> = Vec::new();
    let basis = invariant::extract(proto);

    findings.push(Finding::new(
        Severity::Info,
        FindingKind::InvariantBasis,
        format!(
            "derived {} independent linear invariant(s) from {} distinct rule displacement(s)",
            basis.rank(),
            basis.num_displacements
        ),
    ));

    // Declared invariants: inductive conservation + span membership.
    for inv in &expect.declared_invariants {
        if inv.coeffs.len() != proto.num_states() {
            findings.push(Finding::new(
                Severity::Error,
                FindingKind::InvariantNotImplied,
                format!(
                    "declared invariant '{}' has {} coefficients but the protocol has {} states",
                    inv.name,
                    inv.coeffs.len(),
                    proto.num_states()
                ),
            ));
            continue;
        }
        let violations = invariant::conservation_violations(proto, inv);
        if !violations.is_empty() {
            let mut f = Finding::new(
                Severity::Error,
                FindingKind::ConservationViolation,
                format!(
                    "declared invariant '{}' is not conserved: {} rule(s) drift it (first drift {:+})",
                    inv.name,
                    violations.len(),
                    violations[0].2
                ),
            );
            for &(p, q, _) in violations.iter().take(MAX_ANCHORS) {
                f = f.with_pair(p, q);
            }
            findings.push(f);
        }
        if !basis.implies(inv) {
            findings.push(Finding::new(
                Severity::Error,
                FindingKind::InvariantNotImplied,
                format!(
                    "declared invariant '{}' is outside the span of the derived invariant basis",
                    inv.name
                ),
            ));
        } else if violations.is_empty() {
            findings.push(Finding::new(
                Severity::Info,
                FindingKind::InvariantCertified,
                format!(
                    "declared invariant '{}' is conserved by every rule and implied by the basis",
                    inv.name
                ),
            ));
        }
    }

    if expect.symmetric {
        check_symmetry(proto, &mut findings);
    }

    // Reachability (skipped for seeded protocols, whose executions do
    // not start from all-`s0`).
    let summary = reach::analyze(proto);
    let unreachable = summary.unreachable_states(proto);
    if !expect.seeded && !unreachable.is_empty() {
        let shown: Vec<StateId> = unreachable.iter().copied().take(MAX_ANCHORS).collect();
        findings.push(
            Finding::new(
                Severity::Warning,
                FindingKind::UnreachableState,
                format!(
                    "{} state(s) unreachable from all-'{}' configurations",
                    unreachable.len(),
                    proto.state_name(proto.initial_state())
                ),
            )
            .with_states(shown),
        );
    }
    if !expect.seeded && !summary.dead_pairs.is_empty() {
        let mut f = Finding::new(
            Severity::Warning,
            FindingKind::DeadRule,
            format!(
                "{} rule-table pair(s) can never fire (an endpoint is unreachable)",
                summary.dead_pairs.len()
            ),
        );
        for &(p, q) in summary.dead_pairs.iter().take(MAX_ANCHORS) {
            f = f.with_pair(p, q);
        }
        findings.push(f);
    }

    // Group-map sanity (emptiness is unconditional; group reachability
    // is gated like the other reachability checks).
    check_groups(proto, &summary, expect.seeded, &mut findings);

    if expect.labelled {
        check_labels(proto, expect, &mut findings);
    }

    if let Some(budget) = expect.state_budget {
        if proto.num_states() > budget {
            findings.push(Finding::new(
                Severity::Warning,
                FindingKind::StateBudgetExceeded,
                format!(
                    "|Q| = {} exceeds the declared budget of {}",
                    proto.num_states(),
                    budget
                ),
            ));
        }
    }

    findings.retain(|f| !expect.allow.contains(&f.kind));

    LintReport {
        protocol: proto.name().to_string(),
        num_states: proto.num_states(),
        num_groups: proto.num_groups(),
        num_rule_pairs: proto.rule_entries().count(),
        invariants: basis,
        findings,
    }
}

/// Mirror closure and diagonal symmetry for declared-symmetric protocols.
fn check_symmetry(proto: &CompiledProtocol, findings: &mut Vec<Finding>) {
    if !proto.is_symmetric() {
        let mut f = Finding::new(
            Severity::Error,
            FindingKind::AsymmetricDiagonal,
            "declared symmetric, but some δ(p, p) = (p', q') has p' ≠ q'".to_string(),
        );
        let mut shown = 0;
        for p in proto.states() {
            let (p2, q2) = proto.delta(p, p);
            if p2 != q2 && shown < MAX_ANCHORS {
                f = f.with_pair(p, p);
                shown += 1;
            }
        }
        findings.push(f);
    }

    let mut missing: Vec<(StateId, StateId)> = Vec::new();
    let mut inconsistent: Vec<(StateId, StateId)> = Vec::new();
    for p in proto.states() {
        for q in proto.states() {
            if q <= p {
                continue;
            }
            // One unordered pair {p, q}, both orders. The anchor of a
            // missing mirror is the *identity* order — the cell where
            // the registration is absent.
            match (proto.is_identity(p, q), proto.is_identity(q, p)) {
                (true, true) => {}
                (false, true) => missing.push((q, p)),
                (true, false) => missing.push((p, q)),
                (false, false) => {
                    let (p2, q2) = proto.delta(p, q);
                    if proto.delta(q, p) != (q2, p2) {
                        inconsistent.push((p, q));
                    }
                }
            }
        }
    }
    if !missing.is_empty() {
        let mut f = Finding::new(
            Severity::Error,
            FindingKind::MissingMirror,
            format!(
                "{} ordered pair(s) are identity while their mirror is a rule — the two interaction orders disagree",
                missing.len()
            ),
        );
        for &(p, q) in missing.iter().take(MAX_ANCHORS) {
            f = f.with_pair(p, q);
        }
        findings.push(f);
    }
    if !inconsistent.is_empty() {
        let mut f = Finding::new(
            Severity::Error,
            FindingKind::InconsistentMirror,
            format!(
                "{} unordered pair(s) whose two orders produce non-mirrored results",
                inconsistent.len()
            ),
        );
        for &(p, q) in inconsistent.iter().take(MAX_ANCHORS) {
            f = f.with_pair(p, q);
        }
        findings.push(f);
    }
}

/// Every group in `1..=num_groups` must have a state; groups whose every
/// state is unreachable can never receive an agent.
fn check_groups(
    proto: &CompiledProtocol,
    summary: &reach::ReachSummary,
    seeded: bool,
    findings: &mut Vec<Finding>,
) {
    for g in 1..=proto.num_groups() {
        let members: Vec<StateId> = proto
            .states()
            .filter(|&s| proto.group_of(s).number() == g)
            .collect();
        if members.is_empty() {
            findings.push(Finding::new(
                Severity::Error,
                FindingKind::EmptyGroup,
                format!("group {g} has no state mapped to it"),
            ));
        } else if !seeded && members.iter().all(|s| !summary.reachable[s.index()]) {
            findings.push(
                Finding::new(
                    Severity::Error,
                    FindingKind::UnreachableGroup,
                    format!("every state of group {g} is unreachable — no agent can output it"),
                )
                .with_states(members.into_iter().take(MAX_ANCHORS)),
            );
        }
    }
}

/// Rule-label coverage for declared-labelled protocols.
fn check_labels(proto: &CompiledProtocol, expect: &Expectations, findings: &mut Vec<Finding>) {
    let unlabelled: Vec<(StateId, StateId)> = proto
        .rule_entries()
        .filter(|e| e.rule.is_none())
        .map(|e| (e.p, e.q))
        .collect();
    if !unlabelled.is_empty() {
        let mut f = Finding::new(
            Severity::Warning,
            FindingKind::UnlabelledRule,
            format!(
                "{} non-identity pair(s) carry no rule label — their firings are invisible to per-rule telemetry",
                unlabelled.len()
            ),
        );
        for &(p, q) in unlabelled.iter().take(MAX_ANCHORS) {
            f = f.with_pair(p, q);
        }
        findings.push(f);
    }

    let mut covered = vec![false; proto.num_rules()];
    for e in proto.rule_entries() {
        if let Some(r) = e.rule {
            covered[r.index()] = true;
        }
    }
    for (i, c) in covered.iter().enumerate() {
        if !c {
            findings.push(Finding::new(
                Severity::Warning,
                FindingKind::OrphanRuleLabel,
                format!(
                    "rule label '{}' covers no pair — it can never fire",
                    proto.rule_names()[i]
                ),
            ));
        }
    }

    if let Some(expected) = &expect.expected_labels {
        let mut have: Vec<&str> = proto.rule_names().iter().map(String::as_str).collect();
        let mut want: Vec<&str> = expected.iter().map(String::as_str).collect();
        have.sort_unstable();
        want.sort_unstable();
        if have != want {
            findings.push(Finding::new(
                Severity::Warning,
                FindingKind::UnexpectedRuleLabels,
                format!(
                    "compiled labels {{{}}} differ from expected {{{}}}",
                    have.join(", "),
                    want.join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;

    /// A clean symmetric fixture: `(a, a) → (b, b)`, `(b, b) → (a, a)`.
    /// Both states reachable from all-`a`; conserves only the total.
    fn flip() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("flip");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, a, a);
        spec.compile().unwrap()
    }

    #[test]
    fn clean_protocol_reports_only_info() {
        let report = lint(&flip(), &Expectations::default());
        assert_eq!(report.max_severity(), Some(Severity::Info));
        assert!(report.has(FindingKind::InvariantBasis));
        assert!(!report.deny());
    }

    #[test]
    fn certified_invariant_reported() {
        let mut expect = Expectations::default();
        expect
            .declared_invariants
            .push(Functional::new("total", vec![1, 1]));
        let report = lint(&flip(), &expect);
        assert!(report.has(FindingKind::InvariantCertified));
        assert!(!report.has(FindingKind::ConservationViolation));
    }

    #[test]
    fn broken_invariant_flagged_with_anchor() {
        let mut expect = Expectations::default();
        expect
            .declared_invariants
            .push(Functional::new("susceptible", vec![1, 0]));
        let report = lint(&flip(), &expect);
        assert!(report.deny());
        assert!(report.has(FindingKind::ConservationViolation));
        assert!(report.has(FindingKind::InvariantNotImplied));
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ConservationViolation)
            .unwrap();
        assert!(!f.pairs.is_empty());
    }

    #[test]
    fn missing_mirror_flagged() {
        let mut spec = ProtocolSpec::new("halfrule");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, b, b, b); // no mirror registered
        let proto = spec.compile().unwrap();
        let report = lint(&proto, &Expectations::default());
        assert!(report.has(FindingKind::MissingMirror));
        assert!(report.deny());
        // An asymmetric family that does not declare symmetry is clean.
        let expect = Expectations {
            symmetric: false,
            ..Expectations::default()
        };
        let report = lint(&proto, &expect);
        assert!(!report.has(FindingKind::MissingMirror));
    }

    #[test]
    fn inconsistent_mirror_flagged() {
        let mut spec = ProtocolSpec::new("twisted");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule(a, b, c, c);
        spec.add_rule(b, a, b, c); // not the mirror of (a, b) → (c, c)
        let proto = spec.compile().unwrap();
        let report = lint(&proto, &Expectations::default());
        assert!(report.has(FindingKind::InconsistentMirror));
    }

    #[test]
    fn asymmetric_diagonal_flagged_only_when_declared() {
        let mut spec = ProtocolSpec::new("leader");
        let l = spec.add_state("L", 1);
        let f = spec.add_state("F", 2);
        spec.set_initial(l);
        spec.add_rule(l, l, l, f);
        let proto = spec.compile().unwrap();
        let report = lint(&proto, &Expectations::default());
        assert!(report.has(FindingKind::AsymmetricDiagonal));
        let expect = Expectations {
            symmetric: false,
            ..Expectations::default()
        };
        assert!(!lint(&proto, &expect).has(FindingKind::AsymmetricDiagonal));
    }

    #[test]
    fn unreachable_state_and_dead_rule_flagged() {
        let mut spec = ProtocolSpec::new("zombie");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let z = spec.add_state("z", 1);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, a, a, b);
        spec.add_rule_symmetric(z, b, z, z);
        let proto = spec.compile().unwrap();
        let report = lint(&proto, &Expectations::default());
        assert!(report.has(FindingKind::UnreachableState));
        assert!(report.has(FindingKind::DeadRule));
        let _ = z;
    }

    #[test]
    fn empty_and_unreachable_groups_flagged() {
        // Groups 1 and 3 populated, group 2 empty; group 3's only state
        // is unreachable.
        let mut spec = ProtocolSpec::new("gaps");
        let a = spec.add_state("a", 1);
        let z = spec.add_state("z", 3);
        spec.set_initial(a);
        spec.add_rule_symmetric(z, z, z, a);
        let proto = spec.compile().unwrap();
        let report = lint(&proto, &Expectations::default());
        assert!(report.has(FindingKind::EmptyGroup));
        assert!(report.has(FindingKind::UnreachableGroup));
    }

    #[test]
    fn label_coverage_checks() {
        let mut spec = ProtocolSpec::new("labels");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric_labelled(a, a, a, b, "r1");
        spec.add_rule_symmetric(b, b, b, a); // unlabelled
        let proto = spec.compile().unwrap();
        let expect = Expectations {
            labelled: true,
            expected_labels: Some(vec!["r1".into(), "r2".into()]),
            ..Expectations::default()
        };
        let report = lint(&proto, &expect);
        assert!(report.has(FindingKind::UnlabelledRule));
        assert!(report.has(FindingKind::UnexpectedRuleLabels));
        assert!(!report.has(FindingKind::OrphanRuleLabel));
    }

    #[test]
    fn state_budget_check() {
        let proto = flip();
        let expect = Expectations {
            state_budget: Some(1),
            ..Expectations::default()
        };
        assert!(lint(&proto, &expect).has(FindingKind::StateBudgetExceeded));
        let expect = Expectations {
            state_budget: Some(2),
            ..Expectations::default()
        };
        assert!(!lint(&proto, &expect).has(FindingKind::StateBudgetExceeded));
    }

    #[test]
    fn allow_list_suppresses() {
        let mut spec = ProtocolSpec::new("halfrule");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, b, b, b);
        let proto = spec.compile().unwrap();
        let expect = Expectations {
            allow: vec![FindingKind::MissingMirror],
            ..Expectations::default()
        };
        assert!(!lint(&proto, &expect).has(FindingKind::MissingMirror));
        let _ = (a, b);
    }
}
