//! The findings model: what a lint run reports and how it serialises.
//!
//! A [`Finding`] is one diagnosed fact about a protocol — a severity, a
//! machine-readable [`FindingKind`], a human message, and anchors (the
//! states and ordered pairs the fact is about, by id and name, so both
//! humans and tools can locate it in the rule table). A [`LintReport`]
//! is the full result of linting one protocol: findings plus the derived
//! invariant summary, renderable as text or JSON.

use crate::invariant::InvariantBasis;
use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_telemetry::json::Value;
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings mean the protocol is structurally broken (a declared
/// invariant is not conserved, a group is empty, …) and gate execution:
/// `pp-sweep run` refuses to simulate a plan whose protocol has any.
/// `Warning` findings are suspicious but runnable; `Info` findings are
/// derived facts (e.g. the invariant basis rank) with no judgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A derived fact, not a defect.
    Info,
    /// Suspicious structure; simulation still meaningful.
    Warning,
    /// Structurally broken; execution is gated on these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Machine-readable finding kinds — the lint taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A declared invariant is not conserved by some rule (anchored at
    /// the violating ordered pair).
    ConservationViolation,
    /// A declared invariant is not in the span of the derived P-invariant
    /// basis (should accompany a `ConservationViolation`; kept separate
    /// because the span check is how the basis machinery is validated).
    InvariantNotImplied,
    /// A non-identity ordered pair `(p, q)` whose mirror `(q, p)` is the
    /// identity — a symmetric-by-declaration protocol with a missing
    /// mirror registration.
    MissingMirror,
    /// A non-identity pair whose mirror produces a different (non-swapped)
    /// result — the two orders of one unordered interaction disagree.
    InconsistentMirror,
    /// `δ(p, p) = (a, b)` with `a ≠ b` in a protocol declared symmetric.
    AsymmetricDiagonal,
    /// A state no configuration reachable from all-`s0` can ever contain
    /// (by the sound support-abstraction; see [`crate::reach`]).
    UnreachableState,
    /// A non-identity rule whose ordered pair can never co-occur in any
    /// reachable configuration — dead code in the rule table.
    DeadRule,
    /// A non-identity pair carrying no rule label in a protocol declared
    /// fully labelled (trace classification and per-rule telemetry would
    /// silently drop its firings).
    UnlabelledRule,
    /// A compiled rule label covering no pair (a labelled registration
    /// was overwritten); classifiers would report a rule that can never
    /// fire.
    OrphanRuleLabel,
    /// The compiled label set differs from the protocol family's expected
    /// labels (e.g. Algorithm 1's `r1`..`r10`).
    UnexpectedRuleLabels,
    /// A group in `1..=num_groups` with no state mapped to it — the
    /// output map can never place an agent there.
    EmptyGroup,
    /// A group whose states are all unreachable: structurally present
    /// but no agent can ever output it.
    UnreachableGroup,
    /// The state count exceeds the declared budget (the k-partition
    /// family's `3k − 2`).
    StateBudgetExceeded,
    /// The protocol's progression depth exceeds a declared topology
    /// degree bound — chain-building rules can strand on that graph
    /// family and trials may censor (see [`crate::topo`]).
    TopologyStrandRisk,
    /// Derived fact: the P-invariant basis (rank, dimensions).
    InvariantBasis,
    /// Derived fact: a declared invariant was proven inductively (it is
    /// conserved by every rule) and lies in the basis span.
    InvariantCertified,
}

impl FindingKind {
    /// The kebab-case identifier used in JSON output and CLI filters.
    pub fn id(self) -> &'static str {
        match self {
            FindingKind::ConservationViolation => "conservation-violation",
            FindingKind::InvariantNotImplied => "invariant-not-implied",
            FindingKind::MissingMirror => "missing-mirror",
            FindingKind::InconsistentMirror => "inconsistent-mirror",
            FindingKind::AsymmetricDiagonal => "asymmetric-diagonal",
            FindingKind::UnreachableState => "unreachable-state",
            FindingKind::DeadRule => "dead-rule",
            FindingKind::UnlabelledRule => "unlabelled-rule",
            FindingKind::OrphanRuleLabel => "orphan-rule-label",
            FindingKind::UnexpectedRuleLabels => "unexpected-rule-labels",
            FindingKind::EmptyGroup => "empty-group",
            FindingKind::UnreachableGroup => "unreachable-group",
            FindingKind::StateBudgetExceeded => "state-budget-exceeded",
            FindingKind::TopologyStrandRisk => "topology-strand-risk",
            FindingKind::InvariantBasis => "invariant-basis",
            FindingKind::InvariantCertified => "invariant-certified",
        }
    }
}

/// One diagnosed fact about a protocol.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Machine-readable kind.
    pub kind: FindingKind,
    /// Human-readable description.
    pub message: String,
    /// States the finding is about (may be empty).
    pub states: Vec<StateId>,
    /// Ordered pairs (rule-table cells) the finding is about.
    pub pairs: Vec<(StateId, StateId)>,
}

impl Finding {
    pub(crate) fn new(severity: Severity, kind: FindingKind, message: impl Into<String>) -> Self {
        Finding {
            severity,
            kind,
            message: message.into(),
            states: Vec::new(),
            pairs: Vec::new(),
        }
    }

    pub(crate) fn with_states(mut self, states: impl IntoIterator<Item = StateId>) -> Self {
        self.states.extend(states);
        self
    }

    pub(crate) fn with_pair(mut self, p: StateId, q: StateId) -> Self {
        self.pairs.push((p, q));
        self
    }
}

/// The result of linting one protocol.
#[derive(Debug)]
pub struct LintReport {
    /// Protocol name (from the compiled protocol).
    pub protocol: String,
    /// `|Q|`.
    pub num_states: usize,
    /// Number of groups in the output map.
    pub num_groups: usize,
    /// Count of non-identity ordered pairs in the rule table.
    pub num_rule_pairs: usize,
    /// The derived integer P-invariant basis.
    pub invariants: InvariantBasis,
    /// All findings, in check order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// The worst severity present, or `None` for a finding-free report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == severity)
    }

    /// Whether the report contains a finding of `kind`.
    pub fn has(&self, kind: FindingKind) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }

    /// Whether execution should be refused (any `Error` finding).
    pub fn deny(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Render as JSON (the `pp-lint --format json` schema).
    pub fn to_json(&self, proto: &CompiledProtocol) -> Value {
        let findings: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                let states: Vec<Value> = f
                    .states
                    .iter()
                    .map(|s| Value::Str(proto.state_name(*s).to_string()))
                    .collect();
                let pairs: Vec<Value> = f
                    .pairs
                    .iter()
                    .map(|(p, q)| {
                        Value::Arr(vec![
                            Value::Str(proto.state_name(*p).to_string()),
                            Value::Str(proto.state_name(*q).to_string()),
                        ])
                    })
                    .collect();
                Value::obj([
                    ("severity", Value::Str(f.severity.to_string())),
                    ("kind", Value::Str(f.kind.id().to_string())),
                    ("message", Value::Str(f.message.clone())),
                    ("states", Value::Arr(states)),
                    ("pairs", Value::Arr(pairs)),
                ])
            })
            .collect();
        let basis: Vec<Value> = self
            .invariants
            .basis
            .iter()
            .map(|v| Value::Arr(v.coeffs.iter().map(|&c| Value::I64(c)).collect()))
            .collect();
        Value::obj([
            ("protocol", Value::Str(self.protocol.clone())),
            ("num_states", Value::U64(self.num_states as u64)),
            ("num_groups", Value::U64(self.num_groups as u64)),
            ("num_rule_pairs", Value::U64(self.num_rule_pairs as u64)),
            ("invariant_rank", Value::U64(self.invariants.rank() as u64)),
            ("invariant_basis", Value::Arr(basis)),
            ("findings", Value::Arr(findings)),
        ])
    }

    /// Render as human-readable text.
    pub fn render_text(&self, proto: &CompiledProtocol) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: |Q| = {}, {} groups, {} rule pairs, invariant rank {}",
            self.protocol,
            self.num_states,
            self.num_groups,
            self.num_rule_pairs,
            self.invariants.rank()
        );
        for f in &self.findings {
            let mut anchors = String::new();
            if !f.states.is_empty() {
                let names: Vec<&str> = f.states.iter().map(|s| proto.state_name(*s)).collect();
                anchors.push_str(&format!(" [states: {}]", names.join(", ")));
            }
            if !f.pairs.is_empty() {
                let cells: Vec<String> = f
                    .pairs
                    .iter()
                    .map(|(p, q)| format!("({}, {})", proto.state_name(*p), proto.state_name(*q)))
                    .collect();
                anchors.push_str(&format!(" [pairs: {}]", cells.join(", ")));
            }
            let _ = writeln!(
                out,
                "  {}: {}: {}{}",
                f.severity,
                f.kind.id(),
                f.message,
                anchors
            );
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "  clean");
        }
        out
    }
}
