//! `pp-lint` binary: thin wrapper over [`pp_lint::cli::main_with_args`].

#![deny(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(pp_lint::cli::main_with_args(&args));
}
