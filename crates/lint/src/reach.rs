//! Abstract reachability over state *support*.
//!
//! Instead of exploring count vectors (exponential in `n`), track only
//! which states *can* appear in some reachable configuration for some
//! population size. Start from `S = {s0}` and close under the rule
//! table: whenever `p, q ∈ S` (including `p = q` — two agents can share
//! a state) and `δ(p, q) = (p', q')`, add `p'` and `q'`.
//!
//! The fixpoint is a sound over-approximation of the union of supports
//! of reachable configurations: every state that actually occurs in a
//! reachable configuration is in `S`, because the concrete firing that
//! first produces it is also an abstract closure step. Hence a state
//! *outside* the fixpoint is genuinely unreachable, and a rule whose
//! ordered pair never becomes abstractly co-enabled is genuinely dead —
//! the directions pp-lint reports. (The converse does not hold: `p = q`
//! closure steps assume two agents can share state `p`, which a
//! population of size 1 in `p` cannot realise. Over-approximation means
//! reported `UnreachableState`/`DeadRule` findings are never false
//! positives, at the cost of possibly missing some.)

use pp_engine::protocol::{CompiledProtocol, StateId};

/// Result of the support-abstraction fixpoint.
#[derive(Debug)]
pub struct ReachSummary {
    /// `reachable[s]` — whether state `s` is in the fixpoint support.
    pub reachable: Vec<bool>,
    /// Non-identity ordered pairs `(p, q)` with `p, q` both reachable —
    /// the rules that can (abstractly) fire.
    pub live_pairs: Vec<(StateId, StateId)>,
    /// Non-identity ordered pairs where `p` or `q` is unreachable —
    /// dead entries in the rule table.
    pub dead_pairs: Vec<(StateId, StateId)>,
}

impl ReachSummary {
    /// States outside the fixpoint, in id order.
    pub fn unreachable_states(&self, proto: &CompiledProtocol) -> Vec<StateId> {
        proto
            .states()
            .filter(|s| !self.reachable[s.index()])
            .collect()
    }
}

/// Run the support fixpoint from the protocol's initial state.
pub fn analyze(proto: &CompiledProtocol) -> ReachSummary {
    let n = proto.num_states();
    let mut reachable = vec![false; n];
    reachable[proto.initial_state().index()] = true;

    // Chaotic iteration: re-scan the rule table until no support grows.
    // |Q| is small (3k − 2 for the paper's protocol), so the O(|Q|³)
    // worst case is irrelevant.
    let mut changed = true;
    while changed {
        changed = false;
        for p in proto.states() {
            if !reachable[p.index()] {
                continue;
            }
            for q in proto.states() {
                if !reachable[q.index()] {
                    continue;
                }
                let (p2, q2) = proto.delta(p, q);
                if !reachable[p2.index()] {
                    reachable[p2.index()] = true;
                    changed = true;
                }
                if !reachable[q2.index()] {
                    reachable[q2.index()] = true;
                    changed = true;
                }
            }
        }
    }

    let mut live_pairs = Vec::new();
    let mut dead_pairs = Vec::new();
    for e in proto.rule_entries() {
        if reachable[e.p.index()] && reachable[e.q.index()] {
            live_pairs.push((e.p, e.q));
        } else {
            dead_pairs.push((e.p, e.q));
        }
    }

    ReachSummary {
        reachable,
        live_pairs,
        dead_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;

    #[test]
    fn chain_is_fully_reachable() {
        // a → b → c via interactions with the initial state.
        let mut spec = ProtocolSpec::new("chain");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, a, a, b);
        spec.add_rule_symmetric(a, b, a, c);
        let p = spec.compile().unwrap();
        let r = analyze(&p);
        assert!(r.unreachable_states(&p).is_empty());
        assert!(r.dead_pairs.is_empty());
        let _ = (a, b, c);
    }

    #[test]
    fn zombie_state_and_rule_detected() {
        let mut spec = ProtocolSpec::new("zombie");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let z = spec.add_state("z", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, a, a, b);
        // z is produced only from z — never from the reachable support.
        spec.add_rule_symmetric(z, b, z, z);
        let p = spec.compile().unwrap();
        let r = analyze(&p);
        assert_eq!(r.unreachable_states(&p), vec![z]);
        // Both orders of the (z, b) rule are dead.
        assert_eq!(r.dead_pairs.len(), 2);
        assert!(r.dead_pairs.iter().all(|&(x, y)| x == z || y == z));
        let _ = (a, b);
    }

    #[test]
    fn diagonal_closure_uses_two_agents_in_same_state() {
        // b is only produced by (a, a) — requires the p = q closure step.
        let mut spec = ProtocolSpec::new("diag");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        let p = spec.compile().unwrap();
        let r = analyze(&p);
        assert!(r.reachable[b.index()]);
        assert!(r.unreachable_states(&p).is_empty());
    }
}
