//! # pp-lint — static protocol analysis
//!
//! A static analyzer for compiled population protocols. Where pp-verify
//! explores the configuration space of one `(protocol, n)` instance,
//! pp-lint analyses the *rule table itself*, so its facts hold for every
//! population size at once:
//!
//! * [`invariant`] — extracts an integer basis of the protocol's linear
//!   P-invariants (the left-nullspace of the rule displacement matrix,
//!   computed by fraction-free Gaussian elimination over ℤ) and decides
//!   whether a declared functional — e.g. the paper's Lemma 1 residuals —
//!   is conserved, with per-rule violation anchors when it is not.
//! * [`reach`] — a sound support-abstraction fixpoint flagging states no
//!   reachable configuration can contain and rules that can never fire.
//! * [`checks`] — the expectation-gated lint pass: mirror closure and
//!   diagonal symmetry, rule-label coverage against Algorithm 1's
//!   `r1`–`r10`, group-map sanity, state budgets, and the invariant
//!   checks above, producing a [`findings::LintReport`].
//! * [`registry`] — the built-in protocol zoo paired with each family's
//!   declared contract, so `pp-lint --all-protocols --deny warnings`
//!   gates CI without suppressions.
//! * [`topo`] — topology-aware strand-risk heuristics: warns when a
//!   protocol's chain-building progression is deeper than a declared
//!   graph degree bound can serve (the caller — e.g. `pp-sweep`'s lint
//!   gate — supplies the bound, keeping pp-lint graph-library-free).
//!
//! The derived invariants are exported as plain coefficient vectors
//! (see [`invariant::Functional`]) that pp-verify consumes as a
//! certified pruning oracle: an invariant proven inductively here needs
//! *zero* state exploration to check there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]

pub mod checks;
// The CLI surface prints to stdout by design.
#[allow(clippy::print_stdout)]
pub mod cli;
pub mod findings;
pub mod invariant;
pub mod reach;
pub mod registry;
pub mod topo;

pub use checks::{lint, Expectations};
pub use findings::{Finding, FindingKind, LintReport, Severity};
pub use invariant::{Functional, InvariantBasis};
