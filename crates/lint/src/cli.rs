//! The `pp-lint` command-line interface.
//!
//! ```text
//! pp-lint --all-protocols [--format text|json] [--deny warnings] [--out FILE]
//! pp-lint --protocol FAMILY [--k N] [--h N] [--format text|json] [--deny warnings] [--out FILE]
//! pp-lint list
//! ```
//!
//! `FAMILY` is `ukp`, `basic`, `oneside`, `bipartition`, `composed`
//! (size via `--h`), `approx`, or a classics slug (`epidemic`,
//! `leader-election`, `approx-majority`). Exit code is 0 when every
//! linted protocol is clean at the chosen threshold, 1 when any has an
//! `Error` finding (or a `Warning`, under `--deny warnings`), and 2 on
//! usage errors.

use crate::checks::lint;
use crate::findings::Severity;
use crate::registry::{self, Entry};
use pp_telemetry::json::Value;

/// Entry point; returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    match run(args) {
        Ok(denied) => i32::from(denied),
        Err(msg) => {
            eprintln!("pp-lint: {msg}");
            2
        }
    }
}

struct Options {
    all: bool,
    protocol: Option<String>,
    k: Option<usize>,
    h: Option<usize>,
    format: String,
    deny_warnings: bool,
    out: Option<String>,
    list: bool,
    help: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        all: false,
        protocol: None,
        k: None,
        h: None,
        format: "text".to_string(),
        deny_warnings: false,
        out: None,
        list: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("--{flag} requires a value"))
        };
        match a.as_str() {
            "--all-protocols" => o.all = true,
            "--protocol" => o.protocol = Some(value("protocol")?),
            "--k" => o.k = Some(value("k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--h" => o.h = Some(value("h")?.parse().map_err(|e| format!("--h: {e}"))?),
            "--format" => {
                let f = value("format")?;
                if f != "text" && f != "json" {
                    return Err(format!("--format must be text or json, got `{f}`"));
                }
                o.format = f;
            }
            "--deny" => {
                let d = value("deny")?;
                if d != "warnings" {
                    return Err(format!("--deny accepts only `warnings`, got `{d}`"));
                }
                o.deny_warnings = true;
            }
            "--out" => o.out = Some(value("out")?),
            "list" => o.list = true,
            "help" | "--help" | "-h" => o.help = true,
            other => return Err(format!("unknown argument `{other}` (try `pp-lint help`)")),
        }
    }
    Ok(o)
}

fn print_usage() {
    println!(
        "pp-lint: static analysis of population protocols

usage:
  pp-lint --all-protocols [--format text|json] [--deny warnings] [--out FILE]
  pp-lint --protocol FAMILY [--k N] [--h N] [--format text|json] [--deny warnings] [--out FILE]
  pp-lint list"
    );
}

/// Returns `Ok(true)` when findings at/above the threshold were found.
fn run(args: &[String]) -> Result<bool, String> {
    let o = parse(args)?;
    if o.help {
        print_usage();
        return Ok(false);
    }
    if o.list {
        for e in registry::all() {
            println!("{}", e.slug);
        }
        return Ok(false);
    }

    let entries: Vec<Entry> = if o.all {
        registry::all()
    } else if let Some(name) = &o.protocol {
        let size = o.k.or(o.h);
        vec![registry::by_name(name, size)
            .ok_or_else(|| format!("unknown protocol `{name}` (try `pp-lint list`)"))?]
    } else {
        print_usage();
        return Err("nothing to lint: pass --all-protocols or --protocol".to_string());
    };

    let threshold = if o.deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    let mut denied = false;
    let mut text = String::new();
    let mut reports: Vec<Value> = Vec::new();
    for entry in &entries {
        let report = lint(&entry.proto, &entry.expect);
        if report.max_severity() >= Some(threshold) {
            denied = true;
        }
        if o.format == "json" || o.out.is_some() {
            reports.push(report.to_json(&entry.proto));
        }
        if o.format == "text" {
            text.push_str(&report.render_text(&entry.proto));
        }
    }

    let json = Value::Arr(reports).encode();
    if let Some(path) = &o.out {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    match o.format.as_str() {
        "json" => println!("{json}"),
        _ => print!("{text}"),
    }
    if denied {
        eprintln!(
            "pp-lint: findings at severity {} or above in {} protocol(s)",
            threshold,
            entries.len()
        );
    }
    Ok(denied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn all_protocols_clean_under_deny_warnings() {
        assert_eq!(
            main_with_args(&s(&[
                "--all-protocols",
                "--deny",
                "warnings",
                "--format",
                "json"
            ])),
            0
        );
    }

    #[test]
    fn single_protocol_by_family_and_k() {
        assert_eq!(main_with_args(&s(&["--protocol", "ukp", "--k", "4"])), 0);
    }

    #[test]
    fn unknown_protocol_is_usage_error() {
        assert_eq!(main_with_args(&s(&["--protocol", "nope"])), 2);
    }

    #[test]
    fn missing_target_is_usage_error() {
        assert_eq!(main_with_args(&s(&["--format", "json"])), 2);
    }

    #[test]
    fn bad_format_rejected() {
        assert_eq!(
            main_with_args(&s(&["--all-protocols", "--format", "yaml"])),
            2
        );
    }
}
