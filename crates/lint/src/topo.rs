//! Topology-aware strand-risk analysis.
//!
//! The paper's correctness argument assumes the complete interaction
//! graph: any agent can eventually meet any other, so a chain-builder
//! always finds the partners its next rule needs. On a bounded-degree
//! topology that guarantee evaporates — an agent has at most `d`
//! distinct neighbours, and once those neighbours settle into states the
//! agent's pending rules cannot use, the progression strands even under
//! a globally fair scheduler restricted to the graph's edges.
//!
//! [`strand_findings`] turns that observation into a *heuristic* lint:
//! it measures the protocol's **progression depth** — the length of the
//! longest shortest advancement chain `s₀ → s₁ → …` where each hop
//! needs one effective interaction — and warns when that depth exceeds
//! what a declared degree bound can serve (`depth > degree + 1`). The
//! check is deliberately graph-family-agnostic (pp-lint analyses rule
//! tables, not graphs; the caller supplies the bound, e.g. from
//! `pp_topo::TopoSpec::degree_bound`), and it is a warning, not an
//! error: sparse topologies remain simulable, the finding just predicts
//! censored trials.

use crate::findings::{Finding, FindingKind, Severity};
use pp_engine::protocol::{CompiledProtocol, StateId};

/// Per-state advancement depth: `depth[s]` is the minimum number of
/// effective interactions an agent needs to go from the initial state to
/// `s` (each hop `a → a'` witnessed by some rule `δ(a, q)` or `δ(q, a)`
/// that changes the agent's own state). `None` for states no sequence of
/// own-state hops reaches — a superset of truly unreachable states,
/// since partner availability is not modelled here.
pub fn progression_depths(proto: &CompiledProtocol) -> Vec<Option<u32>> {
    let s = proto.num_states();
    let mut depth: Vec<Option<u32>> = vec![None; s];
    let init = proto.initial_state();
    depth[init.index()] = Some(0);
    let mut frontier = vec![init];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &a in &frontier {
            for q in proto.states() {
                // `a` advances as the initiator of δ(a, q) or as the
                // responder of δ(q, a); the partner `q` ranges over all
                // states — partner availability is the part this
                // abstraction deliberately does not model.
                let (a_as_init, _) = proto.delta(a, q);
                let (_, a_as_resp) = proto.delta(q, a);
                for hop in [a_as_init, a_as_resp] {
                    if hop != a && depth[hop.index()].is_none() {
                        depth[hop.index()] = Some(level);
                        next.push(hop);
                    }
                }
            }
        }
        frontier = next;
    }
    depth
}

/// Warn when the protocol's progression depth exceeds what a
/// bounded-degree topology can serve. `max_degree = None` (the complete
/// graph, or an unknown family) never warns. Returns at most one
/// finding, anchored at the deepest states.
pub fn strand_findings(proto: &CompiledProtocol, max_degree: Option<u32>) -> Vec<Finding> {
    let Some(d) = max_degree else {
        return Vec::new();
    };
    let depths = progression_depths(proto);
    let deepest = depths.iter().flatten().copied().max().unwrap_or(0);
    // An agent with d neighbours can witness at most d distinct settled
    // partners plus its own churn of re-meetings; a progression needing
    // more than d + 1 effective hops can exhaust useful partners.
    if deepest <= d + 1 {
        return Vec::new();
    }
    let anchors: Vec<StateId> = proto
        .states()
        .filter(|s| depths[s.index()] == Some(deepest))
        .collect();
    vec![Finding::new(
        Severity::Warning,
        FindingKind::TopologyStrandRisk,
        format!(
            "progression depth {deepest} exceeds degree bound {d}: reaching the \
             deepest state takes {deepest} effective interactions, but an agent on \
             a degree-{d} topology has at most {d} distinct partners — \
             chain-building can strand and trials may censor",
        ),
    )
    .with_states(anchors)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::kpartition::UniformKPartition;

    #[test]
    fn epidemic_is_strand_free_at_any_degree() {
        let proto = pp_protocols::classics::epidemic();
        let depths = progression_depths(&proto);
        assert!(depths.iter().flatten().all(|&d| d <= 1));
        assert!(strand_findings(&proto, Some(1)).is_empty());
        assert!(strand_findings(&proto, None).is_empty());
    }

    #[test]
    fn kpartition_chain_depth_grows_with_k() {
        let d3 = progression_depths(&UniformKPartition::new(3).compile());
        let d6 = progression_depths(&UniformKPartition::new(6).compile());
        let max3 = d3.iter().flatten().copied().max().unwrap();
        let max6 = d6.iter().flatten().copied().max().unwrap();
        assert!(
            max6 > max3,
            "chain depth must grow with k: {max3} vs {max6}"
        );
        // Every state is progression-reachable in the paper's protocol.
        assert!(d6.iter().all(Option::is_some));
    }

    #[test]
    fn ring_degree_warns_for_deep_chains_only() {
        let proto = UniformKPartition::new(6).compile();
        // Ring (degree 2): the k = 6 chain is far deeper than 3 hops.
        let findings = strand_findings(&proto, Some(2));
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.kind, FindingKind::TopologyStrandRisk);
        assert!(!f.states.is_empty(), "finding must anchor deepest states");
        // A generous bound swallows the chain: no warning.
        assert!(strand_findings(&proto, Some(64)).is_empty());
        // Complete graph (no bound): never warns.
        assert!(strand_findings(&proto, None).is_empty());
    }
}
