//! The built-in protocol zoo as lintable entries: each family paired
//! with the [`Expectations`] it promises.
//!
//! The paper's protocol (Algorithm 1) declares everything pp-lint can
//! check: symmetry, the full rule-label set, the `3k − 2` state budget,
//! and — centrally — the Lemma 1 residual functionals as conserved
//! invariants, which the lint pass then *proves* from the rule table
//! (inductive conservation plus membership in the derived P-invariant
//! basis). Every other family declares its own weaker contract, so the
//! whole zoo lints clean under `--deny warnings` without suppressions.

use crate::checks::Expectations;
use crate::invariant::Functional;
use pp_engine::protocol::CompiledProtocol;
use pp_protocols::bipartition::UniformBipartition;
use pp_protocols::classics;
use pp_protocols::hierarchical::HierarchicalPartition;
use pp_protocols::kpartition::ablation::BasicStrategyKPartition;
use pp_protocols::kpartition::variant::OneSidedAbortKPartition;
use pp_protocols::kpartition::UniformKPartition;
use pp_protocols::ratio::RatioPartition;

/// A lintable protocol: slug, compiled rules, and declared contract.
pub struct Entry {
    /// Stable identifier used by the CLI (`pp-lint --protocol <slug>`).
    pub slug: String,
    /// The compiled protocol.
    pub proto: CompiledProtocol,
    /// The family's declared contract.
    pub expect: Expectations,
}

impl Entry {
    fn new(slug: impl Into<String>, proto: CompiledProtocol, expect: Expectations) -> Self {
        Entry {
            slug: slug.into(),
            proto,
            expect,
        }
    }
}

/// The Lemma 1 residual functionals of the `k`-partition state layout,
/// as linear maps over counts: for each `x ∈ {1, .., k−1}`,
///
/// ```text
/// residual_x(c) = Σ_{p > x} c[m_p] + Σ_{q ≥ x} c[d_q] + c[g_k] − c[g_x]
/// ```
///
/// (`x = k` is identically zero and omitted). The paper proves these are
/// `0` on all reachable configurations (Lemma 1); pp-lint re-derives
/// that statically: each residual has value 0 at the all-`initial`
/// configuration and is conserved by every rule, hence zero on every
/// reachable configuration — for *any* population size.
pub fn lemma1_functionals(kp: &UniformKPartition) -> Vec<Functional> {
    let k = kp.k();
    let s = 3 * k - 2;
    (1..k)
        .map(|x| {
            let mut y = vec![0i64; s];
            if k >= 3 {
                for p in (x + 1).max(2)..=k - 1 {
                    y[kp.m(p).index()] += 1;
                }
                for q in x.max(1)..=k - 2 {
                    y[kp.d(q).index()] += 1;
                }
            }
            y[kp.g(k).index()] += 1;
            y[kp.g(x).index()] -= 1;
            Functional::new(format!("lemma1[x={x}]"), y)
        })
        .collect()
}

/// Total-population functional — conserved by every population protocol.
fn population(num_states: usize) -> Functional {
    Functional::new("population", vec![1; num_states])
}

/// Expected compiled rule labels of Algorithm 1 at a given `k`.
fn ukp_labels(k: usize) -> Vec<String> {
    let mut labels: Vec<&str> = match k {
        2 => vec!["r1", "r2", "r3", "r5"],
        3 => vec!["r1", "r2", "r3", "r4", "r5", "r7", "r8", "r10"],
        _ => vec!["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10"],
    };
    labels.sort_unstable();
    labels.into_iter().map(String::from).collect()
}

/// The paper's protocol at a given `k`.
pub fn ukp(k: usize) -> Entry {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let mut declared = lemma1_functionals(&kp);
    declared.push(population(proto.num_states()));
    Entry::new(
        format!("ukp-k{k}"),
        proto,
        Expectations {
            labelled: true,
            expected_labels: Some(ukp_labels(k)),
            state_budget: Some(3 * k - 2),
            declared_invariants: declared,
            ..Expectations::default()
        },
    )
}

/// The §3.2 basic-strategy ablation (rules 1–7 only, `2k` states).
pub fn basic(k: usize) -> Entry {
    let proto = BasicStrategyKPartition::new(k).compile();
    Entry::new(
        format!("basic-k{k}"),
        proto,
        Expectations {
            state_budget: Some(2 * k),
            declared_invariants: vec![population(2 * k)],
            ..Expectations::default()
        },
    )
}

/// The one-sided-abort variant (`k ≥ 3`). Shares the paper's state
/// layout, so the Lemma 1 functionals apply verbatim — and pp-lint
/// proves they survive the modified rule 8, confirming the variant
/// module's invariant claim statically.
pub fn oneside(k: usize) -> Entry {
    let variant = OneSidedAbortKPartition::new(k);
    let proto = variant.compile();
    let mut declared = lemma1_functionals(variant.base());
    declared.push(population(proto.num_states()));
    Entry::new(
        format!("oneside-k{k}"),
        proto,
        Expectations {
            state_budget: Some(3 * k - 2),
            declared_invariants: declared,
            ..Expectations::default()
        },
    )
}

/// The OPODIS 2017 4-state uniform bipartition.
pub fn bipartition() -> Entry {
    let proto = UniformBipartition::new().compile();
    Entry::new(
        "bipartition",
        proto,
        Expectations {
            state_budget: Some(4),
            declared_invariants: vec![population(4)],
            ..Expectations::default()
        },
    )
}

/// Recursive bipartition composition with `h` levels (`k = 2^h`).
pub fn composed(h: u32) -> Entry {
    let hp = HierarchicalPartition::composed(h);
    let n = hp.num_states();
    Entry::new(
        format!("composed-h{h}"),
        hp.compile(),
        Expectations {
            declared_invariants: vec![population(n)],
            ..Expectations::default()
        },
    )
}

/// Approximate k-partition baseline (Delporte-Gallet et al. style).
pub fn approx(k: usize) -> Entry {
    let hp = HierarchicalPartition::approx(k);
    let n = hp.num_states();
    Entry::new(
        format!("approx-k{k}"),
        hp.compile(),
        Expectations {
            declared_invariants: vec![population(n)],
            ..Expectations::default()
        },
    )
}

/// R-generalized ratio partition over the given ratios.
pub fn ratio(ratios: Vec<u32>) -> Entry {
    let slug = format!(
        "ratio-{}",
        ratios
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("-")
    );
    let rp = RatioPartition::new(ratios);
    let proto = rp.compile();
    let n = proto.num_states();
    // Slot folding only relabels groups; the rule table is the paper's,
    // so the slot-level Lemma 1 functionals still apply.
    let mut declared = lemma1_functionals(rp.slots());
    declared.push(population(n));
    Entry::new(
        slug,
        proto,
        Expectations {
            declared_invariants: declared,
            ..Expectations::default()
        },
    )
}

/// The classics (engine demonstrations). Asymmetric by design and
/// seeded (executions start from explicit mixtures, not all-`s0`).
pub fn classics_entries() -> Vec<Entry> {
    let seeded_asym = || Expectations {
        symmetric: false,
        seeded: true,
        ..Expectations::default()
    };
    vec![
        Entry::new(
            "epidemic",
            classics::epidemic(),
            Expectations {
                seeded: true,
                declared_invariants: vec![population(2)],
                ..Expectations::default()
            },
        ),
        Entry::new("leader-election", classics::leader_election(), {
            let mut e = seeded_asym();
            e.declared_invariants.push(population(2));
            e
        }),
        Entry::new("approx-majority", classics::approximate_majority().0, {
            let mut e = seeded_asym();
            e.declared_invariants.push(population(3));
            e
        }),
    ]
}

/// Every built-in protocol at the sizes CI lints (`--all-protocols`).
pub fn all() -> Vec<Entry> {
    let mut entries = vec![
        ukp(2),
        ukp(3),
        ukp(4),
        ukp(5),
        ukp(8),
        basic(3),
        basic(4),
        oneside(3),
        oneside(4),
        bipartition(),
        composed(1),
        composed(2),
        composed(3),
        approx(3),
        approx(5),
        ratio(vec![1, 2]),
        ratio(vec![2, 3, 1]),
    ];
    entries.extend(classics_entries());
    entries
}

/// Look up a single family by slug prefix and size parameter.
///
/// `slug` is a family name (`ukp`, `basic`, `oneside`, `bipartition`,
/// `composed`, `approx`) with the size given separately; `classics`
/// slugs are exact.
pub fn by_name(family: &str, size: Option<usize>) -> Option<Entry> {
    match (family, size) {
        ("ukp", Some(k)) if k >= 2 => Some(ukp(k)),
        ("ukp", None) => Some(ukp(3)),
        ("basic", Some(k)) if k >= 3 => Some(basic(k)),
        ("basic", None) => Some(basic(3)),
        ("oneside", Some(k)) if k >= 3 => Some(oneside(k)),
        ("oneside", None) => Some(oneside(3)),
        ("bipartition", None) => Some(bipartition()),
        ("composed", Some(h)) if (1..=6).contains(&h) => Some(composed(h as u32)),
        ("composed", None) => Some(composed(2)),
        ("approx", Some(k)) if k >= 2 => Some(approx(k)),
        ("approx", None) => Some(approx(3)),
        (name, None) => classics_entries().into_iter().find(|e| e.slug == name),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::lint;
    use crate::findings::{FindingKind, Severity};

    /// The acceptance bar: the whole zoo is clean under `--deny warnings`.
    #[test]
    fn zoo_is_warning_free() {
        for entry in all() {
            let report = lint(&entry.proto, &entry.expect);
            assert!(
                report.max_severity() <= Some(Severity::Info),
                "{} not clean:\n{}",
                entry.slug,
                report.render_text(&entry.proto)
            );
        }
    }

    /// Lemma 1 is implied by the auto-derived basis at every k — the
    /// paper's invariant falls out of the rule table statically.
    #[test]
    fn lemma1_certified_for_all_k() {
        for k in [2, 3, 4, 5, 8] {
            let entry = ukp(k);
            let report = lint(&entry.proto, &entry.expect);
            assert!(
                report.has(FindingKind::InvariantCertified),
                "ukp-k{k} lemma1 not certified"
            );
            assert!(!report.has(FindingKind::InvariantNotImplied));
            // k − 1 residuals + population, all certified.
            let certified = report
                .findings
                .iter()
                .filter(|f| f.kind == FindingKind::InvariantCertified)
                .count();
            assert_eq!(certified, k, "ukp-k{k}: {certified} certified");
        }
    }

    /// The functional registry matches the runtime residual: evaluating
    /// the static functionals at a configuration equals
    /// `UniformKPartition::lemma1_residual` (minus the trivial x = k row).
    #[test]
    fn lemma1_functionals_match_runtime_residual() {
        for k in [3usize, 4, 5] {
            let kp = UniformKPartition::new(k);
            let fs = lemma1_functionals(&kp);
            assert_eq!(fs.len(), k - 1);
            // An arbitrary (not necessarily reachable) configuration.
            let mut counts = vec![0u64; 3 * k - 2];
            for (i, c) in counts.iter_mut().enumerate() {
                *c = (7 * i + 3) as u64 % 5;
            }
            let runtime = kp.lemma1_residual(&counts);
            for (x, f) in (1..k).zip(&fs) {
                assert_eq!(f.value_at(&counts), runtime[x - 1], "k={k} x={x} mismatch");
            }
        }
    }

    /// The one-sided-abort variant conserves Lemma 1 too — the module's
    /// docstring claim, proven statically here.
    #[test]
    fn oneside_preserves_lemma1() {
        for k in [3, 4, 5] {
            let entry = oneside(k);
            let report = lint(&entry.proto, &entry.expect);
            assert!(!report.has(FindingKind::ConservationViolation));
            assert!(!report.has(FindingKind::InvariantNotImplied));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("ukp", Some(4)).is_some());
        assert!(by_name("ukp", Some(1)).is_none());
        assert!(by_name("bipartition", None).is_some());
        assert!(by_name("epidemic", None).is_some());
        assert!(by_name("nope", None).is_none());
    }
}
