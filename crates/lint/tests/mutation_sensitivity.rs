//! Mutation sensitivity: every class of protocol defect pp-lint claims
//! to catch is injected into the paper's protocol (and relatives), and
//! the lint pass must flag it with the expected finding kind.
//!
//! Mutations are built from the pristine `ProtocolSpec` via
//! `retain_rules` (drop an order, drop a rule) plus re-registration of a
//! perturbed replacement — the same machinery a fault-injection harness
//! would use — so each mutant differs from the original by exactly the
//! defect under test.

use pp_engine::protocol::CompiledProtocol;
use pp_engine::spec::ProtocolSpec;
use pp_lint::registry;
use pp_lint::{lint, Expectations, FindingKind};
use pp_protocols::kpartition::UniformKPartition;

/// Lint a mutated k-partition spec under the family's full contract.
fn lint_ukp_mutant(k: usize, proto: &CompiledProtocol) -> pp_lint::LintReport {
    let expect = registry::ukp(k).expect;
    lint(proto, &expect)
}

fn ukp_spec(k: usize) -> (UniformKPartition, ProtocolSpec) {
    let kp = UniformKPartition::new(k);
    (kp, kp.spec())
}

#[test]
fn pristine_protocol_is_clean() {
    for k in [2, 3, 4, 5] {
        let entry = registry::ukp(k);
        let report = lint(&entry.proto, &entry.expect);
        assert!(
            report.max_severity() <= Some(pp_lint::Severity::Info),
            "pristine ukp-k{k} not clean:\n{}",
            report.render_text(&entry.proto)
        );
    }
}

/// Mutation 1 — drop one order of the symmetric rule 5. The surviving
/// order makes the two interaction orders disagree.
#[test]
fn dropped_mirror_is_flagged() {
    let (kp, mut spec) = ukp_spec(4);
    let (ini, inip) = (kp.initial(), kp.initial_prime());
    let mut dropped = false;
    spec.retain_rules(|p, q, _, _, label| {
        let hit = !dropped && label == Some("r5") && p == inip && q == ini;
        if hit {
            dropped = true;
        }
        !hit
    });
    let proto = spec.compile().expect("mutant still compiles");
    let report = lint_ukp_mutant(4, &proto);
    assert!(
        report.has(FindingKind::MissingMirror),
        "missing mirror not flagged:\n{}",
        report.render_text(&proto)
    );
    assert!(report.deny(), "mirror defects must gate execution");
}

/// Mutation 2 — relabel rule 10. The compiled label set no longer
/// matches Algorithm 1's.
#[test]
fn relabelled_rule_is_flagged() {
    let (kp, mut spec) = ukp_spec(4);
    let mut saved = Vec::new();
    spec.retain_rules(|p, q, p2, q2, label| {
        if label == Some("r10") {
            saved.push((p, q, p2, q2));
            return false;
        }
        true
    });
    assert!(!saved.is_empty());
    for (p, q, p2, q2) in saved {
        spec.add_rule_labelled(p, q, p2, q2, "r99");
    }
    let proto = spec.compile().expect("mutant still compiles");
    let report = lint_ukp_mutant(4, &proto);
    assert!(
        report.has(FindingKind::UnexpectedRuleLabels),
        "relabel not flagged:\n{}",
        report.render_text(&proto)
    );
    let _ = kp;
}

/// Mutation 3 — break conservation: rule 10 releases `(g_1, initial)`
/// instead of `(initial, initial)`, silently leaking an extra settled
/// g1-agent. The declared Lemma 1 residuals drift and the lint pass
/// pinpoints the offending pair.
#[test]
fn broken_conservation_is_flagged_with_anchor() {
    let (kp, mut spec) = ukp_spec(4);
    spec.retain_rules(|_, _, _, _, label| label != Some("r10"));
    let (d1, g1, ini) = (kp.d(1), kp.g(1), kp.initial());
    spec.add_rule_symmetric_labelled(d1, g1, g1, ini, "r10");
    let proto = spec.compile().expect("mutant still compiles");
    let report = lint_ukp_mutant(4, &proto);
    assert!(
        report.has(FindingKind::ConservationViolation),
        "conservation break not flagged:\n{}",
        report.render_text(&proto)
    );
    assert!(report.deny());
    let violation = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::ConservationViolation)
        .unwrap();
    assert!(
        violation.pairs.contains(&(d1, g1)) || violation.pairs.contains(&(g1, d1)),
        "violation not anchored at the mutated rule: {:?}",
        violation.pairs
    );
}

/// Mutation 4 — graft a zombie state reachable from nowhere, plus a rule
/// that only it can fire.
#[test]
fn unreachable_state_and_dead_rule_are_flagged() {
    let (kp, mut spec) = ukp_spec(4);
    let z = spec.add_state("zombie", 1);
    spec.add_rule_symmetric(z, kp.g(1), z, z);
    let proto = spec.compile().expect("mutant still compiles");
    let report = lint_ukp_mutant(4, &proto);
    assert!(
        report.has(FindingKind::UnreachableState),
        "zombie state not flagged:\n{}",
        report.render_text(&proto)
    );
    assert!(report.has(FindingKind::DeadRule));
    // The grafted state also blows the 3k − 2 budget.
    assert!(report.has(FindingKind::StateBudgetExceeded));
}

/// Mutation 5 — break diagonal symmetry: rule 1 splits two identical
/// initial agents into different states, leaving the protocol class the
/// paper restricts itself to.
#[test]
fn asymmetric_diagonal_is_flagged() {
    let (kp, mut spec) = ukp_spec(4);
    spec.retain_rules(|_, _, _, _, label| label != Some("r1"));
    spec.add_rule_labelled(
        kp.initial(),
        kp.initial(),
        kp.initial(),
        kp.initial_prime(),
        "r1",
    );
    let proto = spec.compile().expect("mutant still compiles");
    let report = lint_ukp_mutant(4, &proto);
    assert!(
        report.has(FindingKind::AsymmetricDiagonal),
        "asymmetric diagonal not flagged:\n{}",
        report.render_text(&proto)
    );
    assert!(report.deny());
}

/// Mutation 6 — orphan a label: register rule 3's pairs twice, the
/// second time under a fresh label, so the original label covers no
/// pair. (Later labelled registrations for a pair overwrite earlier
/// labels; the transitions themselves agree, so the spec compiles.)
#[test]
fn orphan_label_is_flagged() {
    let (kp, mut spec) = ukp_spec(4);
    let mut r3 = Vec::new();
    spec.retain_rules(|p, q, p2, q2, label| {
        if label == Some("r3") {
            r3.push((p, q, p2, q2));
        }
        true
    });
    assert!(!r3.is_empty());
    for (p, q, p2, q2) in r3 {
        spec.add_rule_labelled(p, q, p2, q2, "r3-shadow");
    }
    let proto = spec.compile().expect("agreeing duplicates compile");
    let report = lint_ukp_mutant(4, &proto);
    assert!(
        report.has(FindingKind::OrphanRuleLabel),
        "orphaned label not flagged:\n{}",
        report.render_text(&proto)
    );
    assert!(report.has(FindingKind::UnexpectedRuleLabels));
    let _ = kp;
}

/// The mutations above also fool the ablation/bipartition contracts when
/// applied there: dropping the bipartition's mirror is caught under its
/// (weaker, unlabelled) expectations too.
#[test]
fn bipartition_dropped_mirror_is_flagged() {
    use pp_protocols::bipartition::UniformBipartition;
    let bp = UniformBipartition::new();
    let mut spec = bp.spec();
    let mut dropped = false;
    spec.retain_rules(|p, q, _, _, _| {
        // Drop the first off-diagonal order encountered.
        let hit = !dropped && p != q;
        if hit {
            dropped = true;
        }
        !hit
    });
    let proto = spec.compile().expect("mutant still compiles");
    let report = lint(
        &proto,
        &Expectations {
            state_budget: Some(4),
            ..Expectations::default()
        },
    );
    assert!(
        report.has(FindingKind::MissingMirror),
        "bipartition mirror drop not flagged:\n{}",
        report.render_text(&proto)
    );
}
