//! Property tests for the dynamics subsystem's scheduler layer.
//!
//! The load-bearing property: restricting the paper's uniform random
//! scheduler to a *complete* topology must not change the interaction
//! distribution — `UniformEdgeScheduler` on `CompleteTopology(n)` is the
//! same process as `pp_engine`'s `UniformRandomScheduler`, both exactly
//! (equal seeds give byte-identical pair sequences, by shared RNG
//! consumption) and statistically (a chi-square test over ordered-pair
//! frequencies cannot tell independently seeded runs of the two apart).

use pp_engine::population::AgentPopulation;
use pp_engine::scheduler::{AgentScheduler, UniformRandomScheduler};
use pp_protocols::kpartition::UniformKPartition;
use pp_topo::scheduler::{EdgeScheduler, UniformEdgeScheduler};
use pp_topo::topology::{CompleteTopology, EdgeListTopology};
use proptest::prelude::*;

/// Two-sample chi-square statistic over ordered-pair counts:
/// `Σ (aᵢ − bᵢ)² / (aᵢ + bᵢ)` over cells with any mass. Under the null
/// (same distribution) it is ~χ² with `cells − 1` degrees of freedom.
fn two_sample_chi_square(a: &[u64], b: &[u64]) -> (f64, usize) {
    let mut stat = 0.0;
    let mut df = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let total = x + y;
        if total == 0 {
            continue;
        }
        let d = x as f64 - y as f64;
        stat += d * d / total as f64;
        df += 1;
    }
    (stat, df.saturating_sub(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On the complete graph, the uniform edge scheduler's ordered-pair
    /// distribution is indistinguishable from `UniformRandomScheduler`'s
    /// by a two-sample chi-square test, at every small n and any seeds.
    #[test]
    fn uniform_edge_scheduler_matches_engine_on_complete(
        n in 3usize..8,
        seed in any::<u64>(),
    ) {
        let proto = UniformKPartition::new(3).compile();
        let pop = AgentPopulation::new(&proto, n);
        let topo = CompleteTopology::new(n);
        let cells = n * n; // ordered (i, j) flattened; diagonal stays 0
        let draws = 60 * n * (n - 1);

        let mut edge = UniformEdgeScheduler::from_seed(seed);
        // Independent seed: the statistical claim must not lean on the
        // byte-identity fast path.
        let mut base = UniformRandomScheduler::from_seed(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut edge_counts = vec![0u64; cells];
        let mut base_counts = vec![0u64; cells];
        for _ in 0..draws {
            let (i, j) = edge.next_pair(&topo, &pop);
            prop_assert_ne!(i, j);
            edge_counts[i * n + j] += 1;
            let (i, j) = base.select_agents(&pop);
            prop_assert_ne!(i, j);
            base_counts[i * n + j] += 1;
        }

        let (stat, df) = two_sample_chi_square(&edge_counts, &base_counts);
        prop_assert_eq!(df, n * (n - 1) - 1);
        // Accept out to ~6 sigma of the χ²(df) mean: far beyond any
        // plausible quantile, so only a genuinely different distribution
        // (or broken sampling) trips it.
        let bound = df as f64 + 6.0 * (2.0 * df as f64).sqrt();
        prop_assert!(
            stat < bound,
            "chi-square {stat:.1} over df={df} exceeds {bound:.1} at n={n}"
        );
    }

    /// Equal seeds: the two schedulers consume their RNGs identically on
    /// the complete graph, so the pair sequences coincide byte for byte.
    #[test]
    fn equal_seeds_give_identical_sequences(
        n in 3usize..16,
        seed in any::<u64>(),
    ) {
        let proto = UniformKPartition::new(3).compile();
        let pop = AgentPopulation::new(&proto, n);
        let topo = CompleteTopology::new(n);
        let mut edge = UniformEdgeScheduler::from_seed(seed);
        let mut base = UniformRandomScheduler::from_seed(seed);
        for step in 0..200 {
            let e = edge.next_pair(&topo, &pop);
            let b = base.select_agents(&pop);
            prop_assert_eq!(e, b, "sequences diverge at step {}", step);
        }
    }

    /// On any ring, the uniform edge scheduler only ever returns
    /// adjacent agents — restriction to the graph's edges is real.
    #[test]
    fn edge_scheduler_respects_ring_adjacency(
        n in 4usize..12,
        seed in any::<u64>(),
    ) {
        let proto = UniformKPartition::new(3).compile();
        let pop = AgentPopulation::new(&proto, n);
        let topo = EdgeListTopology::ring(n);
        let mut edge = UniformEdgeScheduler::from_seed(seed);
        for _ in 0..300 {
            let (i, j) = edge.next_pair(&topo, &pop);
            let adjacent = (i + 1) % n == j || (j + 1) % n == i;
            prop_assert!(adjacent, "({}, {}) is not a ring edge at n={}", i, j, n);
        }
    }
}
