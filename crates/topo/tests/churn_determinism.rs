//! Churn determinism, end to end through the trace layer: identical
//! `(protocol, n, dynamics, churn plan, seed)` must reproduce a run
//! *bit for bit* — the recorded `PPTRACE1` byte streams are equal — and
//! the recorded trace must survive the full record → decode → replay →
//! verify cycle, lifecycle events included.
//!
//! The churn plan aims its departure at `m2`, the k = 3 protocol's
//! chain-builder state: removing a mid-chain agent is exactly the event
//! the paper's complete-graph analysis never has to survive, so it is
//! the case the trace format must capture faithfully.

use pp_engine::observer::LifecycleKind;
use pp_protocols::kpartition::UniformKPartition;
use pp_topo::{ChurnEvent, ChurnPlan, Dynamics};
use pp_trace::format::{TraceHeader, TraceKernel};
use pp_trace::replay::Trace;
use pp_trace::TraceRecorder;

const N: usize = 12;
const SEED: u64 = 0xA11CE;
const BUDGET: u64 = 20_000;

/// Record one seeded ring run with the given churn plan; returns the
/// finished trace bytes and the dynamics outcome.
fn record_run(seed: u64, plan: &ChurnPlan) -> (Vec<u8>, pp_topo::DynRunOutcome) {
    let kp = UniformKPartition::new(3);
    let proto = kp.compile();
    let dynamics = Dynamics::parse("ring;uniform;j0.l0.c0.p0").expect("fragment parses");
    // Final population size: N plus the plan's net churn.
    let final_n = (N as i64 + plan.net()) as u64;
    let criterion = kp.stable_signature(final_n);

    let mut initial_counts = vec![0u64; proto.num_states()];
    initial_counts[proto.initial_state().index()] = N as u64;
    let header = TraceHeader {
        protocol: proto.name().to_string(),
        state_names: proto
            .states()
            .map(|s| proto.state_name(s).to_string())
            .collect(),
        n: N as u64,
        seed,
        kernel: TraceKernel::Naive,
        initial_counts,
    };
    let mut recorder = TraceRecorder::new(&header);

    let outcome = pp_topo::run_dynamics_with_plan(
        &proto,
        N,
        &dynamics,
        plan,
        &criterion,
        BUDGET,
        seed,
        &mut recorder,
    )
    .expect("dynamics run starts");
    let bytes = recorder.finish(&outcome.final_counts);
    (bytes, outcome)
}

/// The test's churn plan: leave a chain-builder mid-run, then a join and
/// a crash, netting one agent below the initial population.
fn chain_builder_plan() -> ChurnPlan {
    let proto = UniformKPartition::new(3).compile();
    let m2 = proto.state_by_name("m2").expect("k = 3 has chain state m2");
    ChurnPlan::from_events(vec![
        ChurnEvent {
            at: 600,
            kind: LifecycleKind::Leave,
            target_state: Some(m2),
        },
        ChurnEvent {
            at: 1_200,
            kind: LifecycleKind::Join,
            target_state: None,
        },
        ChurnEvent {
            at: 1_800,
            kind: LifecycleKind::Crash,
            target_state: None,
        },
    ])
}

#[test]
fn identical_seed_and_plan_give_bit_identical_traces() {
    let plan = chain_builder_plan();
    let (bytes_a, outcome_a) = record_run(SEED, &plan);
    let (bytes_b, outcome_b) = record_run(SEED, &plan);
    assert_eq!(outcome_a, outcome_b, "outcomes must agree before bytes");
    assert_eq!(
        bytes_a, bytes_b,
        "equal seed + plan must replay bit-identically"
    );
    assert_eq!(outcome_a.applied, [1, 1, 1], "all three events must apply");

    // A different seed is a genuinely different run — the byte equality
    // above is not vacuous.
    let (bytes_c, _) = record_run(SEED + 1, &plan);
    assert_ne!(bytes_a, bytes_c, "different seeds must diverge");
}

#[test]
fn recorded_churn_trace_replays_and_verifies() {
    let proto = UniformKPartition::new(3).compile();
    let plan = chain_builder_plan();
    let (bytes, outcome) = record_run(SEED, &plan);

    let trace = Trace::decode(&bytes).expect("recorded trace decodes");
    // replay_checked validates every transition against δ and the
    // lifecycle arithmetic against the footer.
    let summary = trace
        .replay_checked(&proto)
        .expect("recorded trace verifies against the rule table");
    assert_eq!(summary.lifecycle, 3, "all three lifecycle events recorded");
    assert_eq!(
        trace.final_counts, outcome.final_counts,
        "replayed final configuration matches the live run"
    );
    assert_eq!(
        outcome.final_counts.iter().sum::<u64>(),
        N as u64 - 1,
        "leave + join + crash nets one agent below the initial population"
    );

    // The targeted departure really removed a chain-builder: the trace's
    // Leave record carries state m2.
    let m2 = proto.state_by_name("m2").unwrap();
    let leave_states: Vec<_> = trace
        .records
        .iter()
        .filter_map(|r| match r {
            pp_trace::TraceRecord::Lifecycle { kind, state, .. }
                if *kind == LifecycleKind::Leave =>
            {
                Some(*state)
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        leave_states,
        vec![m2.0],
        "the leave event must hit the chain-builder state m2"
    );
}
