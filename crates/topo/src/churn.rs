//! The churn engine: seeded, replayable lifecycle event streams.
//!
//! A [`crate::spec::ChurnSpec`] is declarative ("2 joins, 1 leave, every
//! 500 interactions"); [`ChurnPlan::materialize`] turns it into a concrete
//! ordered event stream, deterministically in the churn seed: event kinds
//! are shuffled with a seeded Fisher–Yates so joins and departures
//! interleave reproducibly, and event `i` lands after interaction
//! `period · (i + 1)`. Tests (and adversarial scenarios) can also build a
//! [`ChurnPlan`] by hand — e.g. to crash specifically a chain-builder
//! agent mid-recruitment via [`ChurnEvent::target_state`].

use crate::spec::ChurnSpec;
use pp_engine::observer::LifecycleKind;
use pp_engine::protocol::StateId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One scheduled lifecycle event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The event applies once `at` interactions have been performed
    /// (before interaction `at + 1`).
    pub at: u64,
    /// Join, leave, or crash.
    pub kind: LifecycleKind,
    /// For departures: prefer a victim currently in this state (falling
    /// back to a uniform victim if none exists). `None` picks uniformly.
    /// Ignored for joins.
    pub target_state: Option<StateId>,
}

/// A concrete, ordered lifecycle event stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (no churn).
    pub fn empty() -> Self {
        ChurnPlan::default()
    }

    /// A plan from explicit events; sorted by `at` (stable, so
    /// same-instant events keep their given order).
    pub fn from_events(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        ChurnPlan { events }
    }

    /// Materialise a declarative spec into a concrete stream,
    /// deterministically in `seed`.
    pub fn materialize(spec: &ChurnSpec, seed: u64) -> Self {
        if spec.is_none() {
            return ChurnPlan::empty();
        }
        let mut kinds: Vec<LifecycleKind> = Vec::with_capacity(spec.total_events() as usize);
        kinds.extend(std::iter::repeat_n(
            LifecycleKind::Join,
            spec.joins as usize,
        ));
        kinds.extend(std::iter::repeat_n(
            LifecycleKind::Leave,
            spec.leaves as usize,
        ));
        kinds.extend(std::iter::repeat_n(
            LifecycleKind::Crash,
            spec.crashes as usize,
        ));
        let mut rng = SmallRng::seed_from_u64(seed);
        kinds.shuffle(&mut rng);
        let events = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| ChurnEvent {
                at: spec.period * (i as u64 + 1),
                kind,
                target_state: None,
            })
            .collect();
        ChurnPlan { events }
    }

    /// The ordered events.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Net population change over the whole plan.
    pub fn net(&self) -> i64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                LifecycleKind::Join => 1i64,
                LifecycleKind::Leave | LifecycleKind::Crash => -1,
            })
            .sum()
    }

    /// The interaction index of the last event (0 for an empty plan).
    pub fn horizon(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_is_deterministic_and_complete() {
        let spec = ChurnSpec {
            joins: 3,
            leaves: 2,
            crashes: 1,
            period: 100,
        };
        let a = ChurnPlan::materialize(&spec, 42);
        let b = ChurnPlan::materialize(&spec, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.net(), 0);
        assert_eq!(a.horizon(), 600);
        let ats: Vec<u64> = a.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![100, 200, 300, 400, 500, 600]);
        let joins = a
            .events()
            .iter()
            .filter(|e| e.kind == LifecycleKind::Join)
            .count();
        assert_eq!(joins, 3);
        // A different seed permutes the kinds (overwhelmingly likely for
        // 6 events; pinned seeds keep this deterministic).
        let c = ChurnPlan::materialize(&spec, 43);
        assert_ne!(a, c, "kind order should differ across seeds");
    }

    #[test]
    fn empty_spec_materialises_empty_plan() {
        let plan = ChurnPlan::materialize(&ChurnSpec::none(), 7);
        assert!(plan.is_empty());
        assert_eq!(plan.net(), 0);
        assert_eq!(plan.horizon(), 0);
    }

    #[test]
    fn from_events_sorts_by_time() {
        let plan = ChurnPlan::from_events(vec![
            ChurnEvent {
                at: 50,
                kind: LifecycleKind::Leave,
                target_state: None,
            },
            ChurnEvent {
                at: 10,
                kind: LifecycleKind::Join,
                target_state: None,
            },
        ]);
        assert_eq!(plan.events()[0].at, 10);
        assert_eq!(plan.events()[1].at, 50);
    }
}
