//! # pp-topo — population dynamics for population protocols
//!
//! The paper's model fixes three environmental choices: every pair of
//! agents may interact (complete graph), the scheduler picks pairs
//! uniformly at random, and the population never changes. This crate
//! makes each choice a first-class, declarative axis:
//!
//! * **[`topology`]** — interaction graphs behind the [`Topology`] trait:
//!   complete, ring, star, torus, random-regular, Chung–Lu power-law, and
//!   explicit edge lists, all with O(1)-amortised enabled-edge sampling
//!   maintained incrementally under mutation.
//! * **[`scheduler`]** — the [`EdgeScheduler`] family: uniform-over-edges
//!   (distribution-identical to the engine's `UniformRandomScheduler` on
//!   the complete graph), Zipf-skewed activation, and an
//!   adversarial-but-fair scheduler carrying a machine-checkable
//!   [`FairnessCertificate`].
//! * **[`churn`]** — seeded, replayable join/leave/crash event streams
//!   mutating the population and graph mid-run.
//! * **[`spec`]** — the integer-parameterised, `Hash`/`Eq`, string
//!   round-trippable description ([`Dynamics`]) that sweep cells embed in
//!   their content-addressed keys.
//! * **[`dynamics`]** — the runner wiring it all together, with typed
//!   refusals ([`DynamicsError`]) when a kernel's assumptions do not hold
//!   (the batch kernel is only sound on the complete graph).
//!
//! Under global fairness the paper's protocol stabilises on any connected
//! static graph eventually — but *randomised* schedulers on sparse graphs
//! and populations under departure churn can fail to stabilise within any
//! budget, so censored trials are a first-class outcome throughout
//! (`interactions: None`), and the `topo-*` sweep plans report convergence
//! *fractions* alongside stabilisation-time gaps versus the complete
//! graph.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod churn;
pub mod dynamics;
pub mod metrics;
pub mod scheduler;
pub mod spec;
pub mod topology;

pub use churn::{ChurnEvent, ChurnPlan};
pub use dynamics::{
    ensure_kernel_compatible, run_dynamics, run_dynamics_with_plan, DynRunOutcome, DynamicsError,
};
pub use metrics::{topo_metrics, TopoMetrics};
pub use scheduler::{
    AdversarialFairScheduler, EdgeScheduler, FairnessCertificate, TopologyScheduler,
    UniformEdgeScheduler, ZipfScheduler,
};
pub use spec::{ChurnSpec, Dynamics, SchedSpec, SpecError, TopoSpec};
pub use topology::{CompleteTopology, EdgeListTopology, Topology};
