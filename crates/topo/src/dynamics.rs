//! The dynamics runner: one trial of a protocol under non-default
//! dynamics (restricted topology, skewed/adversarial scheduling, churn).
//!
//! Mirrors `Simulator::run_agents_observed`'s loop and accounting, with
//! three insertions: lifecycle events are applied between interactions
//! (mutating population *and* topology in lock-step and reporting each
//! through [`Observer::on_lifecycle`]), the scheduler is an
//! [`EdgeScheduler`] over the owned topology, and the stability criterion
//! — built for the *final* population size — is consulted only once the
//! event stream is exhausted (while events remain, the run cannot be
//! permanently stable).
//!
//! Censoring is a first-class outcome here, not just a budget artefact:
//! on a ring, chain-builders strand when their neighbours settle; under
//! departure churn, settled groups lose members they can never replace.
//! Such trials report `interactions: None` and feed the convergence-
//! fraction columns of the `topo-*` sweep plans.

use crate::churn::{ChurnEvent, ChurnPlan};
use crate::metrics::topo_metrics;
use crate::scheduler::{EdgeScheduler, FairnessCertificate};
use crate::spec::Dynamics;
use crate::topology::Topology;
use pp_engine::observer::{LifecycleKind, Observer};
use pp_engine::population::{AgentPopulation, Population};
use pp_engine::protocol::CompiledProtocol;
use pp_engine::seeds;
use pp_engine::stability::StabilityCriterion;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seed-derivation labels for the independent random streams of one
/// dynamics trial (graph construction, scheduling, churn), all derived
/// from the single trial seed.
const LBL_GRAPH: u64 = 0x746f_706f; // "topo"
const LBL_SCHED: u64 = 0x7363_6864; // "schd"
const LBL_CHURN: u64 = 0x6368_726e; // "chrn"

/// Why a dynamics run could not be performed at all (distinct from
/// censoring, which is a completed run without stabilisation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicsError {
    /// The batch (tau-leap) kernel is only sound on the complete graph:
    /// its propensity model counts unordered state pairs, which assumes
    /// every agent pair may interact. Returned instead of silently wrong
    /// results.
    BatchRequiresComplete {
        /// The offending topology family.
        family: String,
    },
    /// The requested kernel's closed-form identity skipping is derived
    /// for the uniform scheduler on the complete graph with a fixed
    /// population; any other dynamics must run the per-agent naive path.
    KernelRequiresDefaultDynamics {
        /// The offending kernel name.
        kernel: String,
    },
    /// The dynamics specification is invalid for this population size.
    Spec(crate::spec::SpecError),
    /// Fewer than two agents: no interaction is possible.
    PopulationTooSmall,
}

impl std::fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicsError::BatchRequiresComplete { family } => write!(
                f,
                "the batch kernel requires the complete topology (got `{family}`)"
            ),
            DynamicsError::KernelRequiresDefaultDynamics { kernel } => write!(
                f,
                "kernel `{kernel}` requires default dynamics (complete graph, uniform scheduler, no churn)"
            ),
            DynamicsError::Spec(e) => write!(f, "{e}"),
            DynamicsError::PopulationTooSmall => {
                write!(f, "population has fewer than two agents")
            }
        }
    }
}

impl std::error::Error for DynamicsError {}

impl From<crate::spec::SpecError> for DynamicsError {
    fn from(e: crate::spec::SpecError) -> Self {
        DynamicsError::Spec(e)
    }
}

/// Check a kernel name (`"naive"`, `"leap"`, `"batch"`) against a
/// dynamics description. Default dynamics admit every kernel; anything
/// else admits only the naive per-agent path, with the batch kernel's
/// refusal singled out as [`DynamicsError::BatchRequiresComplete`] when
/// the topology is the problem.
pub fn ensure_kernel_compatible(kernel: &str, dynamics: &Dynamics) -> Result<(), DynamicsError> {
    if dynamics.is_default() || kernel == "naive" {
        return Ok(());
    }
    if kernel == "batch" && !matches!(dynamics.topo, crate::spec::TopoSpec::Complete) {
        return Err(DynamicsError::BatchRequiresComplete {
            family: dynamics.topo.family().to_string(),
        });
    }
    Err(DynamicsError::KernelRequiresDefaultDynamics {
        kernel: kernel.to_string(),
    })
}

/// Outcome of one completed dynamics trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynRunOutcome {
    /// Interactions before the first stable configuration, or `None` if
    /// the run was censored (budget exhausted, or the topology ran out
    /// of enabled edges).
    pub interactions: Option<u64>,
    /// Interactions whose transition changed at least one state.
    pub effective_interactions: u64,
    /// The final configuration's count vector.
    pub final_counts: Vec<u64>,
    /// The final population size (initial n plus net churn applied).
    pub final_n: u64,
    /// Lifecycle events applied, by kind (join, leave, crash).
    pub applied: [u32; 3],
    /// The scheduler's fairness certificate, when it carries one.
    pub certificate: Option<FairnessCertificate>,
}

impl DynRunOutcome {
    /// True if the run reached stability within budget.
    pub fn stabilised(&self) -> bool {
        self.interactions.is_some()
    }
}

/// Run one trial under `dynamics`, materialising the churn plan from the
/// spec. `criterion` must be built for the **final** population size
/// (`n + churn.net()`). See [`run_dynamics_with_plan`].
pub fn run_dynamics<C, O>(
    proto: &CompiledProtocol,
    n: usize,
    dynamics: &Dynamics,
    criterion: &C,
    max_interactions: u64,
    seed: u64,
    observer: &mut O,
) -> Result<DynRunOutcome, DynamicsError>
where
    C: StabilityCriterion,
    O: Observer,
{
    let churn_seed = seeds::derive_labelled(seed, LBL_CHURN, 0);
    let plan = ChurnPlan::materialize(&dynamics.churn, churn_seed);
    run_dynamics_with_plan(
        proto,
        n,
        dynamics,
        &plan,
        criterion,
        max_interactions,
        seed,
        observer,
    )
}

/// Run one trial under `dynamics` with an explicit churn plan (tests use
/// this to aim departures at specific states via
/// [`ChurnEvent::target_state`]).
///
/// Determinism: the graph, scheduler, and churn-application streams are
/// derived from `seed` with distinct labels, so identical
/// `(proto, n, dynamics, plan, seed)` reproduce the trial bit-for-bit —
/// including every lifecycle event — which the trace layer relies on.
#[allow(clippy::too_many_arguments)]
pub fn run_dynamics_with_plan<C, O>(
    proto: &CompiledProtocol,
    n: usize,
    dynamics: &Dynamics,
    plan: &ChurnPlan,
    criterion: &C,
    max_interactions: u64,
    seed: u64,
    observer: &mut O,
) -> Result<DynRunOutcome, DynamicsError>
where
    C: StabilityCriterion,
    O: Observer,
{
    dynamics.topo.validate(n)?;
    if n < 2 {
        return Err(DynamicsError::PopulationTooSmall);
    }
    let metrics = topo_metrics();
    let mut topo = dynamics
        .topo
        .build(n, seeds::derive_labelled(seed, LBL_GRAPH, 0))?;
    let mut sched = dynamics
        .sched
        .build(seeds::derive_labelled(seed, LBL_SCHED, 0));
    // Stream for victim/attachment draws; distinct from the plan-
    // materialisation stream so hand-built plans stay deterministic too.
    let mut churn_rng = SmallRng::seed_from_u64(seeds::derive_labelled(seed, LBL_CHURN, 1));
    let mut pop = AgentPopulation::new(proto, n);

    let events = plan.events();
    let mut next_event = 0usize;
    let mut applied = [0u32; 3];
    let mut step: u64 = 0;
    let mut effective: u64 = 0;
    // Once the event stream is exhausted the population is final; from
    // then on stability is checked like the engine's naive loop: once
    // up-front, then after every count-changing interaction.
    let mut check_stability = events.is_empty();

    let outcome = loop {
        while next_event < events.len() && events[next_event].at <= step {
            apply_event(
                &events[next_event],
                proto,
                &mut pop,
                &mut *topo,
                &mut *sched,
                &mut churn_rng,
                step,
                &mut applied,
                observer,
            );
            next_event += 1;
            if next_event == events.len() {
                check_stability = true;
            }
        }
        if check_stability && criterion.is_stable(proto, pop.counts()) {
            break Some(step);
        }
        if step >= max_interactions {
            break None;
        }
        if topo.num_edges() == 0 {
            // Stranded: no enabled transition exists and the criterion
            // is unsatisfied — the run can never stabilise.
            metrics.stranded_runs.inc();
            break None;
        }
        debug_assert!(pop.num_agents() >= 2);
        let (i, j) = sched.next_pair(&*topo, &pop);
        let (p, q, p2, q2) = pop.interact(proto, i, j);
        step += 1;
        let changed = p2 != p || q2 != q;
        if changed {
            effective += 1;
        }
        observer.on_interaction(step, p, q, p2, q2, pop.counts());
        check_stability = changed && next_event >= events.len();
    };

    metrics.runs.inc();
    let certificate = sched.certificate();
    if let Some(cert) = &certificate {
        metrics.adversarial_rounds.add(cert.rounds);
    }
    Ok(DynRunOutcome {
        interactions: outcome,
        effective_interactions: effective,
        final_n: pop.num_agents(),
        final_counts: pop.counts().to_vec(),
        applied,
        certificate,
    })
}

/// Apply one lifecycle event to the population/topology pair, notify the
/// scheduler and observer, and bump telemetry.
#[allow(clippy::too_many_arguments)]
fn apply_event<O: Observer>(
    event: &ChurnEvent,
    proto: &CompiledProtocol,
    pop: &mut AgentPopulation,
    topo: &mut dyn Topology,
    sched: &mut dyn EdgeScheduler,
    churn_rng: &mut SmallRng,
    step: u64,
    applied: &mut [u32; 3],
    observer: &mut O,
) {
    let metrics = topo_metrics();
    match event.kind {
        LifecycleKind::Join => {
            let s = proto.initial_state();
            let idx = pop.add_agent(s);
            let hint = join_degree_hint(topo);
            let tidx = topo.add_agent(hint, churn_rng);
            debug_assert_eq!(idx, tidx, "population/topology index drift");
            sched.on_topology_changed(topo, step);
            applied[0] += 1;
            metrics.joins.inc();
            observer.on_lifecycle(step, LifecycleKind::Join, s, pop.counts());
        }
        kind @ (LifecycleKind::Leave | LifecycleKind::Crash) => {
            let n_cur = pop.num_agents() as usize;
            if n_cur <= 2 {
                // Dropping below 2 agents would deadlock the run; skip
                // the departure (counted, so the loss is visible).
                metrics.dropped_events.inc();
                return;
            }
            let victim = match event.target_state {
                Some(ts) => {
                    let candidates: Vec<usize> =
                        (0..n_cur).filter(|&i| pop.state_of(i) == ts).collect();
                    if candidates.is_empty() {
                        churn_rng.gen_range(0..n_cur)
                    } else {
                        candidates[churn_rng.gen_range(0..candidates.len())]
                    }
                }
                None => churn_rng.gen_range(0..n_cur),
            };
            let s = pop.remove_agent(victim);
            topo.remove_agent(victim);
            sched.on_topology_changed(topo, step);
            if kind == LifecycleKind::Leave {
                applied[1] += 1;
                metrics.leaves.inc();
            } else {
                applied[2] += 1;
                metrics.crashes.inc();
            }
            observer.on_lifecycle(step, kind, s, pop.counts());
        }
    }
}

/// Characteristic attachment degree for joins, inferred from the live
/// topology (complete topologies ignore it; edge lists attach to the
/// current average degree, clamped to at least 1 so joiners are never
/// born stranded).
fn join_degree_hint(topo: &dyn Topology) -> usize {
    let n = topo.num_agents().max(1) as u64;
    ((2 * topo.num_edges()).div_ceil(n) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChurnSpec, SchedSpec, TopoSpec};
    use pp_engine::observer::NullObserver;
    use pp_engine::spec::ProtocolSpec;
    use pp_engine::stability::Silent;

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    fn dynamics(topo: TopoSpec) -> Dynamics {
        Dynamics {
            topo,
            sched: SchedSpec::UniformEdge,
            churn: ChurnSpec::none(),
        }
    }

    /// Seed one infected agent via a hand-built plan? Simpler: the
    /// epidemic from all-S is already stable under Silent (no enabled
    /// rule), so use a two-state seeding through a scripted initial
    /// population is not available here — instead run the epidemic with
    /// one join event that cannot help and check the trivial paths, and
    /// use pp-protocols in the integration tests for the real protocol.
    #[test]
    fn all_initial_population_is_silent_immediately() {
        let proto = epidemic();
        let out = run_dynamics(
            &proto,
            10,
            &dynamics(TopoSpec::Ring),
            &Silent,
            1_000,
            7,
            &mut NullObserver,
        )
        .unwrap();
        // All agents susceptible: no enabled transition, Silent holds.
        assert_eq!(out.interactions, Some(0));
        assert_eq!(out.final_n, 10);
    }

    #[test]
    fn kernel_compatibility_matrix() {
        let default = Dynamics::default_dynamics();
        for kernel in ["naive", "leap", "batch"] {
            assert!(ensure_kernel_compatible(kernel, &default).is_ok());
        }
        let ring = dynamics(TopoSpec::Ring);
        assert!(ensure_kernel_compatible("naive", &ring).is_ok());
        assert_eq!(
            ensure_kernel_compatible("batch", &ring),
            Err(DynamicsError::BatchRequiresComplete {
                family: "ring".into()
            })
        );
        assert_eq!(
            ensure_kernel_compatible("leap", &ring),
            Err(DynamicsError::KernelRequiresDefaultDynamics {
                kernel: "leap".into()
            })
        );
        // Complete graph but churned: batch is refused for the churn,
        // not the topology.
        let churned = Dynamics {
            topo: TopoSpec::Complete,
            sched: SchedSpec::UniformEdge,
            churn: ChurnSpec {
                joins: 1,
                leaves: 0,
                crashes: 0,
                period: 10,
            },
        };
        assert_eq!(
            ensure_kernel_compatible("batch", &churned),
            Err(DynamicsError::KernelRequiresDefaultDynamics {
                kernel: "batch".into()
            })
        );
    }

    #[test]
    fn too_small_population_is_rejected() {
        let proto = epidemic();
        let err = run_dynamics(
            &proto,
            1,
            &Dynamics::default_dynamics(),
            &Silent,
            100,
            0,
            &mut NullObserver,
        )
        .unwrap_err();
        assert_eq!(err, DynamicsError::PopulationTooSmall);
    }

    #[test]
    fn invalid_topology_for_n_is_a_spec_error() {
        let proto = epidemic();
        let err = run_dynamics(
            &proto,
            23,
            &dynamics(TopoSpec::Torus { rows: 3, cols: 8 }),
            &Silent,
            100,
            0,
            &mut NullObserver,
        )
        .unwrap_err();
        assert!(matches!(err, DynamicsError::Spec(_)), "{err:?}");
    }

    /// Counts `on_interaction` calls, so tests can tell a stranded run
    /// (zero interactions ever scheduled) from a budget-censored one.
    #[derive(Default)]
    struct StepCounter(u64);
    impl Observer for StepCounter {
        fn on_interaction(
            &mut self,
            _s: u64,
            _p: pp_engine::protocol::StateId,
            _q: pp_engine::protocol::StateId,
            _p2: pp_engine::protocol::StateId,
            _q2: pp_engine::protocol::StateId,
            _c: &[u64],
        ) {
            self.0 += 1;
        }
    }

    #[test]
    fn stranded_topology_censors() {
        // A star whose centre crashes before any interaction leaves no
        // enabled edges: the run must censor immediately (zero
        // interactions performed), not spin to the budget or panic. The
        // crash victim is uniform, so scan seeds for one that hits the
        // centre (1/4 chance each) and require at least one does.
        let proto = epidemic();
        let dyn_ = Dynamics {
            topo: TopoSpec::Star,
            sched: SchedSpec::UniformEdge,
            churn: ChurnSpec {
                joins: 0,
                leaves: 0,
                crashes: 1,
                period: 5,
            },
        };
        let plan = ChurnPlan::from_events(vec![ChurnEvent {
            at: 0,
            kind: LifecycleKind::Crash,
            target_state: None,
        }]);
        let mut hit = false;
        for seed in 0..32u64 {
            let mut steps = StepCounter::default();
            let out = run_dynamics_with_plan(
                &proto,
                4,
                &dyn_,
                &plan,
                &pp_engine::stability::Never,
                1_000,
                seed,
                &mut steps,
            )
            .unwrap();
            assert_eq!(out.final_n, 3);
            assert!(out.interactions.is_none(), "Never criterion censors");
            if steps.0 == 0 {
                hit = true;
                break;
            }
        }
        assert!(hit, "some seed crashes the star centre and strands the run");
    }

    #[test]
    fn joins_are_applied_and_reported() {
        let proto = epidemic();
        struct LifecycleLog(Vec<(u64, LifecycleKind)>);
        impl Observer for LifecycleLog {
            fn on_interaction(
                &mut self,
                _s: u64,
                _p: pp_engine::protocol::StateId,
                _q: pp_engine::protocol::StateId,
                _p2: pp_engine::protocol::StateId,
                _q2: pp_engine::protocol::StateId,
                _c: &[u64],
            ) {
            }
            fn on_lifecycle(
                &mut self,
                step: u64,
                kind: LifecycleKind,
                _state: pp_engine::protocol::StateId,
                _counts: &[u64],
            ) {
                self.0.push((step, kind));
            }
        }
        let dyn_ = Dynamics {
            topo: TopoSpec::Ring,
            sched: SchedSpec::UniformEdge,
            churn: ChurnSpec {
                joins: 2,
                leaves: 0,
                crashes: 0,
                period: 3,
            },
        };
        let mut log = LifecycleLog(Vec::new());
        // Never stabilises (criterion Never): run to the cap so all
        // events apply.
        let out = run_dynamics(
            &proto,
            6,
            &dyn_,
            &pp_engine::stability::Never,
            50,
            11,
            &mut log,
        )
        .unwrap();
        assert_eq!(out.interactions, None, "Never criterion censors");
        assert_eq!(out.final_n, 8);
        assert_eq!(out.applied, [2, 0, 0]);
        assert_eq!(
            log.0,
            vec![(3, LifecycleKind::Join), (6, LifecycleKind::Join)]
        );
        let total: u64 = out.final_counts.iter().sum();
        assert_eq!(total, 8, "counts track the final population");
    }

    #[test]
    fn identical_seeds_reproduce_identical_outcomes() {
        // Flip protocol so the count vector actually evolves with the
        // (seed-dependent) interaction sequence.
        let mut spec = ProtocolSpec::new("flip");
        let s = spec.add_state("s", 1);
        let i = spec.add_state("i", 2);
        spec.set_initial(s);
        spec.add_rule(s, s, i, i);
        spec.add_rule(i, i, s, s);
        let proto = spec.compile().unwrap();
        let dyn_ = Dynamics {
            topo: TopoSpec::RandomRegular { degree: 4 },
            sched: SchedSpec::Zipf { s_x10: 12 },
            churn: ChurnSpec {
                joins: 1,
                leaves: 1,
                crashes: 1,
                period: 7,
            },
        };
        let run = |seed: u64| {
            run_dynamics(
                &proto,
                12,
                &dyn_,
                &pp_engine::stability::Never,
                200,
                seed,
                &mut NullObserver,
            )
            .unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_eq!(run(5).final_n, 11, "net churn is 1 join - 2 departures");
    }
}
