//! Declarative dynamics specifications — population dynamics *as data*.
//!
//! A [`Dynamics`] value names a topology family ([`TopoSpec`]), a
//! scheduler ([`SchedSpec`]) and a churn profile ([`ChurnSpec`]) with
//! integer-encoded parameters, so it is `Hash`/`Eq` and can join a sweep
//! cell's content-addressed identity. The canonical string form
//! ([`Dynamics::key_fragment`] / [`Dynamics::parse`]) round-trips exactly
//! and is what the sweep store embeds in cell keys and wire JSON.
//!
//! The **default** dynamics — complete graph, uniform edge scheduler, no
//! churn — is the paper's model, and is special-cased across the stack:
//! sweep cells carrying it keep their historical (pre-dynamics) cache
//! keys, and only default-dynamics cells may use the leap/batch kernels.

use crate::scheduler::{
    AdversarialFairScheduler, EdgeScheduler, UniformEdgeScheduler, ZipfScheduler,
};
use crate::topology::{CompleteTopology, EdgeListTopology, Topology};

/// Errors constructing or parsing a dynamics specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dynamics spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A topology family with integer parameters.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TopoSpec {
    /// The complete graph (the paper's model).
    Complete,
    /// A cycle. Requires `n ≥ 3`.
    Ring,
    /// A star with agent 0 at the centre.
    Star,
    /// A torus grid; `rows · cols` must equal the cell's `n`, both ≥ 3.
    Torus {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
    },
    /// A random `degree`-regular graph (configuration model, seeded).
    RandomRegular {
        /// Uniform vertex degree; `n · degree` must be even.
        degree: u32,
    },
    /// A Chung–Lu power-law graph with exponent `gamma_x10 / 10` and a
    /// ring backbone for connectivity.
    PowerLaw {
        /// Degree exponent × 10 (e.g. 25 ⇒ β = 2.5). Must exceed 10.
        gamma_x10: u32,
    },
    /// An explicit undirected edge list.
    Explicit {
        /// Edges as `(u, v)` index pairs, `u ≠ v`, all `< n`.
        edges: Vec<(u32, u32)>,
    },
}

impl TopoSpec {
    /// Short family name for error messages, reports and lint mapping.
    pub fn family(&self) -> &'static str {
        match self {
            TopoSpec::Complete => "complete",
            TopoSpec::Ring => "ring",
            TopoSpec::Star => "star",
            TopoSpec::Torus { .. } => "torus",
            TopoSpec::RandomRegular { .. } => "rr",
            TopoSpec::PowerLaw { .. } => "pl",
            TopoSpec::Explicit { .. } => "explicit",
        }
    }

    /// A structural per-agent degree bound, when the family has one.
    /// Used by the topology-aware lint to warn when chain-building rules
    /// can strand on low-degree graphs. `None` means unbounded or
    /// data-dependent (complete, power-law, explicit).
    pub fn degree_bound(&self) -> Option<u32> {
        match self {
            TopoSpec::Ring => Some(2),
            TopoSpec::Star => Some(1), // leaves; the centre is unbounded
            TopoSpec::Torus { .. } => Some(4),
            TopoSpec::RandomRegular { degree } => Some(*degree),
            _ => None,
        }
    }

    /// How many neighbours a joining agent attaches to under churn
    /// (the family's characteristic degree; complete graphs ignore it).
    pub fn join_degree(&self) -> usize {
        match self {
            TopoSpec::Complete => usize::MAX,
            TopoSpec::Ring => 2,
            TopoSpec::Star => 1,
            TopoSpec::Torus { .. } => 4,
            TopoSpec::RandomRegular { degree } => *degree as usize,
            TopoSpec::PowerLaw { .. } | TopoSpec::Explicit { .. } => 2,
        }
    }

    /// Canonical string form, e.g. `complete`, `torus:3x8`, `rr:d=4`,
    /// `pl:g=25`, `explicit:0-1.1-2`.
    pub fn key_fragment(&self) -> String {
        match self {
            TopoSpec::Complete => "complete".into(),
            TopoSpec::Ring => "ring".into(),
            TopoSpec::Star => "star".into(),
            TopoSpec::Torus { rows, cols } => format!("torus:{rows}x{cols}"),
            TopoSpec::RandomRegular { degree } => format!("rr:d={degree}"),
            TopoSpec::PowerLaw { gamma_x10 } => format!("pl:g={gamma_x10}"),
            TopoSpec::Explicit { edges } => {
                let body: Vec<String> = edges.iter().map(|(u, v)| format!("{u}-{v}")).collect();
                format!("explicit:{}", body.join("."))
            }
        }
    }

    /// Parse the [`Self::key_fragment`] form.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "complete" => return Ok(TopoSpec::Complete),
            "ring" => return Ok(TopoSpec::Ring),
            "star" => return Ok(TopoSpec::Star),
            _ => {}
        }
        let (kind, body) = s
            .split_once(':')
            .ok_or_else(|| SpecError(format!("unknown topology {s:?}")))?;
        match kind {
            "torus" => {
                let (r, c) = body
                    .split_once('x')
                    .ok_or_else(|| SpecError(format!("bad torus {body:?}")))?;
                let rows = r
                    .parse()
                    .map_err(|_| SpecError(format!("bad torus rows {r:?}")))?;
                let cols = c
                    .parse()
                    .map_err(|_| SpecError(format!("bad torus cols {c:?}")))?;
                Ok(TopoSpec::Torus { rows, cols })
            }
            "rr" => {
                let d = body
                    .strip_prefix("d=")
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| SpecError(format!("bad rr degree {body:?}")))?;
                Ok(TopoSpec::RandomRegular { degree: d })
            }
            "pl" => {
                let g = body
                    .strip_prefix("g=")
                    .and_then(|g| g.parse().ok())
                    .ok_or_else(|| SpecError(format!("bad pl gamma {body:?}")))?;
                Ok(TopoSpec::PowerLaw { gamma_x10: g })
            }
            "explicit" => {
                let mut edges = Vec::new();
                if !body.is_empty() {
                    for part in body.split('.') {
                        let (u, v) = part
                            .split_once('-')
                            .ok_or_else(|| SpecError(format!("bad edge {part:?}")))?;
                        let u = u
                            .parse()
                            .map_err(|_| SpecError(format!("bad edge {part:?}")))?;
                        let v = v
                            .parse()
                            .map_err(|_| SpecError(format!("bad edge {part:?}")))?;
                        edges.push((u, v));
                    }
                }
                Ok(TopoSpec::Explicit { edges })
            }
            _ => err(format!("unknown topology {s:?}")),
        }
    }

    /// Validate this family against a population size without building.
    pub fn validate(&self, n: usize) -> Result<(), SpecError> {
        match self {
            TopoSpec::Complete => Ok(()),
            TopoSpec::Ring => {
                if n < 3 {
                    return err(format!("ring needs n >= 3, got {n}"));
                }
                Ok(())
            }
            TopoSpec::Star => {
                if n < 2 {
                    return err(format!("star needs n >= 2, got {n}"));
                }
                Ok(())
            }
            TopoSpec::Torus { rows, cols } => {
                if *rows < 3 || *cols < 3 {
                    return err(format!("torus needs both sides >= 3, got {rows}x{cols}"));
                }
                if (*rows as usize) * (*cols as usize) != n {
                    return err(format!("torus {rows}x{cols} does not cover n = {n}"));
                }
                Ok(())
            }
            TopoSpec::RandomRegular { degree } => {
                let d = *degree as usize;
                if d == 0 || d >= n {
                    return err(format!(
                        "rr degree must satisfy 1 <= d < n, got d={d}, n={n}"
                    ));
                }
                if n * d % 2 != 0 {
                    return err(format!("rr needs n*d even, got n={n}, d={d}"));
                }
                Ok(())
            }
            TopoSpec::PowerLaw { gamma_x10 } => {
                if *gamma_x10 <= 10 {
                    return err(format!("pl exponent must exceed 1.0, got {gamma_x10}/10"));
                }
                if n < 3 {
                    return err(format!("pl needs n >= 3, got {n}"));
                }
                Ok(())
            }
            TopoSpec::Explicit { edges } => {
                let mut seen = std::collections::HashSet::new();
                for &(u, v) in edges {
                    if u == v {
                        return err(format!("explicit edge ({u}, {v}) is a self-loop"));
                    }
                    if (u as usize) >= n || (v as usize) >= n {
                        return err(format!("explicit edge ({u}, {v}) out of range for n = {n}"));
                    }
                    let key = if u < v { (u, v) } else { (v, u) };
                    if !seen.insert(key) {
                        return err(format!("explicit edge ({u}, {v}) repeated"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Build the concrete topology for `n` agents. Randomised families
    /// (random-regular, power-law) are deterministic in `seed`.
    pub fn build(&self, n: usize, seed: u64) -> Result<Box<dyn Topology>, SpecError> {
        self.validate(n)?;
        Ok(match self {
            TopoSpec::Complete => Box::new(CompleteTopology::new(n)),
            TopoSpec::Ring => Box::new(EdgeListTopology::ring(n)),
            TopoSpec::Star => Box::new(EdgeListTopology::star(n)),
            TopoSpec::Torus { rows, cols } => {
                Box::new(EdgeListTopology::torus(*rows as usize, *cols as usize))
            }
            TopoSpec::RandomRegular { degree } => {
                Box::new(EdgeListTopology::random_regular(n, *degree as usize, seed))
            }
            TopoSpec::PowerLaw { gamma_x10 } => {
                Box::new(EdgeListTopology::power_law(n, *gamma_x10, seed))
            }
            TopoSpec::Explicit { edges } => {
                Box::new(EdgeListTopology::from_edges(n, edges.clone()))
            }
        })
    }
}

/// An edge-scheduler family with integer parameters.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SchedSpec {
    /// Uniform over enabled edges with uniform orientation; on the
    /// complete graph, distribution-identical to the engine's
    /// `UniformRandomScheduler` (property-tested).
    UniformEdge,
    /// Zipf-skewed per-agent activation: agent `u` initiates with rate
    /// ∝ `(u+1)^(-s)`, `s = s_x10 / 10`; the responder is a uniform
    /// neighbour.
    Zipf {
        /// Skew exponent × 10 (e.g. 15 ⇒ s = 1.5).
        s_x10: u32,
    },
    /// Adversarial-but-fair: round-based greedy scheduler that delays
    /// progress while provably firing every enabled edge within a
    /// bounded window (carries a [`crate::scheduler::FairnessCertificate`]).
    AdversarialFair,
}

impl SchedSpec {
    /// Canonical string form: `uniform`, `zipf:s=15`, `adversarial`.
    pub fn key_fragment(&self) -> String {
        match self {
            SchedSpec::UniformEdge => "uniform".into(),
            SchedSpec::Zipf { s_x10 } => format!("zipf:s={s_x10}"),
            SchedSpec::AdversarialFair => "adversarial".into(),
        }
    }

    /// Parse the [`Self::key_fragment`] form.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "uniform" => Ok(SchedSpec::UniformEdge),
            "adversarial" => Ok(SchedSpec::AdversarialFair),
            _ => {
                if let Some(body) = s.strip_prefix("zipf:s=") {
                    let s_x10 = body
                        .parse()
                        .map_err(|_| SpecError(format!("bad zipf skew {body:?}")))?;
                    return Ok(SchedSpec::Zipf { s_x10 });
                }
                err(format!("unknown scheduler {s:?}"))
            }
        }
    }

    /// Build the concrete scheduler, deterministic in `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn EdgeScheduler> {
        match self {
            SchedSpec::UniformEdge => Box::new(UniformEdgeScheduler::from_seed(seed)),
            SchedSpec::Zipf { s_x10 } => Box::new(ZipfScheduler::from_seed(seed, *s_x10)),
            SchedSpec::AdversarialFair => Box::new(AdversarialFairScheduler::new()),
        }
    }
}

/// A declarative churn profile: how many agents join, leave, and crash
/// over a run, spaced `period` interactions apart. The concrete seeded
/// event stream is materialised by [`crate::churn::ChurnPlan`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ChurnSpec {
    /// Agents that join mid-run (in the protocol's initial state).
    pub joins: u32,
    /// Agents that leave gracefully mid-run.
    pub leaves: u32,
    /// Agents that crash mid-run (same population effect as a leave;
    /// distinguished in telemetry and traces).
    pub crashes: u32,
    /// Interactions between consecutive lifecycle events.
    pub period: u64,
}

impl ChurnSpec {
    /// The no-churn profile.
    pub fn none() -> Self {
        ChurnSpec {
            joins: 0,
            leaves: 0,
            crashes: 0,
            period: 0,
        }
    }

    /// True if no lifecycle events will occur.
    pub fn is_none(&self) -> bool {
        self.joins == 0 && self.leaves == 0 && self.crashes == 0
    }

    /// Total number of lifecycle events.
    pub fn total_events(&self) -> u32 {
        self.joins + self.leaves + self.crashes
    }

    /// Net population change once all events have been applied.
    pub fn net(&self) -> i64 {
        self.joins as i64 - self.leaves as i64 - self.crashes as i64
    }

    /// Canonical string form: `j<joins>.l<leaves>.c<crashes>.p<period>`.
    pub fn key_fragment(&self) -> String {
        format!(
            "j{}.l{}.c{}.p{}",
            self.joins, self.leaves, self.crashes, self.period
        )
    }

    /// Parse the [`Self::key_fragment`] form.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return err(format!("bad churn fragment {s:?}"));
        }
        let field = |part: &str, prefix: &str| -> Result<u64, SpecError> {
            part.strip_prefix(prefix)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| SpecError(format!("bad churn field {part:?}")))
        };
        Ok(ChurnSpec {
            joins: field(parts[0], "j")? as u32,
            leaves: field(parts[1], "l")? as u32,
            crashes: field(parts[2], "c")? as u32,
            period: field(parts[3], "p")?,
        })
    }

    /// Validate against a starting population size: the population must
    /// keep at least 2 agents after all departures, and churn requires a
    /// positive period.
    pub fn validate(&self, n: usize) -> Result<(), SpecError> {
        if self.is_none() {
            return Ok(());
        }
        if self.period == 0 {
            return err("churn with events needs period > 0");
        }
        let final_n = n as i64 + self.net();
        if final_n < 2 {
            return err(format!(
                "churn leaves fewer than 2 agents (n = {n}, net = {})",
                self.net()
            ));
        }
        Ok(())
    }
}

/// One complete dynamics description: topology × scheduler × churn.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dynamics {
    /// The interaction topology family.
    pub topo: TopoSpec,
    /// The edge scheduler family.
    pub sched: SchedSpec,
    /// The churn profile.
    pub churn: ChurnSpec,
}

impl Dynamics {
    /// The paper's model: complete graph, uniform scheduler, no churn.
    pub fn default_dynamics() -> Self {
        Dynamics {
            topo: TopoSpec::Complete,
            sched: SchedSpec::UniformEdge,
            churn: ChurnSpec::none(),
        }
    }

    /// True for the paper's model (the canonical default). Cells carrying
    /// it keep their historical cache keys and may use any kernel.
    pub fn is_default(&self) -> bool {
        self.topo == TopoSpec::Complete
            && self.sched == SchedSpec::UniformEdge
            && self.churn.is_none()
    }

    /// Canonical string form `"<topo>;<sched>;<churn>"`, e.g.
    /// `ring;uniform;j2.l1.c0.p500`. Embedded verbatim in sweep cell keys
    /// and wire JSON; [`Self::parse`] round-trips it exactly.
    pub fn key_fragment(&self) -> String {
        format!(
            "{};{};{}",
            self.topo.key_fragment(),
            self.sched.key_fragment(),
            self.churn.key_fragment()
        )
    }

    /// Parse the [`Self::key_fragment`] form.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let parts: Vec<&str> = s.split(';').collect();
        if parts.len() != 3 {
            return err(format!("dynamics fragment needs 3 ';' fields, got {s:?}"));
        }
        Ok(Dynamics {
            topo: TopoSpec::parse(parts[0])?,
            sched: SchedSpec::parse(parts[1])?,
            churn: ChurnSpec::parse(parts[2])?,
        })
    }

    /// Validate the combination against a starting population size.
    pub fn validate(&self, n: usize) -> Result<(), SpecError> {
        self.topo.validate(n)?;
        self.churn.validate(n)
    }
}

impl Default for Dynamics {
    fn default() -> Self {
        Self::default_dynamics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_fragments_round_trip() {
        let specs = [
            Dynamics::default_dynamics(),
            Dynamics {
                topo: TopoSpec::Ring,
                sched: SchedSpec::Zipf { s_x10: 15 },
                churn: ChurnSpec {
                    joins: 2,
                    leaves: 1,
                    crashes: 3,
                    period: 500,
                },
            },
            Dynamics {
                topo: TopoSpec::Torus { rows: 3, cols: 8 },
                sched: SchedSpec::AdversarialFair,
                churn: ChurnSpec::none(),
            },
            Dynamics {
                topo: TopoSpec::RandomRegular { degree: 4 },
                sched: SchedSpec::UniformEdge,
                churn: ChurnSpec::none(),
            },
            Dynamics {
                topo: TopoSpec::PowerLaw { gamma_x10: 25 },
                sched: SchedSpec::UniformEdge,
                churn: ChurnSpec::none(),
            },
            Dynamics {
                topo: TopoSpec::Explicit {
                    edges: vec![(0, 1), (1, 2), (2, 0)],
                },
                sched: SchedSpec::UniformEdge,
                churn: ChurnSpec::none(),
            },
        ];
        for d in specs {
            let frag = d.key_fragment();
            let back = Dynamics::parse(&frag).unwrap_or_else(|e| panic!("{frag}: {e}"));
            assert_eq!(back, d, "{frag}");
        }
    }

    #[test]
    fn default_fragment_is_pinned() {
        // The sweep key-versioning logic depends on this exact string.
        assert_eq!(
            Dynamics::default_dynamics().key_fragment(),
            "complete;uniform;j0.l0.c0.p0"
        );
        assert!(Dynamics::default_dynamics().is_default());
    }

    #[test]
    fn validation_rejects_bad_combinations() {
        assert!(TopoSpec::Ring.validate(2).is_err());
        assert!(TopoSpec::Torus { rows: 3, cols: 8 }.validate(23).is_err());
        assert!(TopoSpec::RandomRegular { degree: 3 }.validate(9).is_err());
        assert!(TopoSpec::RandomRegular { degree: 0 }.validate(9).is_err());
        assert!(TopoSpec::PowerLaw { gamma_x10: 10 }.validate(9).is_err());
        assert!(TopoSpec::Explicit {
            edges: vec![(0, 0)]
        }
        .validate(3)
        .is_err());
        assert!(TopoSpec::Explicit {
            edges: vec![(0, 1), (1, 0)]
        }
        .validate(3)
        .is_err());
        let c = ChurnSpec {
            joins: 0,
            leaves: 5,
            crashes: 0,
            period: 10,
        };
        assert!(c.validate(4).is_err(), "would drop below 2 agents");
        let nc = ChurnSpec {
            joins: 1,
            leaves: 0,
            crashes: 0,
            period: 0,
        };
        assert!(nc.validate(10).is_err(), "events need a period");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Dynamics::parse("ring;uniform").is_err());
        assert!(Dynamics::parse("blob;uniform;j0.l0.c0.p0").is_err());
        assert!(Dynamics::parse("ring;warp;j0.l0.c0.p0").is_err());
        assert!(Dynamics::parse("ring;uniform;j0.l0.c0").is_err());
        assert!(TopoSpec::parse("torus:3").is_err());
        assert!(SchedSpec::parse("zipf:s=abc").is_err());
    }
}
