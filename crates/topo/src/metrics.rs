//! Dynamics telemetry: `topo.*` counters.
//!
//! Follows the engine's pattern (shared `Arc` handles registered once per
//! registry, a `OnceLock` global for the process-wide registry). Counters
//! are bumped by the dynamics runner, outside any hot loop:
//!
//! | name                     | meaning |
//! |--------------------------|---------|
//! | `topo.runs`              | dynamics runs completed |
//! | `topo.joins`             | join events applied |
//! | `topo.leaves`            | leave events applied |
//! | `topo.crashes`           | crash events applied |
//! | `topo.dropped_events`    | departures skipped to keep ≥ 2 agents |
//! | `topo.stranded_runs`     | runs censored because no edge remained |
//! | `topo.adversarial_rounds`| scheduling rounds completed by adversarial-fair schedulers |

use pp_telemetry::{Counter, Registry};
use std::sync::{Arc, OnceLock};

/// Shared handles to the dynamics metric series in one registry.
#[derive(Clone, Debug)]
pub struct TopoMetrics {
    /// Dynamics runs completed (stable or censored).
    pub runs: Arc<Counter>,
    /// Join events applied.
    pub joins: Arc<Counter>,
    /// Leave events applied.
    pub leaves: Arc<Counter>,
    /// Crash events applied.
    pub crashes: Arc<Counter>,
    /// Departure events skipped because the population was at 2 agents.
    pub dropped_events: Arc<Counter>,
    /// Runs censored because the topology ran out of enabled edges.
    pub stranded_runs: Arc<Counter>,
    /// Rounds completed by adversarial-fair schedulers.
    pub adversarial_rounds: Arc<Counter>,
}

impl TopoMetrics {
    /// Resolve (registering on first use) the dynamics series in `reg`.
    pub fn register_in(reg: &Registry) -> Self {
        TopoMetrics {
            runs: reg.counter("topo.runs"),
            joins: reg.counter("topo.joins"),
            leaves: reg.counter("topo.leaves"),
            crashes: reg.counter("topo.crashes"),
            dropped_events: reg.counter("topo.dropped_events"),
            stranded_runs: reg.counter("topo.stranded_runs"),
            adversarial_rounds: reg.counter("topo.adversarial_rounds"),
        }
    }
}

/// The dynamics series in the process-wide registry.
pub fn topo_metrics() -> &'static TopoMetrics {
    static GLOBAL: OnceLock<TopoMetrics> = OnceLock::new();
    GLOBAL.get_or_init(|| TopoMetrics::register_in(pp_telemetry::global()))
}
