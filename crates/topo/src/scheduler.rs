//! Edge schedulers: who interacts next, on a given topology.
//!
//! The engine's `UniformRandomScheduler` hard-codes the paper's model
//! (uniform ordered pair on the complete graph). An [`EdgeScheduler`]
//! generalises it to arbitrary [`Topology`] values and three activation
//! regimes:
//!
//! * [`UniformEdgeScheduler`] — uniform over enabled edges, uniform
//!   orientation. On the complete graph it reproduces
//!   `UniformRandomScheduler`'s ordered-pair distribution (and its exact
//!   sampling procedure, so the equivalence is testable with fixed seeds).
//! * [`ZipfScheduler`] — Zipf-skewed per-agent activation rates, modelling
//!   heterogeneous interaction speeds.
//! * [`AdversarialFairScheduler`] — a round-based greedy scheduler that
//!   tries to *delay* stabilisation while remaining provably fair: every
//!   enabled edge fires within a bounded window, witnessed by a
//!   machine-checkable [`FairnessCertificate`].

use crate::topology::Topology;
use pp_engine::population::{AgentPopulation, Population};
use pp_engine::scheduler::AgentScheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Chooses the next ordered agent pair on a topology.
///
/// Unlike `pp_engine::scheduler::AgentScheduler`, the topology is passed
/// per call: under churn the graph mutates between interactions and the
/// dynamics runner owns it. [`Self::on_topology_changed`] notifies
/// stateful schedulers of mutations.
pub trait EdgeScheduler {
    /// Select an ordered pair of distinct agents joined by an enabled
    /// edge. Requires `topo.num_edges() > 0` and the population/topology
    /// agent counts to agree.
    fn next_pair(&mut self, topo: &dyn Topology, pop: &AgentPopulation) -> (usize, usize);

    /// Called after the topology mutates (join/leave/crash), with the
    /// interaction count at the mutation. Default: no-op.
    fn on_topology_changed(&mut self, _topo: &dyn Topology, _step: u64) {}

    /// The fairness certificate accumulated so far, for schedulers that
    /// carry one. Default: `None` (randomised schedulers are fair with
    /// probability 1, not within a deterministic window).
    fn certificate(&self) -> Option<FairnessCertificate> {
        None
    }
}

/// Uniform-over-edges scheduler: each step an enabled edge is chosen
/// uniformly and oriented uniformly.
///
/// On a [`crate::topology::CompleteTopology`] the implementation draws
/// `i ~ U(0..n)`, `j ~ U(0..n-1)` skipping `i` — byte-for-byte the same
/// RNG consumption as `UniformRandomScheduler::select_agents`, so with
/// equal seeds the two produce identical pair sequences.
#[derive(Clone, Debug)]
pub struct UniformEdgeScheduler {
    rng: SmallRng,
}

impl UniformEdgeScheduler {
    /// Deterministic scheduler from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        UniformEdgeScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl EdgeScheduler for UniformEdgeScheduler {
    fn next_pair(&mut self, topo: &dyn Topology, _pop: &AgentPopulation) -> (usize, usize) {
        if topo.is_complete() {
            let n = topo.num_agents();
            let i = self.rng.gen_range(0..n);
            let mut j = self.rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            return (i, j);
        }
        let m = topo.num_edges();
        debug_assert!(m > 0, "no enabled edges to schedule");
        let (u, v) = topo.edge_at(self.rng.gen_range(0..m));
        if self.rng.gen_bool(0.5) {
            (u, v)
        } else {
            (v, u)
        }
    }
}

/// Zipf-skewed activation: agent `u` initiates the next interaction with
/// probability ∝ `(u + 1)^(-s)`; the responder is a uniform neighbour.
///
/// Sampled by rejection against the maximal weight (agent 0's), which is
/// exact and needs no per-agent tables — important because the agent set
/// changes under churn. Skew `s = 0` degenerates to uniform *agent*
/// activation (≠ uniform edge activation on irregular graphs).
#[derive(Clone, Debug)]
pub struct ZipfScheduler {
    s: f64,
    rng: SmallRng,
}

impl ZipfScheduler {
    /// Deterministic scheduler with skew `s_x10 / 10` from an explicit
    /// seed.
    pub fn from_seed(seed: u64, s_x10: u32) -> Self {
        ZipfScheduler {
            s: s_x10 as f64 / 10.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl EdgeScheduler for ZipfScheduler {
    fn next_pair(&mut self, topo: &dyn Topology, _pop: &AgentPopulation) -> (usize, usize) {
        debug_assert!(topo.num_edges() > 0, "no enabled edges to schedule");
        let n = topo.num_agents();
        loop {
            let u = self.rng.gen_range(0..n);
            let w = ((u + 1) as f64).powf(-self.s);
            if !self.rng.gen_bool(w) {
                continue;
            }
            let d = topo.degree(u);
            if d == 0 {
                // Isolated agent (possible after churn): cannot initiate.
                continue;
            }
            let v = topo.neighbor_at(u, self.rng.gen_range(0..d));
            return (u, v);
        }
    }
}

/// Machine-checkable witness that a scheduler satisfied bounded-window
/// fairness over a finished run: every enabled edge fired within
/// `window_bound` interactions of its previous firing (or of becoming
/// enabled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FairnessCertificate {
    /// The claimed bound: twice the largest edge count the topology ever
    /// had (one full round can elapse before a fresh round reaches a
    /// given edge, and a round fires each currently enabled edge once).
    pub window_bound: u64,
    /// The largest observed gap between consecutive firings of any edge.
    pub max_observed_lag: u64,
    /// Completed scheduling rounds.
    pub rounds: u64,
}

impl FairnessCertificate {
    /// The machine check: the observed behaviour stayed within the
    /// claimed window.
    pub fn verified(&self) -> bool {
        self.max_observed_lag <= self.window_bound
    }
}

/// Adversarial-but-fair scheduler: maximises time-to-stabilise subject to
/// bounded-window fairness.
///
/// Operates in **rounds**. At the start of each round it snapshots the
/// enabled edge set; within the round it greedily picks, among the edges
/// not yet fired this round, one joining two agents in the *same* state
/// (for the paper's protocol these are identity or chain-colliding
/// interactions — the ones that stall progress), falling back to the last
/// unfired edge. Every enabled edge therefore fires exactly once per
/// round, which yields the `2·max|E|` window bound recorded in the
/// [`FairnessCertificate`]. Topology mutations abort the current round
/// (the next call starts a fresh one over the new edge set), which
/// preserves the bound: a partial round plus a full round is at most two
/// maximal rounds.
///
/// Deterministic: consumes no randomness, so runs are replayable from the
/// topology/churn seeds alone.
#[derive(Clone, Debug, Default)]
pub struct AdversarialFairScheduler {
    /// Edges of the current round not yet fired.
    round: Vec<(u32, u32)>,
    /// Last interaction index at which each enabled edge fired (or became
    /// enabled).
    last_fired: HashMap<(u32, u32), u64>,
    /// Interactions scheduled so far.
    step: u64,
    max_lag: u64,
    max_edges: u64,
    rounds: u64,
}

impl AdversarialFairScheduler {
    /// A fresh scheduler (no seed: the policy is deterministic).
    pub fn new() -> Self {
        Self::default()
    }
}

impl EdgeScheduler for AdversarialFairScheduler {
    fn next_pair(&mut self, topo: &dyn Topology, pop: &AgentPopulation) -> (usize, usize) {
        if self.round.is_empty() {
            self.round = topo.edges();
            debug_assert!(!self.round.is_empty(), "no enabled edges to schedule");
            self.rounds += 1;
            self.max_edges = self.max_edges.max(self.round.len() as u64);
        }
        // Greedy delay heuristic: prefer a same-state pair.
        let pick = self
            .round
            .iter()
            .position(|&(u, v)| pop.state_of(u as usize) == pop.state_of(v as usize))
            .unwrap_or(self.round.len() - 1);
        let (u, v) = self.round.swap_remove(pick);
        self.step += 1;
        let entry = self.last_fired.entry((u, v)).or_insert(self.step - 1);
        self.max_lag = self.max_lag.max(self.step - *entry);
        *entry = self.step;
        (u as usize, v as usize)
    }

    fn on_topology_changed(&mut self, topo: &dyn Topology, _step: u64) {
        // Abort the round; rebuild lazily from the mutated edge set.
        self.round.clear();
        let current: std::collections::HashSet<(u32, u32)> = topo.edges().into_iter().collect();
        // Forget departed edges; register fresh ones as enabled-now.
        self.last_fired.retain(|e, _| current.contains(e));
        for e in current {
            self.last_fired.entry(e).or_insert(self.step);
        }
    }

    fn certificate(&self) -> Option<FairnessCertificate> {
        Some(FairnessCertificate {
            window_bound: 2 * self.max_edges,
            max_observed_lag: self.max_lag,
            rounds: self.rounds,
        })
    }
}

/// Adapter running an [`EdgeScheduler`] over a *static* topology as an
/// engine [`AgentScheduler`], so `Simulator::run_agents*` works unchanged
/// on restricted graphs. (Churn needs the dynamics runner in
/// [`crate::dynamics`], which owns and mutates the topology instead.)
pub struct TopologyScheduler {
    topo: Box<dyn Topology>,
    sched: Box<dyn EdgeScheduler>,
}

impl TopologyScheduler {
    /// Combine a topology and an edge scheduler.
    ///
    /// # Panics
    /// If the topology has no edges to schedule.
    pub fn new(topo: Box<dyn Topology>, sched: Box<dyn EdgeScheduler>) -> Self {
        assert!(topo.num_edges() > 0, "graph has no edges to schedule");
        TopologyScheduler { topo, sched }
    }

    /// The historical `GraphScheduler` construction: uniform edge
    /// scheduling over a fixed graph, deterministically seeded.
    pub fn uniform(topo: Box<dyn Topology>, seed: u64) -> Self {
        Self::new(topo, Box::new(UniformEdgeScheduler::from_seed(seed)))
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// The inner scheduler's fairness certificate, if it carries one.
    pub fn certificate(&self) -> Option<FairnessCertificate> {
        self.sched.certificate()
    }
}

impl AgentScheduler for TopologyScheduler {
    fn select_agents(&mut self, pop: &AgentPopulation) -> (usize, usize) {
        debug_assert_eq!(
            pop.num_agents() as usize,
            self.topo.num_agents(),
            "population size does not match scheduler topology"
        );
        self.sched.next_pair(&*self.topo, pop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CompleteTopology, EdgeListTopology};
    use pp_engine::spec::ProtocolSpec;

    fn one_state_pop(n: usize) -> (pp_engine::protocol::CompiledProtocol, AgentPopulation) {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        let p = spec.compile().unwrap();
        let pop = AgentPopulation::new(&p, n);
        (p, pop)
    }

    // Migrated from the old `pp_engine::graph` module.
    #[test]
    fn graph_scheduler_respects_edges() {
        let (_p, pop) = one_state_pop(4);
        let mut sched = TopologyScheduler::uniform(Box::new(EdgeListTopology::ring(4)), 7);
        for _ in 0..200 {
            let (i, j) = sched.select_agents(&pop);
            let d = (i as i64 - j as i64).rem_euclid(4);
            assert!(d == 1 || d == 3, "non-ring pair ({i}, {j})");
        }
    }

    // Migrated from the old `pp_engine::graph` module.
    #[test]
    fn complete_graph_scheduler_covers_all_pairs() {
        let (_p, pop) = one_state_pop(3);
        let mut sched = TopologyScheduler::uniform(Box::new(CompleteTopology::new(3)), 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(sched.select_agents(&pop));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn uniform_edge_on_complete_matches_uniform_random_scheduler() {
        // Same seed ⇒ byte-identical pair sequence (the complete-graph
        // branch consumes RNG exactly like UniformRandomScheduler).
        let (_p, pop) = one_state_pop(9);
        for seed in [0u64, 7, 123] {
            let mut a = UniformEdgeScheduler::from_seed(seed);
            let mut b = pp_engine::scheduler::UniformRandomScheduler::from_seed(seed);
            let topo = CompleteTopology::new(9);
            for _ in 0..300 {
                assert_eq!(
                    a.next_pair(&topo, &pop),
                    pp_engine::scheduler::AgentScheduler::select_agents(&mut b, &pop),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn zipf_skews_towards_low_indices() {
        let (_p, pop) = one_state_pop(16);
        let topo = CompleteTopology::new(16);
        let mut sched = ZipfScheduler::from_seed(3, 20); // s = 2.0
        let mut initiations = [0u64; 16];
        for _ in 0..4000 {
            let (i, _) = sched.next_pair(&topo, &pop);
            initiations[i] += 1;
        }
        assert!(
            initiations[0] > 8 * initiations[8].max(1),
            "agent 0 should dominate: {initiations:?}"
        );
    }

    #[test]
    fn adversarial_scheduler_is_fair_with_verified_certificate() {
        let (_p, pop) = one_state_pop(8);
        let topo = EdgeListTopology::ring(8);
        let mut sched = AdversarialFairScheduler::new();
        let mut fired: HashMap<(usize, usize), u64> = HashMap::new();
        for step in 1..=800u64 {
            let (u, v) = sched.next_pair(&topo, &pop);
            let key = (u.min(v), u.max(v));
            if let Some(prev) = fired.insert(key, step) {
                assert!(
                    step - prev <= 16,
                    "edge {key:?} starved for {}",
                    step - prev
                );
            }
        }
        assert_eq!(fired.len(), 8, "every ring edge fired");
        let cert = sched.certificate().unwrap();
        assert!(cert.verified(), "{cert:?}");
        assert_eq!(cert.window_bound, 16);
        assert_eq!(cert.rounds, 100);
    }

    #[test]
    fn adversarial_scheduler_survives_topology_mutation() {
        let (_p, mut pop) = one_state_pop(6);
        let mut topo = EdgeListTopology::ring(6);
        let mut sched = AdversarialFairScheduler::new();
        for _ in 0..10 {
            sched.next_pair(&topo, &pop);
        }
        use crate::topology::Topology as _;
        topo.remove_agent(2);
        pop.remove_agent(2);
        sched.on_topology_changed(&topo, 10);
        let mut fired = std::collections::HashSet::new();
        for _ in 0..topo.num_edges() * 2 {
            let (u, v) = sched.next_pair(&topo, &pop);
            assert!(u < 5 && v < 5, "stale agent index ({u}, {v})");
            fired.insert((u.min(v) as u32, u.max(v) as u32));
        }
        let edges: std::collections::HashSet<(u32, u32)> = topo.edges().into_iter().collect();
        assert_eq!(fired, edges, "post-churn rounds cover the new edge set");
        assert!(sched.certificate().unwrap().verified());
    }
}
