//! Interaction topologies with incremental, O(1)-amortised edge sampling.
//!
//! The paper (like most population-protocol work following Angluin et al.)
//! assumes a *complete* interaction graph: any two agents may interact.
//! This module is the single graph layer for the whole workspace (it
//! replaces the old two-variant `pp_engine::graph` demo enum): a
//! [`Topology`] trait over agent-index graphs, with two implementations —
//! [`CompleteTopology`] (implicit, O(1) memory) and [`EdgeListTopology`]
//! (explicit edge list + position map + adjacency lists, so edge insertion,
//! edge deletion, uniform edge sampling, and agent join/leave are all
//! O(degree) or better). Family constructors build rings, stars, torus
//! grids, random-regular graphs (configuration model), and Chung–Lu
//! power-law graphs.
//!
//! Restricted topologies matter here because the protocol's correctness
//! argument genuinely depends on completeness: global fairness quantifies
//! only over transitions the graph permits, and a ring can strand
//! chain-builder agents whose neighbours are all settled. The `topo-*`
//! sweep plans measure exactly where that assumption bites.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// An undirected interaction graph over agent indices `0..n`, mutable
/// under agent churn.
///
/// Index contract: agent removal uses *swap-remove* semantics — the agent
/// with the highest index takes the removed agent's slot — mirroring
/// [`pp_engine::population::AgentPopulation::remove_agent`], so a
/// population and its topology stay aligned by applying the same
/// operations in the same order. Joins always append at the highest index.
pub trait Topology {
    /// Number of agents `n`.
    fn num_agents(&self) -> usize;

    /// Number of undirected edges currently enabled.
    fn num_edges(&self) -> u64;

    /// True if every pair of distinct agents may interact.
    fn is_complete(&self) -> bool;

    /// Degree of agent `u`.
    fn degree(&self, u: usize) -> usize;

    /// The `idx`-th neighbour of `u` (arbitrary but stable-between-
    /// mutations order), `idx < degree(u)`.
    fn neighbor_at(&self, u: usize, idx: usize) -> usize;

    /// The `idx`-th enabled edge (arbitrary but stable-between-mutations
    /// order), `idx < num_edges()`. Uniformly sampling `idx` yields a
    /// uniform enabled edge.
    fn edge_at(&self, idx: u64) -> (usize, usize);

    /// Snapshot of every enabled edge as `(min, max)` index pairs.
    /// O(|E|); intended for round-based schedulers and tests, not hot
    /// sampling paths.
    fn edges(&self) -> Vec<(u32, u32)>;

    /// Add an agent at index `n`, attaching it to up to `degree_hint`
    /// distinct existing agents chosen uniformly at random (complete
    /// topologies ignore the hint — the newcomer connects to everyone).
    /// Returns the new agent's index.
    fn add_agent(&mut self, degree_hint: usize, rng: &mut SmallRng) -> usize;

    /// Remove agent `u` and its incident edges, renaming the last agent
    /// to `u` (swap-remove semantics, see the trait docs).
    fn remove_agent(&mut self, u: usize);

    /// Whether the graph is connected (a prerequisite for any nontrivial
    /// computation to involve all agents).
    fn is_connected(&self) -> bool;
}

/// The complete graph on `n` agents — the paper's model. Implicit: O(1)
/// memory, all trait operations are arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompleteTopology {
    n: usize,
}

impl CompleteTopology {
    /// The complete graph on `n` agents.
    pub fn new(n: usize) -> Self {
        CompleteTopology { n }
    }
}

impl Topology for CompleteTopology {
    fn num_agents(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> u64 {
        let n = self.n as u64;
        n * n.saturating_sub(1) / 2
    }

    fn is_complete(&self) -> bool {
        true
    }

    fn degree(&self, _u: usize) -> usize {
        self.n.saturating_sub(1)
    }

    fn neighbor_at(&self, u: usize, idx: usize) -> usize {
        debug_assert!(idx < self.n - 1);
        if idx < u {
            idx
        } else {
            idx + 1
        }
    }

    fn edge_at(&self, idx: u64) -> (usize, usize) {
        debug_assert!(idx < self.num_edges());
        // Row-walk the triangular enumeration (i, j), j > i. Only
        // round-based schedulers enumerate complete graphs, and they are
        // O(|E|) per round regardless, so the O(n) walk is not a new cost.
        let mut idx = idx;
        let mut i = 0u64;
        let n = self.n as u64;
        loop {
            let row = n - 1 - i;
            if idx < row {
                return (i as usize, (i + 1 + idx) as usize);
            }
            idx -= row;
            i += 1;
        }
    }

    fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges() as usize);
        for i in 0..self.n as u32 {
            for j in (i + 1)..self.n as u32 {
                out.push((i, j));
            }
        }
        out
    }

    fn add_agent(&mut self, _degree_hint: usize, _rng: &mut SmallRng) -> usize {
        self.n += 1;
        self.n - 1
    }

    fn remove_agent(&mut self, u: usize) {
        assert!(u < self.n, "agent {u} out of range");
        self.n -= 1;
    }

    fn is_connected(&self) -> bool {
        true
    }
}

/// Explicit edge-list topology: the general representation behind every
/// non-complete family.
///
/// Three structures are kept mutually consistent:
/// * `edges` — a dense vector of canonical `(min, max)` pairs, so a
///   uniform enabled edge is one `gen_range` away;
/// * `pos` — edge → index in `edges`, so deletion is an O(1) swap-remove;
/// * `adj` — per-agent neighbour lists, so degree/neighbour queries and
///   incident-edge enumeration under churn are O(degree).
#[derive(Clone, Debug, Default)]
pub struct EdgeListTopology {
    adj: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
    pos: HashMap<(u32, u32), usize>,
}

#[inline]
fn canon(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl EdgeListTopology {
    /// An explicit edge list on `n` agents. Edges must connect distinct
    /// in-range agents and must not repeat.
    ///
    /// # Panics
    /// On self-loops, out-of-range endpoints, or duplicate edges.
    pub fn from_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        let mut t = EdgeListTopology {
            adj: vec![Vec::new(); n],
            edges: Vec::with_capacity(edges.len()),
            pos: HashMap::with_capacity(edges.len()),
        };
        for (u, v) in edges {
            assert!(u != v, "self-loop ({u}, {v})");
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            assert!(t.insert_edge(u, v), "duplicate edge ({u}, {v})");
        }
        t
    }

    /// A cycle `0 — 1 — … — (n−1) — 0`. Requires `n ≥ 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 agents");
        let edges = (0..n as u32).map(|u| (u, (u + 1) % n as u32)).collect();
        Self::from_edges(n, edges)
    }

    /// A star with agent 0 at the centre. Requires `n ≥ 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least 2 agents");
        let edges = (1..n as u32).map(|v| (0, v)).collect();
        Self::from_edges(n, edges)
    }

    /// A `rows × cols` torus grid (wrap-around in both directions),
    /// `n = rows · cols`. Requires `rows ≥ 3` and `cols ≥ 3` so wrap
    /// edges never duplicate interior edges.
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "a torus needs both sides >= 3");
        let n = rows * cols;
        let at = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::with_capacity(2 * n);
        for r in 0..rows {
            for c in 0..cols {
                edges.push((at(r, c), at(r, (c + 1) % cols)));
                edges.push((at(r, c), at((r + 1) % rows, c)));
            }
        }
        Self::from_edges(n, edges)
    }

    /// A random `d`-regular graph via the configuration (stub-pairing)
    /// model: `d` stubs per agent, shuffled, paired consecutively, with
    /// whole-shuffle retries until the pairing is simple. Requires
    /// `1 ≤ d < n` and `n · d` even.
    ///
    /// # Panics
    /// If no simple pairing is found in 1000 attempts (for `d ≪ n` the
    /// success probability per attempt is bounded away from zero, so this
    /// is unreachable in practice).
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(d >= 1 && d < n, "degree must satisfy 1 <= d < n");
        assert!(n * d % 2 == 0, "n * d must be even");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|u| std::iter::repeat_n(u, d))
            .collect();
        'attempt: for _ in 0..1000 {
            stubs.shuffle(&mut rng);
            let mut t = EdgeListTopology {
                adj: vec![Vec::new(); n],
                edges: Vec::with_capacity(n * d / 2),
                pos: HashMap::with_capacity(n * d / 2),
            };
            for pair in stubs.chunks_exact(2) {
                let (u, v) = (pair[0], pair[1]);
                if u == v || !t.insert_edge(u, v) {
                    continue 'attempt;
                }
            }
            return t;
        }
        panic!("random_regular(n={n}, d={d}): no simple pairing in 1000 attempts");
    }

    /// A Chung–Lu power-law graph with degree exponent `beta =
    /// gamma_x10 / 10` (so `gamma_x10 = 25` means β = 2.5), expected mean
    /// degree ≈ 4, with a ring backbone unioned in so the graph is always
    /// connected (documented deviation from the bare Chung–Lu model; the
    /// backbone adds exactly 2 to every expected degree). O(n²) build —
    /// intended for the sweep-scale populations the `topo-*` plans use,
    /// not giant n. Requires `n ≥ 3` and β > 1.
    pub fn power_law(n: usize, gamma_x10: u32, seed: u64) -> Self {
        assert!(n >= 3, "a power-law graph needs at least 3 agents");
        assert!(gamma_x10 > 10, "degree exponent must exceed 1.0");
        let beta = gamma_x10 as f64 / 10.0;
        let exp = -1.0 / (beta - 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Expected-degree weights: raw power-law ranks scaled to mean
        // degree 4, then p(u, v) = min(1, w_u * w_v / sum(w)).
        let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
        let raw_sum: f64 = raw.iter().sum();
        let mean_degree = 4.0;
        let w: Vec<f64> = raw
            .iter()
            .map(|r| mean_degree * n as f64 * r / raw_sum)
            .collect();
        let w_sum = mean_degree * n as f64;
        let mut t = Self::ring(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let p = (w[u as usize] * w[v as usize] / w_sum).min(1.0);
                if rng.gen_bool(p) && !t.pos.contains_key(&(u, v)) {
                    t.insert_edge(u, v);
                }
            }
        }
        t
    }

    /// Insert the undirected edge `{u, v}`; false if already present.
    fn insert_edge(&mut self, u: u32, v: u32) -> bool {
        let key = canon(u, v);
        if self.pos.contains_key(&key) {
            return false;
        }
        self.pos.insert(key, self.edges.len());
        self.edges.push(key);
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        true
    }

    /// Delete the undirected edge `{u, v}` (must exist).
    fn delete_edge(&mut self, u: u32, v: u32) {
        let key = canon(u, v);
        let idx = self.pos.remove(&key).expect("edge not present");
        self.edges.swap_remove(idx);
        if idx < self.edges.len() {
            self.pos.insert(self.edges[idx], idx);
        }
        for (a, b) in [(u, v), (v, u)] {
            let list = &mut self.adj[a as usize];
            let at = list.iter().position(|&x| x == b).expect("adjacency desync");
            list.swap_remove(at);
        }
    }
}

impl Topology for EdgeListTopology {
    fn num_agents(&self) -> usize {
        self.adj.len()
    }

    fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    fn neighbor_at(&self, u: usize, idx: usize) -> usize {
        self.adj[u][idx] as usize
    }

    fn edge_at(&self, idx: u64) -> (usize, usize) {
        let (u, v) = self.edges[idx as usize];
        (u as usize, v as usize)
    }

    fn edges(&self) -> Vec<(u32, u32)> {
        self.edges.clone()
    }

    fn add_agent(&mut self, degree_hint: usize, rng: &mut SmallRng) -> usize {
        let new = self.adj.len() as u32;
        self.adj.push(Vec::new());
        let existing = new as usize;
        let want = degree_hint.min(existing);
        let mut targets: Vec<u32> = Vec::with_capacity(want);
        while targets.len() < want {
            let v = rng.gen_range(0..existing) as u32;
            if !targets.contains(&v) {
                targets.push(v);
            }
        }
        for v in targets {
            self.insert_edge(new, v);
        }
        new as usize
    }

    fn remove_agent(&mut self, u: usize) {
        assert!(u < self.adj.len(), "agent {u} out of range");
        // 1. Detach u. (Iterate a snapshot: delete_edge edits adj[u].)
        let nbrs: Vec<u32> = self.adj[u].clone();
        for v in nbrs {
            self.delete_edge(u as u32, v);
        }
        // 2. Swap-remove: rename the last agent to u. Its edges are
        // detached (none of them can touch u — u has no edges left) and
        // re-inserted under the new name.
        let last = self.adj.len() - 1;
        if u != last {
            let moved: Vec<u32> = self.adj[last].clone();
            for &v in &moved {
                self.delete_edge(last as u32, v);
            }
            for v in moved {
                self.insert_edge(u as u32, v);
            }
        }
        self.adj.pop();
    }

    fn is_connected(&self) -> bool {
        let n = self.adj.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The first three tests are migrated from the old `pp_engine::graph`
    // module, which this crate replaces.
    #[test]
    fn ring_and_star_shapes() {
        let r = EdgeListTopology::ring(5);
        assert_eq!(r.num_edges(), 5);
        assert!(r.is_connected());
        let s = EdgeListTopology::star(5);
        assert_eq!(s.num_edges(), 4);
        assert!(s.is_connected());
        let c = CompleteTopology::new(5);
        assert_eq!(c.num_edges(), 10);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = EdgeListTopology::from_edges(4, vec![(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        EdgeListTopology::from_edges(3, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        EdgeListTopology::from_edges(3, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn torus_shape() {
        let t = EdgeListTopology::torus(3, 4);
        assert_eq!(t.num_agents(), 12);
        // Every torus vertex has degree 4 and |E| = 2n.
        assert_eq!(t.num_edges(), 24);
        for u in 0..12 {
            assert_eq!(t.degree(u), 4, "vertex {u}");
        }
        assert!(t.is_connected());
    }

    #[test]
    fn random_regular_is_regular_simple_and_seeded() {
        let a = EdgeListTopology::random_regular(20, 4, 9);
        assert_eq!(a.num_edges(), 40);
        for u in 0..20 {
            assert_eq!(a.degree(u), 4, "vertex {u}");
        }
        let b = EdgeListTopology::random_regular(20, 4, 9);
        assert_eq!(a.edges(), b.edges(), "same seed, same graph");
        let c = EdgeListTopology::random_regular(20, 4, 10);
        assert_ne!(a.edges(), c.edges(), "different seed, different graph");
    }

    #[test]
    fn power_law_is_connected_and_seeded() {
        let a = EdgeListTopology::power_law(50, 25, 3);
        assert!(a.is_connected(), "ring backbone guarantees connectivity");
        assert!(a.num_edges() >= 50, "at least the backbone");
        let b = EdgeListTopology::power_law(50, 25, 3);
        assert_eq!(a.edges(), b.edges());
        // Heavy head: the first-ranked agent out-degrees the last-ranked.
        assert!(a.degree(0) > a.degree(49));
    }

    #[test]
    fn complete_edge_enumeration_roundtrips() {
        let c = CompleteTopology::new(6);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..c.num_edges() {
            let (u, v) = c.edge_at(idx);
            assert!(u < v && v < 6);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 15);
        // neighbor_at(u, ·) enumerates everyone but u.
        let nbrs: Vec<usize> = (0..5).map(|i| c.neighbor_at(3, i)).collect();
        assert_eq!(nbrs, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn churn_mutation_keeps_structures_consistent() {
        let mut g = EdgeListTopology::ring(6);
        let mut rng = SmallRng::seed_from_u64(1);
        // Join: attaches to 2 random agents.
        let idx = g.add_agent(2, &mut rng);
        assert_eq!(idx, 6);
        assert_eq!(g.num_agents(), 7);
        assert_eq!(g.degree(6), 2);
        assert_eq!(g.num_edges(), 8);
        // Leave agent 0: last agent (6) is renamed to 0. It keeps its
        // edges, minus any edge it had to the departing agent.
        let deg6 = g.degree(6) - usize::from(g.adj[6].contains(&0));
        g.remove_agent(0);
        assert_eq!(g.num_agents(), 6);
        assert_eq!(g.degree(0), deg6, "renamed agent keeps surviving edges");
        // Edge vector, position map and adjacency must still agree.
        let edges = g.edges();
        assert_eq!(edges.len() as u64, g.num_edges());
        for (i, &(u, v)) in edges.iter().enumerate() {
            assert_eq!(g.edge_at(i as u64), (u as usize, v as usize));
            assert!(g.adj.get(u as usize).is_some_and(|l| l.contains(&v)));
            assert!(g.adj.get(v as usize).is_some_and(|l| l.contains(&u)));
        }
        let degree_sum: usize = (0..g.num_agents()).map(|u| g.degree(u)).sum();
        assert_eq!(degree_sum as u64, 2 * g.num_edges());
    }

    #[test]
    fn removing_star_centre_strands_everyone() {
        let mut g = EdgeListTopology::star(5);
        g.remove_agent(0);
        assert_eq!(g.num_agents(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_connected());
    }
}
