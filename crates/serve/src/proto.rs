//! Wire protocol: JSONL in, JSONL out.
//!
//! A `POST /cells` body is one [`CellSpec`] wire object per line (see
//! `CellSpec::from_json` for the schema). The response is a stream of
//! event objects, one per line, each tagged with `"event"`:
//!
//! | event      | when | payload |
//! |------------|------|---------|
//! | `accepted` | after parsing | `cells` admitted, `deduped` dropped as within-request duplicates, `span` root span id in the flight recorder |
//! | `trial`    | a trial of a simulated cell finished | `cell` stem, `done`/`of` progress |
//! | `result`   | a cell completed | `cell` stem, `source` (`cache`/`simulated`/`coalesced`), integer stats, optionally full `records` |
//! | `error`    | a cell failed | `cell` stem (when known) and `message` |
//! | `done`     | all cells resolved | totals per source |
//!
//! Everything is integers and strings — the workspace's canonical
//! no-float JSON (`pp_telemetry::json`) — so events re-encode
//! byte-stably and the load generator can parse them with the same
//! code the store uses.

use pp_sweep::json::Value;
use pp_sweep::spec::CellSpec;
use pp_sweep::store::CellResult;

/// Where a completed cell came from, as reported on `result` events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Served straight from the store, no execution.
    Cache,
    /// This request ran the simulation.
    Simulated,
    /// Another in-flight request ran it; this one waited for the result.
    Coalesced,
}

impl Source {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Cache => "cache",
            Source::Simulated => "simulated",
            Source::Coalesced => "coalesced",
        }
    }
}

/// Parse a JSONL request body into cell specs. Blank lines are
/// skipped; any malformed line fails the whole request (the client is
/// about to trust these results, so partial admission would be a
/// silent lie).
pub fn parse_specs(body: &str) -> Result<Vec<CellSpec>, String> {
    let mut specs = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        specs.push(CellSpec::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    if specs.is_empty() {
        return Err("no cell specs in request body".into());
    }
    Ok(specs)
}

/// `accepted` event. `span` is the request's root span id in the
/// flight recorder, so a client can correlate its stream with the
/// server's `GET /flight` dump (0 when the recorder is disabled).
pub fn accepted(cells: usize, deduped: usize, span: u64) -> Value {
    Value::obj([
        ("event", Value::Str("accepted".into())),
        ("cells", Value::U64(cells as u64)),
        ("deduped", Value::U64(deduped as u64)),
        ("span", Value::U64(span)),
    ])
}

/// `trial` progress event.
pub fn trial(stem: &str, done: u64, of: u64) -> Value {
    Value::obj([
        ("event", Value::Str("trial".into())),
        ("cell", Value::Str(stem.into())),
        ("done", Value::U64(done)),
        ("of", Value::U64(of)),
    ])
}

/// `result` event. Stats are integers derived from the records (the
/// wire format carries no floats): censored trials have no interaction
/// count and are excluded from min/mean/max.
pub fn result(spec: &CellSpec, source: Source, res: &CellResult, include_records: bool) -> Value {
    let interactions = res.interactions();
    let mean = if interactions.is_empty() {
        0
    } else {
        interactions.iter().sum::<u64>() / interactions.len() as u64
    };
    let mut pairs = vec![
        ("event", Value::Str("result".into())),
        ("cell", Value::Str(spec.file_stem())),
        ("key", Value::Str(spec.canonical_key())),
        ("source", Value::Str(source.as_str().into())),
        ("trials", Value::U64(res.records.len() as u64)),
        ("censored", Value::U64(res.censored() as u64)),
        (
            "min_interactions",
            Value::opt_u64(interactions.iter().min().copied()),
        ),
        ("mean_interactions", Value::U64(mean)),
        (
            "max_interactions",
            Value::opt_u64(interactions.iter().max().copied()),
        ),
    ];
    if include_records {
        pairs.push((
            "records",
            Value::Arr(res.records.iter().map(|r| r.to_json()).collect()),
        ));
    }
    Value::obj(pairs)
}

/// `error` event for one cell (or the whole request when `cell` is
/// unknown).
pub fn error(cell: Option<&str>, message: &str) -> Value {
    let mut pairs = vec![
        ("event", Value::Str("error".into())),
        ("message", Value::Str(message.into())),
    ];
    if let Some(stem) = cell {
        pairs.push(("cell", Value::Str(stem.into())));
    }
    Value::obj(pairs)
}

/// `done` event closing a `/cells` stream.
pub fn done(cache: u64, simulated: u64, coalesced: u64, errors: u64) -> Value {
    Value::obj([
        ("event", Value::Str("done".into())),
        ("cache", Value::U64(cache)),
        ("simulated", Value::U64(simulated)),
        ("coalesced", Value::U64(coalesced)),
        ("errors", Value::U64(errors)),
        ("total", Value::U64(cache + simulated + coalesced + errors)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_line(seed: u64) -> String {
        format!(
            "{{\"protocol\":\"ukp\",\"k\":3,\"n\":16,\"trials\":2,\"seed\":{seed},\"budget\":100000}}"
        )
    }

    #[test]
    fn parse_specs_reads_jsonl_and_skips_blanks() {
        let body = format!("{}\n\n{}\n", spec_line(1), spec_line(2));
        let specs = parse_specs(&body).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].seed, 1);
        assert_eq!(specs[1].seed, 2);
    }

    #[test]
    fn parse_specs_rejects_bad_lines_with_line_numbers() {
        let body = format!("{}\nnot json\n", spec_line(1));
        let err = parse_specs(&body).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(parse_specs("").is_err());
        assert!(parse_specs("\n\n").is_err());
    }

    #[test]
    fn events_encode_with_stable_keys() {
        let e = accepted(3, 1, 42).encode();
        assert_eq!(
            e,
            "{\"cells\":3,\"deduped\":1,\"event\":\"accepted\",\"span\":42}"
        );
        let t = trial("ukp-k3-n16-abc", 1, 4).encode();
        assert!(t.contains("\"event\":\"trial\""));
        assert!(t.contains("\"done\":1"));
        let d = done(1, 2, 3, 0).encode();
        assert!(d.contains("\"total\":6"));
        let err = error(Some("stem"), "boom").encode();
        assert!(err.contains("\"cell\":\"stem\""));
    }

    #[test]
    fn result_event_reports_integer_stats() {
        let spec = parse_specs(&spec_line(7)).unwrap().remove(0);
        let res = pp_sweep::exec::run_cell(
            &spec,
            &pp_sweep::store::ResultStore::in_memory(),
            &pp_sweep::observer::NullObserver,
            &pp_sweep::exec::ExecOptions::default(),
        )
        .unwrap()
        .expect_complete();
        let e = result(&spec, Source::Simulated, &res, false);
        assert_eq!(e.get("source").unwrap().as_str(), Some("simulated"));
        assert_eq!(e.get("trials").unwrap().as_u64(), Some(2));
        assert!(e.get("records").is_none());
        let with = result(&spec, Source::Cache, &res, true);
        assert_eq!(with.get("records").unwrap().as_arr().unwrap().len(), 2);
    }
}
