//! Service-layer metrics, in the same process-wide [`pp_telemetry`]
//! registry as the engine and sweep series — one export covers the
//! whole stack, and `pp-sweep metrics`' validation rules keep holding
//! for files a server writes.
//!
//! | name                        | kind      | meaning |
//! |-----------------------------|-----------|---------|
//! | `serve.requests`            | counter   | connections accepted |
//! | `serve.requests.rejected`   | counter   | connections bounced by admission control (429) |
//! | `serve.requests.bad`        | counter   | malformed requests (4xx) |
//! | `serve.cells.requested`     | counter   | cell specs admitted |
//! | `serve.cells.cache_hits`    | counter   | cells answered from the store |
//! | `serve.cells.simulated`     | counter   | cells this server executed |
//! | `serve.cells.coalesced`     | counter   | cells that piggybacked on an identical in-flight execution |
//! | `serve.cells.errors`        | counter   | cells that failed |
//! | `serve.queue.depth`         | gauge     | connections waiting for a worker |
//! | `serve.inflight`            | gauge     | requests being handled right now |
//! | `serve.request.micros`      | histogram | wall time per handled request |
//! | `serve.cell.wait_micros`    | histogram | wall time per resolved cell (includes coalesced waits) |

use pp_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Shared handles to the service's global metric series.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Connections accepted off the listener.
    pub requests: Arc<Counter>,
    /// Connections refused with 429 because the admission queue was full.
    pub requests_rejected: Arc<Counter>,
    /// Requests answered with a 4xx for being malformed.
    pub requests_bad: Arc<Counter>,
    /// Cell specs admitted for resolution.
    pub cells_requested: Arc<Counter>,
    /// Cells answered from the store without executing.
    pub cells_cache_hits: Arc<Counter>,
    /// Cells executed by this server.
    pub cells_simulated: Arc<Counter>,
    /// Cells that waited on an identical in-flight execution.
    pub cells_coalesced: Arc<Counter>,
    /// Cells that failed to resolve.
    pub cells_errors: Arc<Counter>,
    /// Connections sitting in the admission queue.
    pub queue_depth: Arc<Gauge>,
    /// Requests currently being handled by workers.
    pub inflight: Arc<Gauge>,
    /// Wall time per handled request, microseconds.
    pub request_micros: Arc<Histogram>,
    /// Wall time per resolved cell, microseconds.
    pub cell_wait_micros: Arc<Histogram>,
}

impl ServeMetrics {
    /// Resolve (registering on first use) the serve series in `reg`.
    pub fn register_in(reg: &Registry) -> Self {
        ServeMetrics {
            requests: reg.counter("serve.requests"),
            requests_rejected: reg.counter("serve.requests.rejected"),
            requests_bad: reg.counter("serve.requests.bad"),
            cells_requested: reg.counter("serve.cells.requested"),
            cells_cache_hits: reg.counter("serve.cells.cache_hits"),
            cells_simulated: reg.counter("serve.cells.simulated"),
            cells_coalesced: reg.counter("serve.cells.coalesced"),
            cells_errors: reg.counter("serve.cells.errors"),
            queue_depth: reg.gauge("serve.queue.depth"),
            inflight: reg.gauge("serve.inflight"),
            request_micros: reg.histogram("serve.request.micros"),
            cell_wait_micros: reg.histogram("serve.cell.wait_micros"),
        }
    }
}

/// The service's series in the process-wide registry.
pub fn serve_metrics() -> &'static ServeMetrics {
    static GLOBAL: OnceLock<ServeMetrics> = OnceLock::new();
    GLOBAL.get_or_init(|| ServeMetrics::register_in(pp_telemetry::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_register_once_and_share_state() {
        let a = serve_metrics();
        let before = a.requests.get();
        serve_metrics().requests.inc();
        assert_eq!(a.requests.get(), before + 1);
        // Same name in the global registry resolves to the same counter.
        assert_eq!(
            pp_telemetry::global().counter("serve.requests").get(),
            a.requests.get()
        );
    }
}
