//! The daemon: accept loop, bounded admission queue, worker pool,
//! request routing, graceful shutdown.
//!
//! Shape: the accept loop runs nonblocking and does nothing but
//! admission control — it hands each connection to a bounded
//! `sync_channel` feeding a fixed pool of worker threads, and answers
//! `429` immediately when the queue is full (backpressure by refusal,
//! not by unbounded buffering). Workers parse one request per
//! connection and route it:
//!
//! | endpoint         | behaviour |
//! |------------------|-----------|
//! | `GET /healthz`   | `{"ok":true}` |
//! | `GET /stats`     | backend kind/location/stats + service counters |
//! | `GET /metrics`   | live Prometheus text exposition of the whole registry (engine, sweep, serve, obs series) |
//! | `GET /flight`    | flight-recorder dump as NDJSON — the most recent span/event records |
//! | `POST /cells`    | JSONL specs in, streamed JSONL events out (see [`crate::proto`]); `?records=1` includes full trial records, `?trace=1` captures per-cell traces, `?timeline=1` captures per-cell phase timelines, `?hold_ms=N` delays execution (load-testing knob) |
//! | `POST /shutdown` | begin graceful shutdown |
//!
//! Every `POST /cells` request is traced as a span tree in the flight
//! recorder: `serve.request` → `serve.admission` (parse + dedupe),
//! `serve.cell{label=stem}` per cell (crossing onto the compute pool
//! with an explicit parent), with the coalescer's `serve.store_lookup` /
//! `serve.simulate` / `serve.coalesce_wait` spans nested under each
//! cell, and `serve.stream_flush` covering the drain onto the socket.
//! The root span id is echoed in the `accepted` event.
//!
//! Graceful shutdown (via `/shutdown` or the flag from
//! [`Server::shutdown_flag`], which the binary wires to SIGTERM):
//! stop accepting, let workers drain queued connections, join them,
//! then flush the store — for the log backend that is the moment the
//! journal hits disk.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use pp_sweep::json::Value;
use pp_sweep::spec::CellSpec;
use pp_sweep::store::ResultStore;
use rayon::prelude::*;

use crate::coalesce::Coalescer;
use crate::http::{self, ParseError, Request};
use crate::proto::{self, Source};
use crate::telemetry::serve_metrics;

/// Hard cap on specs per request; beyond this the client should shard
/// its submission (or use `pp-sweep run` locally).
pub const MAX_CELLS_PER_REQUEST: usize = 4096;

/// Tuning for [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Admission queue depth: connections allowed to wait for a worker
    /// before new ones bounce with 429.
    pub queue: usize,
    /// Worker threads handling requests. Simulation inside a request
    /// additionally fans out trials on the compute pool.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7717".into(),
            queue: 64,
            workers: 4,
        }
    }
}

/// What a server run handled, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Connections accepted and handed to workers.
    pub handled: u64,
    /// Connections refused by admission control.
    pub rejected: u64,
}

/// Shared state every worker sees.
struct Ctx {
    store: ResultStore,
    coalescer: Coalescer,
    shutdown: AtomicBool,
    inflight: AtomicU64,
}

/// A bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    cfg: ServeConfig,
}

impl Server {
    /// Bind the listener and prepare shared state. The store is shared
    /// by all workers — its backend is already thread-safe.
    pub fn bind(cfg: ServeConfig, store: ResultStore) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                store,
                coalescer: Coalescer::new(),
                shutdown: AtomicBool::new(false),
                inflight: AtomicU64::new(0),
            }),
            cfg,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Handle the binary's signal handler (or a test) can trip to
    /// request graceful shutdown.
    pub fn shutdown_flag(&self) -> Arc<ShutdownFlag> {
        Arc::new(ShutdownFlag {
            ctx: Arc::clone(&self.ctx),
        })
    }

    /// Serve until shutdown is requested, then drain, join, flush.
    pub fn run(self) -> io::Result<ServeSummary> {
        let m = serve_metrics();
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(self.cfg.queue.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let queued = Arc::new(AtomicU64::new(0));

        let workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&conn_rx);
                let ctx = Arc::clone(&self.ctx);
                let queued = Arc::clone(&queued);
                std::thread::spawn(move || worker_loop(&rx, &ctx, &queued))
            })
            .collect();

        let mut summary = ServeSummary::default();
        while !self.ctx.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    m.requests.inc();
                    m.queue_depth.set(queued.fetch_add(1, Ordering::SeqCst) + 1);
                    match conn_tx.try_send(stream) {
                        Ok(()) => summary.handled += 1,
                        Err(TrySendError::Full(stream)) => {
                            m.queue_depth.set(queued.fetch_sub(1, Ordering::SeqCst) - 1);
                            m.requests_rejected.inc();
                            summary.rejected += 1;
                            // Answer off-thread: the 429 must not reach
                            // the peer as a connection reset, which means
                            // draining their request first (closing with
                            // unread data pending makes TCP send RST and
                            // discard our response) — and the accept loop
                            // must not block on a slow writer meanwhile.
                            std::thread::spawn(move || reject(stream));
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // 1ms: short enough that accept-poll latency stays
                    // invisible next to even a cached response, long
                    // enough that the idle loop costs ~nothing.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: close the intake so workers exit once the queue is
        // empty, join them, then flush whatever the backend buffers.
        drop(conn_tx);
        for w in workers {
            let _ = w.join();
        }
        self.ctx.store.flush()?;
        Ok(summary)
    }
}

/// Cloneable handle that trips a server's shutdown flag.
pub struct ShutdownFlag {
    ctx: Arc<Ctx>,
}

impl ShutdownFlag {
    /// Request graceful shutdown (idempotent).
    pub fn trip(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_tripped(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }
}

/// Refuse one connection with 429. Reads (and discards) the request
/// first so the close after our response is a clean FIN, not an RST.
fn reject(stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut writer = stream;
    if let Ok(clone) = writer.try_clone() {
        let _ = http::read_request(&mut BufReader::new(clone));
    }
    let _ = http::write_response(
        &mut writer,
        429,
        "{\"error\":\"admission queue full, retry later\"}",
    );
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx, queued: &AtomicU64) {
    loop {
        // Hold the lock only to receive; handling runs unlocked so the
        // other workers keep draining the queue.
        let stream = match rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return, // intake closed: shutdown
        };
        let m = serve_metrics();
        m.queue_depth.set(queued.fetch_sub(1, Ordering::SeqCst) - 1);
        m.inflight
            .set(ctx.inflight.fetch_add(1, Ordering::SeqCst) + 1);
        let t0 = Instant::now();
        let _ = handle_connection(stream, ctx);
        m.request_micros
            .record(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        m.inflight
            .set(ctx.inflight.fetch_sub(1, Ordering::SeqCst) - 1);
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let req = match http::read_request(&mut reader)? {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()), // probe connect/disconnect
        Err(e) => {
            serve_metrics().requests_bad.inc();
            let status = match e {
                ParseError::BodyTooLarge(_) => 413,
                ParseError::Malformed(_) => 400,
            };
            let body = proto::error(None, &e.to_string()).encode();
            return http::write_response(&mut writer, status, &body);
        }
    };

    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => http::write_response(&mut writer, 200, "{\"ok\":true}"),
        ("GET", "/stats") => http::write_response(&mut writer, 200, &stats_body(ctx)),
        ("GET", "/metrics") => http::write_response_typed(
            &mut writer,
            200,
            pp_telemetry::prom::CONTENT_TYPE,
            &metrics_body(),
        ),
        ("GET", "/flight") => http::write_response_typed(
            &mut writer,
            200,
            "application/x-ndjson",
            &pp_obs::recorder().to_ndjson(),
        ),
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            http::write_response(&mut writer, 200, "{\"ok\":true,\"shutting_down\":true}")
        }
        ("POST", "/cells") => handle_cells(&req, &mut writer, ctx),
        (_, "/healthz" | "/stats" | "/metrics" | "/flight" | "/shutdown" | "/cells") => {
            serve_metrics().requests_bad.inc();
            http::write_response(&mut writer, 405, "{\"error\":\"method not allowed\"}")
        }
        _ => {
            serve_metrics().requests_bad.inc();
            http::write_response(&mut writer, 404, "{\"error\":\"no such endpoint\"}")
        }
    }
}

/// `GET /metrics`: the whole process registry as Prometheus text.
/// Forces registration of every layer's series first, so a scrape of an
/// idle server still shows the complete schema (counters at zero).
fn metrics_body() -> String {
    pp_sweep::telemetry::register_all_series();
    let _ = serve_metrics();
    pp_telemetry::to_prometheus(&pp_telemetry::Snapshot::capture_global())
}

/// `GET /stats`: store backend identity and occupancy plus the
/// service's own counters — the quick "what is this server doing"
/// probe (full series go through the metrics export).
fn stats_body(ctx: &Ctx) -> String {
    let m = serve_metrics();
    let s = ctx.store.stats();
    Value::obj([
        (
            "store",
            Value::obj([
                ("backend", Value::Str(ctx.store.kind().into())),
                ("location", Value::Str(ctx.store.location())),
                ("cells", Value::U64(s.cells)),
                ("journals", Value::U64(s.journals)),
                ("bytes", Value::U64(s.bytes)),
                ("live_bytes", Value::U64(s.live_bytes)),
                ("dead_bytes", Value::U64(s.dead_bytes)),
            ]),
        ),
        (
            "serve",
            Value::obj([
                ("requests", Value::U64(m.requests.get())),
                ("rejected", Value::U64(m.requests_rejected.get())),
                ("cells_requested", Value::U64(m.cells_requested.get())),
                ("cache_hits", Value::U64(m.cells_cache_hits.get())),
                ("simulated", Value::U64(m.cells_simulated.get())),
                ("coalesced", Value::U64(m.cells_coalesced.get())),
                ("errors", Value::U64(m.cells_errors.get())),
                ("in_flight", Value::U64(ctx.coalescer.in_flight() as u64)),
            ]),
        ),
    ])
    .encode()
}

fn handle_cells(req: &Request, writer: &mut TcpStream, ctx: &Ctx) -> io::Result<()> {
    // Root of this request's span tree; its id is echoed to the client
    // in the `accepted` event so client streams and `GET /flight` dumps
    // correlate.
    let req_span = pp_obs::span_labelled("serve.request", "POST /cells");
    let req_span_id = req_span.id();

    // Admission: parse, size-check, dedupe — everything that can bounce
    // the request before any simulation work is committed.
    let admission = pp_obs::span("serve.admission");
    let body = String::from_utf8_lossy(&req.body);
    let specs = match proto::parse_specs(&body) {
        Ok(s) => s,
        Err(e) => {
            serve_metrics().requests_bad.inc();
            return http::write_response(writer, 400, &proto::error(None, &e).encode());
        }
    };
    if specs.len() > MAX_CELLS_PER_REQUEST {
        serve_metrics().requests_bad.inc();
        let msg = format!(
            "{} cells in one request (limit {MAX_CELLS_PER_REQUEST}); shard the submission",
            specs.len()
        );
        return http::write_response(writer, 413, &proto::error(None, &msg).encode());
    }

    // Dedupe within the request: identical lines resolve to one cell
    // (the coalescer would serialize them anyway; dropping them up
    // front keeps the `done` totals meaningful).
    let mut seen = std::collections::HashSet::new();
    let total = specs.len();
    let specs: Vec<CellSpec> = specs
        .into_iter()
        .filter(|s| seen.insert(s.content_hash()))
        .collect();
    let deduped = total - specs.len();
    serve_metrics().cells_requested.add(specs.len() as u64);
    pp_obs::event("serve.cells_admitted", specs.len() as u64);
    drop(admission);

    // Load-testing knob: hold the request (after admission, before
    // execution) so tests can pin a worker deterministically.
    if let Some(ms) = req.query_param("hold_ms").and_then(|v| v.parse().ok()) {
        std::thread::sleep(Duration::from_millis(u64::min(ms, 10_000)));
    }

    let include_records = req.query_flag("records");
    let capture_trace = req.query_flag("trace");
    let capture_timeline = req.query_flag("timeline");

    http::start_stream(writer, 200)?;
    http::stream_line(
        writer,
        &proto::accepted(specs.len(), deduped, req_span_id.0).encode(),
    )?;

    // Producer side: resolve every cell on the compute pool, pushing
    // progress and result events into one channel. Consumer side (this
    // thread): drain the channel onto the socket as lines arrive, so
    // the client sees trial progress while later cells still run. The
    // channel closes when the producer finishes — that ends the drain.
    let (tx, rx) = mpsc::channel::<Value>();
    let tallies = std::thread::scope(|scope| {
        let producer = scope.spawn(|| {
            let jobs: Vec<(CellSpec, Sender<Value>)> =
                specs.iter().map(|s| (s.clone(), tx.clone())).collect();
            drop(tx); // producers hold the only remaining senders
            let outcomes: Vec<(Source, bool)> = jobs
                .into_par_iter()
                .map(|(spec, tx)| {
                    // Rayon workers have no ambient span stack; attach this
                    // cell's span under the request root explicitly.
                    pp_obs::with_parent(req_span_id, || {
                        let _cell = pp_obs::span_labelled("serve.cell", &spec.file_stem());
                        let (source, result) = ctx.coalescer.obtain(&spec, &ctx.store, &tx);
                        let ok = result.is_ok();
                        match result {
                            Ok(res) => {
                                let _ =
                                    tx.send(proto::result(&spec, source, &res, include_records));
                                if capture_trace {
                                    let _ = tx.send(trace_event(&spec, &ctx.store));
                                }
                                if capture_timeline {
                                    let _ = tx.send(timeline_event(&spec, &ctx.store));
                                }
                            }
                            Err(e) => {
                                let _ = tx.send(proto::error(Some(&spec.file_stem()), &e));
                            }
                        }
                        (source, ok)
                    })
                })
                .collect();
            let mut t = (0u64, 0u64, 0u64, 0u64); // cache, simulated, coalesced, errors
            for (source, ok) in outcomes {
                match (ok, source) {
                    (false, _) => t.3 += 1,
                    (true, Source::Cache) => t.0 += 1,
                    (true, Source::Simulated) => t.1 += 1,
                    (true, Source::Coalesced) => t.2 += 1,
                }
            }
            t
        });
        // A client that hangs up mid-stream stops receiving lines, but
        // the producer runs to completion — results still land in the
        // store and coalesced waiters still wake.
        let _flush = pp_obs::span("serve.stream_flush");
        let mut broken = false;
        for event in rx {
            if !broken && http::stream_line(writer, &event.encode()).is_err() {
                broken = true;
            }
        }
        producer
            .join()
            .expect("producer panics are caught per-cell")
    });

    let (cache, simulated, coalesced, errors) = tallies;
    let _ = http::stream_line(
        writer,
        &proto::done(cache, simulated, coalesced, errors).encode(),
    );
    Ok(())
}

/// `trace` event for `?trace=1`: capture (or reuse) the cell's trial-0
/// trace next to its stored result.
fn trace_event(spec: &CellSpec, store: &ResultStore) -> Value {
    match pp_sweep::trace::trace_cell(spec, store) {
        Ok(t) => Value::obj([
            ("event", Value::Str("trace".into())),
            ("cell", Value::Str(t.stem)),
            ("path", Value::Str(t.path.display().to_string())),
            ("fresh", Value::Bool(t.fresh)),
            ("bytes", Value::U64(t.bytes)),
            ("effective", Value::U64(t.effective)),
        ]),
        Err(e) => proto::error(Some(&spec.file_stem()), &format!("trace failed: {e}")),
    }
}

/// `timeline` event for `?timeline=1`: capture (or reuse) the cell's
/// trial-0 convergence-phase timeline next to its stored result.
/// Protocols without a phase classification report a zero-segment event
/// rather than an error — asking for timelines on a foreign protocol is
/// not a client mistake.
fn timeline_event(spec: &CellSpec, store: &ResultStore) -> Value {
    match pp_sweep::timeline::timeline_cell(spec, store) {
        Ok(Some(t)) => Value::obj([
            ("event", Value::Str("timeline".into())),
            ("cell", Value::Str(t.stem)),
            ("path", Value::Str(t.path.display().to_string())),
            ("fresh", Value::Bool(t.fresh)),
            ("segments", Value::U64(t.segments.len() as u64)),
            ("checkpoints", Value::U64(t.checkpoints)),
            ("stable", Value::U64(t.stable as u64)),
        ]),
        Ok(None) => Value::obj([
            ("event", Value::Str("timeline".into())),
            ("cell", Value::Str(spec.file_stem())),
            ("segments", Value::U64(0)),
        ]),
        Err(e) => proto::error(Some(&spec.file_stem()), &format!("timeline failed: {e}")),
    }
}

/// Convenience used by the binary: serve with this config and store,
/// returning the summary after graceful shutdown.
pub fn serve(cfg: ServeConfig, store: ResultStore) -> io::Result<ServeSummary> {
    Server::bind(cfg, store)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_channel_try_send_semantics_match_admission_control() {
        let (tx, rx) = mpsc::sync_channel::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.queue > 0);
        assert!(cfg.workers > 0);
        assert!(cfg.addr.contains(':'));
    }
}
