//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! The service speaks exactly the slice of HTTP/1.1 its clients need:
//! one request per connection, `Content-Length` bodies, and either a
//! fixed response or a streamed `Connection: close` body whose end is
//! signalled by closing the socket. No chunked encoding, no keep-alive,
//! no TLS — the daemon is a lab-internal cache front, not a web server,
//! and the build environment has no HTTP crate to lean on anyway.

use std::io::{self, BufRead, Write};

/// Parse limits: a request that exceeds these is rejected before any
/// simulation work is admitted.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on request body size (1 MiB of JSONL specs ≈ tens of
/// thousands of cells — far beyond anything a sane client submits).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed request: method, target (path + optional query), body.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target as sent, e.g. `/cells?records=1`.
    pub target: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Path component of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Query string (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Value of `name` in the query string (`?a=1&b=2`), if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// True when the query has `name=1` or a bare `name` flag.
    pub fn query_flag(&self, name: &str) -> bool {
        self.query().is_some_and(|q| {
            q.split('&')
                .any(|kv| kv == name || kv == format!("{name}=1"))
        })
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Errors from [`read_request`] that deserve a 4xx rather than a
/// dropped connection.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or headers.
    Malformed(String),
    /// Body longer than [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::BodyTooLarge(n) => {
                write!(f, "body of {n} bytes exceeds limit of {MAX_BODY_BYTES}")
            }
        }
    }
}

/// Read one request off `r`. `Ok(None)` means the peer closed before
/// sending anything (a health-probe disconnect, not an error).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Result<Option<Request>, ParseError>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(Ok(None));
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), t.to_string()),
        _ => {
            return Ok(Err(ParseError::Malformed(format!(
                "bad request line {:?}",
                line.trim_end()
            ))))
        }
    };

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Ok(Err(ParseError::Malformed("eof in headers".into())));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(Err(ParseError::Malformed("too many headers".into())));
        }
        let Some((name, value)) = h.split_once(':') else {
            return Ok(Err(ParseError::Malformed(format!("bad header {h:?}"))));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(Err(ParseError::Malformed(format!(
                        "bad content-length {value:?}"
                    ))))
                }
            };
        }
        headers.push((name, value));
    }

    if content_length > MAX_BODY_BYTES {
        return Ok(Err(ParseError::BodyTooLarge(content_length)));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Ok(Some(Request {
        method,
        target,
        headers,
        body,
    })))
}

/// Reason phrase for the handful of status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete (non-streamed) JSON response with `Content-Length`.
pub fn write_response(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response_typed(w, status, "application/json", body)
}

/// Write a complete response with an explicit content type — the
/// Prometheus exposition (`GET /metrics`) and the flight-recorder dump
/// (`GET /flight`) are not JSON.
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    w.flush()
}

/// Start a streamed response: status line plus headers, no
/// `Content-Length` — the body is JSONL written line by line and ends
/// when the connection closes (that is what `connection: close` means
/// to an HTTP/1.1 peer).
pub fn start_stream(w: &mut impl Write, status: u16) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/x-ndjson\r\nconnection: close\r\n\r\n",
        reason(status),
    )?;
    w.flush()
}

/// Write one JSONL line of a streamed body and flush, so clients see
/// progress as it happens rather than on close.
pub fn stream_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(text.as_bytes())).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /cells?records=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/cells");
        assert!(req.query_flag("records"));
        assert!(!req.query_flag("trace"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_query_params() {
        let req = parse("GET /stats?hold_ms=25&x=y HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/stats");
        assert_eq!(req.query_param("hold_ms"), Some("25"));
        assert_eq!(req.query_param("x"), Some("y"));
        assert_eq!(req.query_param("absent"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(matches!(
            parse("not http\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge), Err(ParseError::BodyTooLarge(_))));
    }

    #[test]
    fn response_framing_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "{\"error\":\"busy\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 16"));
        assert!(text.ends_with("{\"error\":\"busy\"}"));

        let mut out = Vec::new();
        start_stream(&mut out, 200).unwrap();
        stream_line(&mut out, "{\"event\":\"accepted\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("application/x-ndjson"));
        assert!(text.ends_with("{\"event\":\"accepted\"}\n"));
    }
}
