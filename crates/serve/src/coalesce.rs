//! Request coalescing: identical in-flight cells execute once.
//!
//! The store already dedupes across time — a finished cell is a cache
//! hit forever. Coalescing dedupes across *concurrent* requests: when
//! two clients submit the same spec (same content hash, i.e. same
//! canonical key) while the first is still simulating, the second does
//! not start a duplicate execution. It subscribes to the first one's
//! flight, receives the same per-trial progress events, and wakes with
//! the same [`CellResult`] when the flight lands.
//!
//! The mechanism is a flight map keyed by the spec's content hash,
//! guarded so that exactly one thread wins the right to execute
//! (`Source::Simulated`); everyone else blocks on the flight's condvar
//! (`Source::Coalesced`). A store hit short-circuits both paths
//! (`Source::Cache`). Executor panics are caught and land the flight
//! as an error, so a poisoned spec can never strand its waiters.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use pp_sweep::exec::{run_cell, CellOutcome, ExecOptions};
use pp_sweep::json::Value;
use pp_sweep::observer::SweepObserver;
use pp_sweep::spec::CellSpec;
use pp_sweep::store::{CellResult, ResultStore};

use crate::proto::{self, Source};
use crate::telemetry::serve_metrics;

/// How a flight can end: the cell's result, or an error message every
/// subscriber sees.
pub type FlightResult = Result<CellResult, String>;

/// One in-flight execution of a cell.
struct Flight {
    spec: CellSpec,
    /// `None` while flying; the landing fills it exactly once.
    landed: Mutex<Option<FlightResult>>,
    cv: Condvar,
    /// Progress subscribers: every request waiting on this flight gets
    /// the executor's `trial` events mirrored into its stream.
    subs: Mutex<Vec<Sender<Value>>>,
    trials_done: AtomicU64,
}

impl Flight {
    fn broadcast(&self, event: &Value) {
        let subs = self.subs.lock().unwrap();
        for tx in subs.iter() {
            // A subscriber whose client hung up just misses updates.
            let _ = tx.send(event.clone());
        }
    }
}

/// Observer bridging the sweep executor's trial callbacks onto a
/// flight's subscriber streams.
struct FlightObserver<'a> {
    flight: &'a Flight,
}

impl SweepObserver for FlightObserver<'_> {
    fn trial_finished(&self, spec: &CellSpec, _censored: bool) {
        let done = self.flight.trials_done.fetch_add(1, Ordering::Relaxed) + 1;
        self.flight
            .broadcast(&proto::trial(&spec.file_stem(), done, spec.trials as u64));
    }
}

/// The coalescer: flight map over a shared store.
#[derive(Default)]
pub struct Coalescer {
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl Coalescer {
    /// New coalescer with no flights.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// Number of cells currently executing.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    /// Resolve one cell: store hit, join an identical in-flight
    /// execution, or run it here. `events` receives `trial` progress
    /// lines for the caller's stream (on both the simulating and the
    /// coalesced paths). Blocks until the cell lands.
    pub fn obtain(
        &self,
        spec: &CellSpec,
        store: &ResultStore,
        events: &Sender<Value>,
    ) -> (Source, FlightResult) {
        let m = serve_metrics();
        let t0 = std::time::Instant::now();
        let (source, result) = self.obtain_inner(spec, store, events);
        m.cell_wait_micros
            .record(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        match (source, &result) {
            (_, Err(_)) => m.cells_errors.inc(),
            (Source::Cache, _) => m.cells_cache_hits.inc(),
            (Source::Simulated, _) => m.cells_simulated.inc(),
            (Source::Coalesced, _) => m.cells_coalesced.inc(),
        }
        (source, result)
    }

    fn obtain_inner(
        &self,
        spec: &CellSpec,
        store: &ResultStore,
        events: &Sender<Value>,
    ) -> (Source, FlightResult) {
        // Fast path: the store already has it.
        let lookup = pp_obs::span("serve.store_lookup");
        if let Some(hit) = store.load(spec) {
            return (Source::Cache, Ok(hit));
        }
        drop(lookup);

        let key = spec.content_hash();
        let flight = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&key) {
                // Identical spec already flying: subscribe and wait.
                // Content hashes are compared on the full canonical key
                // to rule out the (astronomical) hash collision.
                Some(f) if f.spec == *spec => {
                    let f = Arc::clone(f);
                    f.subs.lock().unwrap().push(events.clone());
                    drop(flights);
                    let _wait = pp_obs::span("serve.coalesce_wait");
                    return (Source::Coalesced, self.wait(&f));
                }
                _ => {
                    let f = Arc::new(Flight {
                        spec: spec.clone(),
                        landed: Mutex::new(None),
                        cv: Condvar::new(),
                        subs: Mutex::new(vec![events.clone()]),
                        trials_done: AtomicU64::new(0),
                    });
                    flights.insert(key, Arc::clone(&f));
                    f
                }
            }
        };

        // Double-check the store: a previous flight may have landed and
        // saved between our cache probe and winning the flight map.
        if let Some(hit) = store.load(spec) {
            *flight.landed.lock().unwrap() = Some(Ok(hit.clone()));
            flight.cv.notify_all();
            self.flights.lock().unwrap().remove(&key);
            return (Source::Cache, Ok(hit));
        }

        // This thread won the flight: execute, land, wake the waiters.
        // catch_unwind so a panicking simulation (impossible for specs
        // that passed validation, but this is a long-running daemon)
        // lands as an error instead of stranding subscribers.
        let _simulate = pp_obs::span("serve.simulate");
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let obs = FlightObserver { flight: &flight };
            run_cell(spec, store, &obs, &ExecOptions::default())
        }));
        let result: FlightResult = match run {
            Ok(Ok(CellOutcome::Complete(res))) => Ok(res),
            Ok(Ok(CellOutcome::Interrupted { journaled })) => Err(format!(
                "cell interrupted after {journaled} trials (kill_after set?)"
            )),
            Ok(Err(e)) => Err(format!("cell execution failed: {e}")),
            Err(panic) => Err(match panic.downcast_ref::<&str>() {
                Some(s) => format!("cell execution panicked: {s}"),
                None => match panic.downcast_ref::<String>() {
                    Some(s) => format!("cell execution panicked: {s}"),
                    None => "cell execution panicked".into(),
                },
            }),
        };

        *flight.landed.lock().unwrap() = Some(result.clone());
        flight.cv.notify_all();
        self.flights.lock().unwrap().remove(&key);
        (Source::Simulated, result)
    }

    fn wait(&self, flight: &Flight) -> FlightResult {
        let mut landed = flight.landed.lock().unwrap();
        while landed.is_none() {
            landed = flight.cv.wait(landed).unwrap();
        }
        landed.clone().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn spec(seed: u64, n: usize) -> CellSpec {
        let line = format!(
            "{{\"protocol\":\"ukp\",\"k\":3,\"n\":{n},\"trials\":3,\"seed\":{seed},\"budget\":10000000}}"
        );
        CellSpec::from_json(&Value::parse(&line).unwrap()).unwrap()
    }

    #[test]
    fn cache_then_simulate_then_cache() {
        let store = ResultStore::in_memory();
        let co = Coalescer::new();
        let (tx, rx) = channel();
        let s = spec(1, 16);
        let (src, res) = co.obtain(&s, &store, &tx);
        assert_eq!(src, Source::Simulated);
        let res = res.unwrap();
        assert_eq!(res.records.len(), 3);
        // Progress events were delivered for each trial.
        let events: Vec<Value> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("trial"));

        let (src2, res2) = co.obtain(&s, &store, &tx);
        assert_eq!(src2, Source::Cache);
        assert_eq!(res2.unwrap().records, res.records);
        assert_eq!(co.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_specs_coalesce_to_one_execution() {
        let store = ResultStore::in_memory();
        let co = Arc::new(Coalescer::new());
        // Big enough that the threads overlap; the assertion below is on
        // the metrics delta, which is exact regardless of interleaving.
        let s = spec(2, 128);
        let m = serve_metrics();
        let sim0 = m.cells_simulated.get();
        let results: Vec<(Source, FlightResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let co = Arc::clone(&co);
                    let store = store.clone();
                    let s = s.clone();
                    scope.spawn(move || {
                        let (tx, _rx) = channel();
                        co.obtain(&s, &store, &tx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let records: Vec<_> = results
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().records.clone())
            .collect();
        // Everyone got the same (bit-identical) records.
        assert!(records.windows(2).all(|w| w[0] == w[1]));
        // At most one thread actually simulated. (Threads that started
        // after the flight landed see a cache hit; that's fine.)
        assert!(m.cells_simulated.get() - sim0 <= 1);
        assert_eq!(co.in_flight(), 0);
    }

    #[test]
    fn different_specs_fly_independently() {
        let store = ResultStore::in_memory();
        let co = Coalescer::new();
        let (tx, _rx) = channel();
        let (a, _) = co.obtain(&spec(3, 16), &store, &tx);
        let (b, _) = co.obtain(&spec(4, 16), &store, &tx);
        assert_eq!(a, Source::Simulated);
        assert_eq!(b, Source::Simulated);
    }
}
