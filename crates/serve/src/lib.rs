//! `pp-serve`: the experiment stack as a long-running service.
//!
//! A sweep binary pays its cache lookups once per invocation; a
//! research group iterating on figures pays them over and over, often
//! for identical cells. This crate keeps one process resident with a
//! shared [`pp_sweep::store::ResultStore`] (any backend: fs, mem, or
//! the compacting log) and serves cell results over a wire protocol
//! simple enough to drive with `curl`:
//!
//! * **Transport** ([`http`]) — hand-rolled HTTP/1.1 over
//!   `std::net::TcpListener`; the build environment has no async
//!   runtime or HTTP crate, and doesn't need one for this shape.
//! * **Protocol** ([`proto`]) — JSONL cell specs in (the
//!   `CellSpec::from_json` wire schema), streamed JSONL events out:
//!   per-trial progress while a cell simulates, then a `result` line
//!   tagged with where the answer came from.
//! * **Coalescing** ([`coalesce`]) — identical concurrent requests
//!   execute once; late arrivals subscribe to the in-flight execution
//!   and receive the same bit-identical records.
//! * **Admission** ([`server`]) — a bounded queue in front of a fixed
//!   worker pool; overload answers `429` instead of queueing without
//!   bound. Graceful shutdown drains workers and flushes the store.
//! * **Telemetry** ([`telemetry`]) — `serve.*` series in the same
//!   global registry as `engine.*`/`sweep.*`, so one metrics export
//!   describes a whole serving session.
//! * **Client** ([`client`]) — the blocking client the `pp-serve-load`
//!   generator and the CI smoke test drive the server with.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod client;
pub mod coalesce;
pub mod http;
pub mod proto;
pub mod server;
pub mod telemetry;
