//! `pp-serve` — run the simulation service.
//!
//! ```text
//! pp-serve [--addr HOST:PORT] [--backend fs|mem|log] [--store PATH]
//!          [--queue N] [--workers N] [--metrics PATH] [--flight-dump PATH]
//! ```
//!
//! Backend selection: `--backend`/`--store` when given, otherwise the
//! `PP_STORE_BACKEND` environment convention the sweep CLI uses. Port
//! `0` binds a free port; the actual address is printed on startup
//! (machine-greppable `listening on` line). SIGTERM/SIGINT trigger the
//! same graceful shutdown as `POST /shutdown`: drain workers, flush
//! the store, optionally export metrics, and dump the flight recorder.
//!
//! `--flight-dump PATH` names where the flight-recorder NDJSON lands —
//! written on clean shutdown *and* by the panic hook, so a crashed or
//! killed server leaves its last spans behind. Without the flag the
//! dump goes to `PP_FLIGHT_DUMP` (if set) on panic only.

#![deny(unsafe_code)]

use std::process::ExitCode;

use pp_serve::server::{ServeConfig, Server};
use pp_serve::telemetry::serve_metrics;
use pp_sweep::store::ResultStore;

// The only unsafe in the whole binary lives in this module: one FFI
// declaration plus two calls to install it.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set from the signal handler; polled by a watcher thread.
    pub static TRIPPED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TRIPPED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // libc's signal(2); the handler slot is ABI-compatible with a
        // plain `extern "C" fn(i32)`. Declared by hand — the build
        // environment has no libc crate, and this is the only symbol
        // the service needs from it.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Install handlers for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        // SAFETY: `signal` is declared with the exact libc ABI
        // (`sighandler_t` is pointer-sized and a plain
        // `extern "C" fn(i32)` is a valid handler value), and `on_signal`
        // is async-signal-safe: its only effect is a store to a static
        // `AtomicBool`, which is a single atomic instruction — no
        // allocation, locking, or reentrant libc calls can occur in
        // handler context.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pp-serve [--addr HOST:PORT] [--backend fs|mem|log] [--store PATH] \
         [--queue N] [--workers N] [--metrics PATH] [--flight-dump PATH]"
    );
    std::process::exit(2)
}

struct Args {
    cfg: ServeConfig,
    backend: Option<String>,
    store_path: Option<String>,
    metrics: Option<String>,
    flight_dump: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: ServeConfig::default(),
        backend: None,
        store_path: None,
        metrics: None,
        flight_dump: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.cfg.addr = val("--addr"),
            "--backend" => args.backend = Some(val("--backend")),
            "--store" => args.store_path = Some(val("--store")),
            "--queue" => args.cfg.queue = val("--queue").parse().unwrap_or_else(|_| usage()),
            "--workers" => args.cfg.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--metrics" => args.metrics = Some(val("--metrics")),
            "--flight-dump" => args.flight_dump = Some(val("--flight-dump")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn open_store(args: &Args) -> std::io::Result<ResultStore> {
    let store_dir = || {
        args.store_path
            .clone()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| pp_analysis::config::results_dir().join("store"))
    };
    match args.backend.as_deref() {
        None if args.store_path.is_none() => ResultStore::from_env(),
        None | Some("fs") => Ok(ResultStore::at(store_dir())),
        Some("mem") => Ok(ResultStore::in_memory()),
        Some("log") => ResultStore::log_at(
            args.store_path
                .clone()
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| pp_analysis::config::results_dir().join("store.log")),
        ),
        Some(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unknown backend {other:?} (expected fs, mem, or log)"),
        )),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let store = match open_store(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pp-serve: cannot open store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = serve_metrics(); // register serve.* before any export
    if let Some(path) = args.flight_dump.as_deref() {
        pp_obs::set_dump_path(path);
    }
    // A panicking daemon still leaves its last recorded spans behind.
    pp_obs::install_panic_hook();

    let server = match Server::bind(args.cfg.clone(), store.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pp-serve: cannot bind {}: {e}", args.cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pp-serve: no local addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "pp-serve listening on http://{addr} (backend={} at {}, queue={}, workers={})",
        store.kind(),
        store.location(),
        args.cfg.queue,
        args.cfg.workers,
    );

    // Bridge SIGTERM/SIGINT onto the server's shutdown flag. The
    // handler itself only flips an atomic; this watcher does the rest.
    let flag = server.shutdown_flag();
    #[cfg(unix)]
    {
        sig::install();
        std::thread::spawn(move || loop {
            if sig::TRIPPED.load(std::sync::atomic::Ordering::SeqCst) {
                flag.trip();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    #[cfg(not(unix))]
    let _ = flag;

    match server.run() {
        Ok(summary) => {
            println!(
                "pp-serve: clean shutdown — {} handled, {} rejected, {} store flushed",
                summary.handled,
                summary.rejected,
                store.kind(),
            );
            if let Some(path) = args.metrics.as_deref() {
                if let Err(e) = pp_sweep::telemetry::write_metrics(std::path::Path::new(path)) {
                    eprintln!("pp-serve: metrics export failed: {e}");
                    return ExitCode::FAILURE;
                }
                println!("pp-serve: metrics written to {path}");
            }
            if args.flight_dump.is_some() {
                let path = pp_obs::default_dump_path();
                match pp_obs::recorder().dump_to(&path) {
                    Ok(()) => println!("pp-serve: flight recorder dumped to {}", path.display()),
                    Err(e) => {
                        eprintln!("pp-serve: flight dump failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pp-serve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
