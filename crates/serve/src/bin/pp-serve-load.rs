//! `pp-serve-load` — load generator and cache-behaviour checker for a
//! running `pp-serve`.
//!
//! ```text
//! pp-serve-load --addr HOST:PORT [--cells N] [--repeat R] [--threads C]
//!               [--k K] [--n POP] [--trials T] [--budget B] [--seed S]
//!               [--out BENCH_serve.json] [--ci]
//! ```
//!
//! Two phases against the same population of distinct cell specs
//! (distinct seeds, identical shape):
//!
//! * **cold** — every spec submitted once; the server has never seen
//!   them, so each one simulates.
//! * **warm** — the same specs submitted `--repeat` more times; every
//!   request should be a cache hit.
//!
//! The report (`BENCH_serve.json`) carries per-phase throughput and
//! latency percentiles plus the source tallies the server streamed
//! back — the warm/cold throughput ratio is the benchmark's headline
//! number. `--ci` additionally runs the coalescing check (two
//! concurrent submissions of one unseen spec must yield exactly one
//! `simulated` and one `coalesced`/`cache`) and the metrics check
//! (`GET /metrics` is a valid Prometheus exposition covering every
//! `serve.*` and core `engine.*` series), exiting nonzero if any
//! expectation fails.

#![forbid(unsafe_code)]

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use pp_serve::client;
use pp_sweep::json::Value;

struct Args {
    addr: String,
    cells: usize,
    repeat: usize,
    threads: usize,
    k: usize,
    n: usize,
    trials: usize,
    budget: u64,
    seed: u64,
    out: String,
    ci: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: String::new(),
            cells: 24,
            repeat: 3,
            threads: 8,
            k: 3,
            n: 256,
            trials: 20,
            budget: 50_000_000,
            seed: 9000,
            out: "BENCH_serve.json".into(),
            ci: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pp-serve-load --addr HOST:PORT [--cells N] [--repeat R] [--threads C] \
         [--k K] [--n POP] [--trials T] [--budget B] [--seed S] [--out PATH] [--ci]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--ci" {
            args.ci = true;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            usage();
        }
        let Some(v) = it.next() else { usage() };
        let bad = |name: &str| -> ! {
            eprintln!("bad value for {name}: {v:?}");
            usage()
        };
        match flag.as_str() {
            "--addr" => args.addr = v.clone(),
            "--out" => args.out = v.clone(),
            "--cells" => args.cells = v.parse().unwrap_or_else(|_| bad("--cells")),
            "--repeat" => args.repeat = v.parse().unwrap_or_else(|_| bad("--repeat")),
            "--threads" => args.threads = v.parse().unwrap_or_else(|_| bad("--threads")),
            "--k" => args.k = v.parse().unwrap_or_else(|_| bad("--k")),
            "--n" => args.n = v.parse().unwrap_or_else(|_| bad("--n")),
            "--trials" => args.trials = v.parse().unwrap_or_else(|_| bad("--trials")),
            "--budget" => args.budget = v.parse().unwrap_or_else(|_| bad("--budget")),
            "--seed" => args.seed = v.parse().unwrap_or_else(|_| bad("--seed")),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    args
}

fn spec_line(args: &Args, seed: u64) -> String {
    format!(
        "{{\"protocol\":\"ukp\",\"k\":{},\"n\":{},\"trials\":{},\"seed\":{seed},\"budget\":{}}}",
        args.k, args.n, args.trials, args.budget,
    )
}

/// Tallies from one phase of requests. Latency percentiles come from a
/// [`pp_telemetry::Histogram`] (log₂ buckets, interpolated within the
/// nearest-rank bucket) — the same estimator `GET /metrics` exposes, so
/// the load generator and a Prometheus scrape of the server agree on
/// what "p99" means. Bounded memory regardless of request count, and
/// recording is atomic, so no per-phase sort or sample vector.
#[derive(Default)]
struct Phase {
    requests: u64,
    wall_micros: u64,
    latency: pp_telemetry::Histogram,
    cache: u64,
    simulated: u64,
    coalesced: u64,
    errors: u64,
}

impl Phase {
    fn percentile(&self, p: u64) -> u64 {
        self.latency.quantile(p, 100).unwrap_or(0)
    }

    /// Requests per second ×100 (the report is integer-only JSON).
    fn rps_x100(&self) -> u64 {
        if self.wall_micros == 0 {
            return 0;
        }
        self.requests * 100_000_000 / self.wall_micros
    }

    fn to_json(&self) -> Value {
        Value::obj([
            ("requests", Value::U64(self.requests)),
            ("wall_micros", Value::U64(self.wall_micros)),
            ("rps_x100", Value::U64(self.rps_x100())),
            ("p50_micros", Value::U64(self.percentile(50))),
            ("p99_micros", Value::U64(self.percentile(99))),
            ("cache", Value::U64(self.cache)),
            ("simulated", Value::U64(self.simulated)),
            ("coalesced", Value::U64(self.coalesced)),
            ("errors", Value::U64(self.errors)),
        ])
    }
}

/// Submit every line once (one request per line), `threads` at a time.
fn run_phase(addr: SocketAddr, lines: &[String], threads: usize) -> Phase {
    let next = AtomicUsize::new(0);
    let out = Mutex::new(Phase::default());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(lines.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= lines.len() {
                    return;
                }
                let r0 = Instant::now();
                let resp = client::post_cells(addr, &lines[i], "");
                let micros = r0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                let mut ph = out.lock().unwrap();
                ph.requests += 1;
                ph.latency.record(micros);
                match resp.ok().filter(|r| r.status == 200) {
                    Some(resp) => match resp.events_of("done") {
                        Ok(done) if done.len() == 1 => {
                            let get = |k: &str| done[0].get(k).and_then(Value::as_u64).unwrap_or(0);
                            ph.cache += get("cache");
                            ph.simulated += get("simulated");
                            ph.coalesced += get("coalesced");
                            ph.errors += get("errors");
                        }
                        _ => ph.errors += 1,
                    },
                    None => ph.errors += 1,
                }
            });
        }
    });
    let mut phase = out.into_inner().unwrap();
    phase.wall_micros = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    phase
}

/// The `--ci` coalescing check: two concurrent submissions of one
/// never-seen spec must resolve to exactly one simulation, the other
/// answered by coalescing (or, if the first finished before the second
/// was admitted, by the store). Then a third submission must be a pure
/// cache hit. Returns the per-request sources for the report.
fn ci_coalesce_check(addr: SocketAddr, line: &str) -> Result<Vec<String>, String> {
    let barrier = Barrier::new(2);
    let sources: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let resp = client::post_cells(addr, line, "")
                        .map_err(|e| format!("request failed: {e}"))?;
                    if resp.status != 200 {
                        return Err(format!("status {}", resp.status));
                    }
                    let results = resp.events_of("result")?;
                    if results.len() != 1 {
                        return Err(format!("{} result events, expected 1", results.len()));
                    }
                    Ok(results[0]
                        .get("source")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;

    let simulated = sources.iter().filter(|s| *s == "simulated").count();
    let other = sources
        .iter()
        .filter(|s| *s == "coalesced" || *s == "cache")
        .count();
    if simulated != 1 || other != 1 {
        return Err(format!(
            "expected one simulated + one coalesced/cache, got {sources:?}"
        ));
    }

    let third = client::post_cells(addr, line, "").map_err(|e| format!("third request: {e}"))?;
    let results = third.events_of("result")?;
    let src = results
        .first()
        .and_then(|r| r.get("source"))
        .and_then(Value::as_str)
        .unwrap_or("?");
    if src != "cache" {
        return Err(format!("third submission was {src:?}, expected cache"));
    }
    let mut all = sources;
    all.push(src.to_string());
    Ok(all)
}

/// The `--ci` metrics check: `GET /metrics` must return a valid
/// Prometheus exposition with the right content type, covering every
/// `serve.*` series and the core `engine.*` counters.
fn ci_metrics_check(addr: SocketAddr) -> Result<(), String> {
    let resp = client::request(addr, "GET", "/metrics", "")
        .map_err(|e| format!("GET /metrics failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /metrics returned status {}", resp.status));
    }
    pp_telemetry::validate_exposition(&resp.body)
        .map_err(|e| format!("invalid Prometheus exposition: {e}"))?;
    let serve_series = [
        "serve.requests",
        "serve.requests.rejected",
        "serve.requests.bad",
        "serve.cells.requested",
        "serve.cells.cache_hits",
        "serve.cells.simulated",
        "serve.cells.coalesced",
        "serve.cells.errors",
        "serve.queue.depth",
        "serve.inflight",
        "serve.request.micros",
        "serve.cell.wait_micros",
    ];
    for name in serve_series
        .iter()
        .chain(pp_sweep::telemetry::CORE_ENGINE_COUNTERS)
    {
        let mangled = pp_telemetry::prom::mangle_name(name);
        if !resp
            .body
            .lines()
            .any(|l| l.starts_with(&format!("# TYPE {mangled} ")))
        {
            return Err(format!("exposition is missing series {name} ({mangled})"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let addr: SocketAddr = match args.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("pp-serve-load: cannot resolve {}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if !client::healthy(addr) {
        eprintln!("pp-serve-load: no healthy pp-serve at {addr}");
        return ExitCode::FAILURE;
    }

    let lines: Vec<String> = (0..args.cells)
        .map(|i| spec_line(&args, args.seed + i as u64))
        .collect();

    println!(
        "pp-serve-load: cold phase — {} cells (k={}, n={}, trials={}) over {} threads",
        args.cells, args.k, args.n, args.trials, args.threads,
    );
    let cold = run_phase(addr, &lines, args.threads);
    println!(
        "  cold: {} requests in {} ms, {} simulated, {} cache, {} errors",
        cold.requests,
        cold.wall_micros / 1000,
        cold.simulated,
        cold.cache,
        cold.errors,
    );

    let warm_lines: Vec<String> = (0..args.repeat).flat_map(|_| lines.clone()).collect();
    println!(
        "pp-serve-load: warm phase — same cells ×{} repeats",
        args.repeat
    );
    let warm = run_phase(addr, &warm_lines, args.threads);
    println!(
        "  warm: {} requests in {} ms, {} cache hits, {} errors",
        warm.requests,
        warm.wall_micros / 1000,
        warm.cache,
        warm.errors,
    );

    let speedup_pct = if cold.rps_x100() > 0 {
        warm.rps_x100() * 100 / cold.rps_x100()
    } else {
        0
    };
    let warm_total = warm.cache + warm.simulated + warm.coalesced + warm.errors;
    let hit_pct = (warm.cache * 100).checked_div(warm_total).unwrap_or(0);
    println!(
        "pp-serve-load: warm/cold throughput = {}.{:02}x, warm cache-hit ratio {hit_pct}%",
        speedup_pct / 100,
        speedup_pct % 100,
    );

    // --ci: the coalescing contract, on a spec neither phase used. The
    // check spec is deliberately heavier than the load specs (4x the
    // population, 2x the trials) so that the two barrier-synchronised
    // requests reliably overlap in flight rather than racing past each
    // other on a cell that simulates in microseconds.
    let mut ci_sources = Vec::new();
    let mut failed = false;
    if args.ci {
        let fresh = format!(
            "{{\"protocol\":\"ukp\",\"k\":{},\"n\":{},\"trials\":{},\"seed\":{},\"budget\":{}}}",
            args.k,
            args.n * 4,
            args.trials * 2,
            args.seed + args.cells as u64 + 1_000_003,
            args.budget,
        );
        match ci_coalesce_check(addr, &fresh) {
            Ok(sources) => {
                println!("pp-serve-load: coalescing check ok — sources {sources:?}");
                ci_sources = sources;
            }
            Err(e) => {
                eprintln!("pp-serve-load: coalescing check FAILED: {e}");
                failed = true;
            }
        }
        match ci_metrics_check(addr) {
            Ok(()) => println!("pp-serve-load: /metrics exposition check ok"),
            Err(e) => {
                eprintln!("pp-serve-load: /metrics check FAILED: {e}");
                failed = true;
            }
        }
        if cold.errors + warm.errors > 0 {
            eprintln!("pp-serve-load: FAILED — errors during load phases");
            failed = true;
        }
        if warm_total > 0 && warm.cache != warm_total {
            eprintln!(
                "pp-serve-load: FAILED — warm phase had {} non-cache responses",
                warm_total - warm.cache
            );
            failed = true;
        }
    }

    let report = Value::obj([
        (
            "config",
            Value::obj([
                ("cells", Value::U64(args.cells as u64)),
                ("repeat", Value::U64(args.repeat as u64)),
                ("threads", Value::U64(args.threads as u64)),
                ("k", Value::U64(args.k as u64)),
                ("n", Value::U64(args.n as u64)),
                ("trials", Value::U64(args.trials as u64)),
                ("budget", Value::U64(args.budget)),
                ("seed", Value::U64(args.seed)),
            ]),
        ),
        ("cold", cold.to_json()),
        ("warm", warm.to_json()),
        ("warm_over_cold_speedup_pct", Value::U64(speedup_pct)),
        ("warm_cache_hit_pct", Value::U64(hit_pct)),
        (
            "ci_sources",
            Value::Arr(ci_sources.into_iter().map(Value::Str).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, report.encode() + "\n") {
        eprintln!("pp-serve-load: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("pp-serve-load: report written to {}", args.out);

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
