//! Blocking HTTP client for the service's own wire format.
//!
//! Backs `pp-serve-load`, the e2e tests, and the CI smoke job — all of
//! which need exactly "send one request, read the whole streamed
//! response". One request per connection (the server always answers
//! `Connection: close`), body read to EOF when no `Content-Length` is
//! present.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pp_sweep::json::Value;

/// A fully-read response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Entire body (for streamed responses: every line, post-hoc).
    pub body: String,
}

impl Response {
    /// Parse a JSONL body into values, skipping blank lines.
    pub fn events(&self) -> Result<Vec<Value>, String> {
        self.body
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| Value::parse(l).map_err(|e| format!("bad event line {l:?}: {e}")))
            .collect()
    }

    /// Events with this `"event"` tag.
    pub fn events_of(&self, kind: &str) -> Result<Vec<Value>, String> {
        Ok(self
            .events()?
            .into_iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some(kind))
            .collect())
    }
}

/// Send one request and read the response to EOF.
pub fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()?;

    // Read to EOF by hand: an error after data already arrived (e.g. a
    // reset racing the final bytes) ends the stream instead of losing
    // what we have.
    let mut bytes = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&buf[..n]),
            Err(e) if bytes.is_empty() => return Err(e),
            Err(_) => break,
        }
    }
    let raw = String::from_utf8_lossy(&bytes).into_owned();
    let Some((head, rest)) = raw.split_once("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no header/body separator in response {raw:?}"),
        ));
    };
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line in {head:?}"),
            )
        })?;
    // With Content-Length the body may be followed by nothing anyway
    // (connection: close), so read-to-EOF already captured it exactly.
    Ok(Response {
        status,
        body: rest.to_string(),
    })
}

/// `POST /cells` with a JSONL spec body; `query` like `"records=1"`.
pub fn post_cells(addr: SocketAddr, specs_jsonl: &str, query: &str) -> io::Result<Response> {
    let target = if query.is_empty() {
        "/cells".to_string()
    } else {
        format!("/cells?{query}")
    };
    request(addr, "POST", &target, specs_jsonl)
}

/// `GET /healthz`, true when the server answers ok.
pub fn healthy(addr: SocketAddr) -> bool {
    request(addr, "GET", "/healthz", "")
        .map(|r| r.status == 200)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_event_parsing_filters_by_kind() {
        let r = Response {
            status: 200,
            body: "{\"event\":\"accepted\",\"cells\":1}\n\n{\"event\":\"done\",\"total\":1}\n"
                .into(),
        };
        assert_eq!(r.events().unwrap().len(), 2);
        let done = r.events_of("done").unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].get("total").unwrap().as_u64(), Some(1));
        let bad = Response {
            status: 200,
            body: "not json\n".into(),
        };
        assert!(bad.events().is_err());
    }
}
