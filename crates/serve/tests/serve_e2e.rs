//! End-to-end service tests: a real `Server` on a loopback port, the
//! real blocking client, in-memory (and log) store backends.

use std::net::SocketAddr;
use std::sync::Barrier;
use std::thread::JoinHandle;

use pp_serve::client;
use pp_serve::server::{ServeConfig, ServeSummary, Server};
use pp_sweep::json::Value;
use pp_sweep::spec::CellSpec;
use pp_sweep::store::ResultStore;

fn spec_line(seed: u64, n: usize, trials: usize) -> String {
    format!(
        "{{\"protocol\":\"ukp\",\"k\":3,\"n\":{n},\"trials\":{trials},\"seed\":{seed},\"budget\":10000000}}"
    )
}

fn start(cfg: ServeConfig, store: ResultStore) -> (SocketAddr, JoinHandle<ServeSummary>) {
    let server = Server::bind(cfg, store).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    // The accept loop is live as soon as bind returns; prove it anyway.
    assert!(client::healthy(addr), "server not healthy after bind");
    (addr, handle)
}

fn start_mem() -> (SocketAddr, JoinHandle<ServeSummary>) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    start(cfg, ResultStore::in_memory())
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<ServeSummary>) -> ServeSummary {
    let resp = client::request(addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    handle.join().unwrap()
}

#[test]
fn simulate_then_cache_with_streamed_events() {
    let (addr, handle) = start_mem();
    let line = spec_line(100, 16, 3);

    let first = client::post_cells(addr, &line, "records=1").unwrap();
    assert_eq!(first.status, 200);
    let accepted = first.events_of("accepted").unwrap();
    assert_eq!(accepted[0].get("cells").unwrap().as_u64(), Some(1));
    // Per-trial progress streamed before the result.
    let trials = first.events_of("trial").unwrap();
    assert_eq!(trials.len(), 3);
    let results = first.events_of("result").unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].get("source").unwrap().as_str(),
        Some("simulated")
    );
    let records = results[0]
        .get("records")
        .unwrap()
        .as_arr()
        .unwrap()
        .to_vec();
    assert_eq!(records.len(), 3);
    let done = first.events_of("done").unwrap();
    assert_eq!(done[0].get("simulated").unwrap().as_u64(), Some(1));

    // Same spec again: a cache hit with bit-identical records, and no
    // trial progress (nothing simulates).
    let second = client::post_cells(addr, &line, "records=1").unwrap();
    let results2 = second.events_of("result").unwrap();
    assert_eq!(results2[0].get("source").unwrap().as_str(), Some("cache"));
    assert_eq!(
        results2[0]
            .get("records")
            .unwrap()
            .as_arr()
            .unwrap()
            .to_vec(),
        records
    );
    assert!(second.events_of("trial").unwrap().is_empty());

    let summary = shutdown(addr, handle);
    assert!(summary.handled >= 3);
    assert_eq!(summary.rejected, 0);
}

#[test]
fn within_request_duplicates_dedupe_and_batches_resolve() {
    let (addr, handle) = start_mem();
    let body = format!(
        "{}\n{}\n{}\n",
        spec_line(200, 16, 2),
        spec_line(200, 16, 2), // duplicate line
        spec_line(201, 16, 2),
    );
    let resp = client::post_cells(addr, &body, "").unwrap();
    let accepted = resp.events_of("accepted").unwrap();
    assert_eq!(accepted[0].get("cells").unwrap().as_u64(), Some(2));
    assert_eq!(accepted[0].get("deduped").unwrap().as_u64(), Some(1));
    let done = resp.events_of("done").unwrap();
    assert_eq!(done[0].get("total").unwrap().as_u64(), Some(2));
    assert_eq!(done[0].get("errors").unwrap().as_u64(), Some(0));
    shutdown(addr, handle);
}

#[test]
fn concurrent_identical_requests_coalesce() {
    let (addr, handle) = start_mem();
    // Big enough to overlap across two client threads.
    let line = spec_line(300, 128, 5);
    let barrier = Barrier::new(2);
    let sources: Vec<(String, Vec<Value>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let resp = client::post_cells(addr, &line, "records=1").unwrap();
                    assert_eq!(resp.status, 200);
                    let results = resp.events_of("result").unwrap();
                    assert_eq!(results.len(), 1);
                    let source = results[0]
                        .get("source")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string();
                    let records = results[0]
                        .get("records")
                        .unwrap()
                        .as_arr()
                        .unwrap()
                        .to_vec();
                    (source, records)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one execution; the other request coalesced onto it (or,
    // if scheduling kept them disjoint, read the store). Either way the
    // records are bit-identical.
    let simulated = sources.iter().filter(|(s, _)| s == "simulated").count();
    assert!(simulated <= 1, "duplicate execution: {sources:?}");
    assert_eq!(sources[0].1, sources[1].1, "records differ across clients");
    for (s, _) in &sources {
        assert!(
            s == "simulated" || s == "coalesced" || s == "cache",
            "unexpected source {s}"
        );
    }
    shutdown(addr, handle);
}

#[test]
fn admission_control_rejects_when_queue_full() {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue: 1,
        workers: 1,
    };
    let server = Server::bind(cfg, ResultStore::in_memory()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());

    // Pin the only worker with a held request, fill the queue with a
    // second, then watch the next connection bounce.
    let line = spec_line(400, 16, 1);
    let held: Vec<JoinHandle<u16>> = (0..2)
        .map(|_| {
            let line = line.clone();
            let h = std::thread::spawn(move || {
                client::post_cells(addr, &line, "hold_ms=1500")
                    .unwrap()
                    .status
            });
            std::thread::sleep(std::time::Duration::from_millis(250));
            h
        })
        .collect();

    let bounced = client::request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(bounced.status, 429, "expected admission rejection");
    assert!(bounced.body.contains("queue full"));

    for h in held {
        assert_eq!(h.join().unwrap(), 200, "held requests still complete");
    }
    let summary = shutdown(addr, handle);
    assert!(summary.rejected >= 1);
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let (addr, handle) = start_mem();
    let bad_body = client::post_cells(addr, "this is not json\n", "").unwrap();
    assert_eq!(bad_body.status, 400);
    assert!(bad_body.body.contains("line 1"));

    let bad_spec = client::post_cells(addr, "{\"protocol\":\"ukp\"}\n", "").unwrap();
    assert_eq!(bad_spec.status, 400);

    let missing = client::request(addr, "GET", "/nope", "").unwrap();
    assert_eq!(missing.status, 404);

    let wrong_method = client::request(addr, "GET", "/cells", "").unwrap();
    assert_eq!(wrong_method.status, 405);
    shutdown(addr, handle);
}

#[test]
fn stats_reports_backend_and_tallies() {
    let (addr, handle) = start_mem();
    let _ = client::post_cells(addr, &spec_line(500, 16, 2), "").unwrap();
    let stats = client::request(addr, "GET", "/stats", "").unwrap();
    assert_eq!(stats.status, 200);
    let v = Value::parse(&stats.body).unwrap();
    let store = v.get("store").unwrap();
    assert_eq!(store.get("backend").unwrap().as_str(), Some("mem"));
    assert_eq!(store.get("cells").unwrap().as_u64(), Some(1));
    let serve = v.get("serve").unwrap();
    assert!(serve.get("requests").unwrap().as_u64().unwrap() >= 2);
    shutdown(addr, handle);
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let (addr, handle) = start_mem();
    // Drive one simulated cell so the counters have non-trivial values.
    let _ = client::post_cells(addr, &spec_line(700, 16, 2), "").unwrap();

    let resp = client::request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(resp.status, 200);
    pp_telemetry::validate_exposition(&resp.body).expect("valid Prometheus exposition");
    // Every layer's schema is present even where counters are zero.
    for series in [
        "serve_requests",
        "serve_cells_requested",
        "serve_request_micros",
        "engine_runs",
        "engine_interactions",
        "engine_effective_interactions",
        "engine_leap_batches",
        "engine_batch_fallbacks",
        "sweep_export_key_version",
        "obs_span_micros",
    ] {
        assert!(
            resp.body
                .lines()
                .any(|l| l.starts_with(&format!("# TYPE {series} "))),
            "missing series {series} in exposition"
        );
    }
    // Histograms expose cumulative buckets with _sum/_count.
    assert!(resp
        .body
        .contains("serve_request_micros_bucket{le=\"+Inf\"}"));
    assert!(resp.body.contains("serve_request_micros_count"));
    shutdown(addr, handle);
}

#[test]
fn flight_endpoint_exposes_the_request_span_tree() {
    let (addr, handle) = start_mem();
    let resp = client::post_cells(addr, &spec_line(800, 16, 2), "").unwrap();
    assert_eq!(resp.status, 200);
    let accepted = resp.events_of("accepted").unwrap();
    let root = accepted[0].get("span").unwrap().as_u64().unwrap();
    assert!(root > 0, "accepted event must echo the request span id");

    let flight = client::request(addr, "GET", "/flight", "").unwrap();
    assert_eq!(flight.status, 200);
    let records: Vec<Value> = flight
        .body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Value::parse(l).expect("flight line parses"))
        .collect();
    assert!(!records.is_empty(), "flight recorder should not be empty");

    // Reconstruct this request's span tree from the dump: the root plus
    // every span reachable from it.
    let opens: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("span_open"))
        .collect();
    let mut tree: std::collections::HashSet<u64> = std::collections::HashSet::from([root]);
    // Span ids increase monotonically and parents open before children,
    // so one forward pass reaches the whole tree.
    for open in &opens {
        let id = open.get("id").unwrap().as_u64().unwrap();
        let parent = open.get("parent").unwrap().as_u64().unwrap();
        if tree.contains(&parent) {
            tree.insert(id);
        }
    }
    assert!(
        tree.len() >= 4,
        "expected a request span tree of at least 4 spans, got {tree:?}"
    );
    let name_of = |id: u64| {
        opens
            .iter()
            .find(|o| o.get("id").unwrap().as_u64() == Some(id))
            .and_then(|o| o.get("name").and_then(Value::as_str))
            .unwrap_or("")
            .to_string()
    };
    let names: std::collections::HashSet<String> = tree.iter().map(|&id| name_of(id)).collect();
    for expected in [
        "serve.request",
        "serve.admission",
        "serve.cell",
        "serve.simulate",
    ] {
        assert!(
            names.contains(expected),
            "span {expected} missing from {names:?}"
        );
    }
    // The cell span carries its stem as the label.
    let cell_open = opens
        .iter()
        .find(|o| {
            o.get("name").and_then(Value::as_str) == Some("serve.cell")
                && tree.contains(&o.get("id").unwrap().as_u64().unwrap())
        })
        .expect("cell span recorded");
    let label = cell_open.get("label").and_then(Value::as_str).unwrap_or("");
    assert!(
        label.contains("ukp"),
        "cell span label {label:?} should be the stem"
    );
    shutdown(addr, handle);
}

#[test]
fn log_backend_survives_shutdown_and_serves_reopen() {
    let path = std::env::temp_dir().join(format!("pp_serve_e2e_log_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(cfg, ResultStore::log_at(path.clone()).unwrap());
    let line = spec_line(600, 16, 2);
    let first = client::post_cells(addr, &line, "").unwrap();
    assert_eq!(
        first.events_of("result").unwrap()[0]
            .get("source")
            .unwrap()
            .as_str(),
        Some("simulated")
    );
    shutdown(addr, handle);

    // The shutdown path flushed the journal; a fresh process (here: a
    // fresh backend over the same file) serves the cell from cache.
    let reopened = ResultStore::log_at(path.clone()).unwrap();
    let spec = CellSpec::from_json(&Value::parse(&line).unwrap()).unwrap();
    let cached = reopened
        .load(&spec)
        .expect("cell persisted across shutdown");
    assert_eq!(cached.records.len(), 2);
    let _ = std::fs::remove_file(&path);
}
