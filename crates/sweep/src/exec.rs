//! Cell execution: cache check → journal recovery → simulate the missing
//! trials → atomically promote to the store.
//!
//! Determinism contract: trial `i` of a cell always runs with seed
//! `seeds::derive(spec.seed, i)` (trajectory cells use `spec.seed`
//! directly, matching the legacy single-run binaries), independent of
//! which trials already exist in the journal and of scheduling. A cell
//! resumed after a crash therefore produces the same records, bit for
//! bit, as an uninterrupted run — the property the
//! `resume_equals_fresh` proptest pins down.

use pp_engine::observer::TrajectorySampler;
use pp_engine::population::CountPopulation;
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::seeds;
use pp_engine::simulator::{RunError, Simulator};

use crate::observer::SweepObserver;
use crate::spec::{CellMode, CellSpec, MaterializedCell};
use crate::store::{CellResult, ResultStore, TrialRecord};
use crate::telemetry::{record_cell, sweep_metrics, CellAccounting};

/// Knobs for [`run_cell`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Test hook: stop after journaling this many *new* trials, leaving
    /// the cell incomplete — simulates a crash at an arbitrary point
    /// without process gymnastics. `None` runs to completion.
    pub kill_after: Option<usize>,
}

/// What [`run_cell`] produced.
#[derive(Debug)]
pub enum CellOutcome {
    /// The cell is complete (from cache, journal recovery, fresh
    /// simulation, or any mix).
    Complete(CellResult),
    /// `kill_after` fired; the journal holds `journaled` of the cell's
    /// trials.
    Interrupted {
        /// Trials now present in the journal.
        journaled: usize,
    },
}

impl CellOutcome {
    /// Unwrap the completed result.
    ///
    /// # Panics
    /// If the cell was interrupted.
    pub fn expect_complete(self) -> CellResult {
        match self {
            CellOutcome::Complete(r) => r,
            CellOutcome::Interrupted { journaled } => {
                panic!("cell interrupted after {journaled} journaled trials")
            }
        }
    }
}

/// Run one trial of a materialized cell. Pure in `(spec, trial)` — this
/// is the replayable unit the journal checkpoints.
pub fn run_one_trial(spec: &CellSpec, cell: &MaterializedCell, trial: u64) -> TrialRecord {
    let seed = match spec.mode {
        // Trajectory cells are single seeded runs; the legacy binary fed
        // the scheduler its seed undirected, so keep that byte-for-byte.
        CellMode::Trajectory { .. } => spec.seed,
        _ => seeds::derive(spec.seed, trial),
    };
    if !spec.dynamics.is_default() {
        return run_dynamics_trial(spec, cell, trial, seed);
    }
    let kernel = spec.kernel.runner_kernel();
    match spec.mode {
        CellMode::Summary => TrialRecord::summary(
            trial,
            pp_analysis::runner::run_trial_kernel(
                &cell.proto,
                spec.n,
                &cell.criterion,
                seed,
                spec.budget,
                kernel,
            ),
        ),
        CellMode::Watched => {
            let w = pp_analysis::runner::run_trial_watching_kernel(
                &cell.proto,
                spec.n,
                &cell.criterion,
                spec.watched_state(),
                seed,
                spec.budget,
                kernel,
            );
            TrialRecord {
                trial,
                interactions: w.total,
                completions: Some(w.completions),
                final_counts: None,
                samples: None,
            }
        }
        CellMode::Full => {
            let o = pp_analysis::runner::run_trial_full_kernel(
                &cell.proto,
                spec.n,
                &cell.criterion,
                seed,
                spec.budget,
                kernel,
            );
            TrialRecord {
                trial,
                interactions: o.interactions,
                completions: None,
                final_counts: Some(o.final_counts),
                samples: None,
            }
        }
        CellMode::Trajectory { sample_every } => {
            // TrajectorySampler now reconstructs identity runs in closed
            // form and works on either kernel, but `KernelChoice::auto_for`
            // still pins trajectory cells to Naive so cached trajectory
            // results (keyed on the kernel) keep reproducing bit for bit.
            debug_assert_eq!(kernel, pp_analysis::runner::Kernel::Naive);
            let mut pop = CountPopulation::new(&cell.proto, spec.n);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            let mut sampler = TrajectorySampler::every(sample_every);
            let res = Simulator::new(&cell.proto).run_observed(
                &mut pop,
                &mut sched,
                &cell.criterion,
                spec.budget,
                &mut sampler,
            );
            let interactions = match res {
                Ok(r) => Some(r.interactions),
                Err(RunError::InteractionLimit { .. }) => None,
                Err(e) => panic!("trajectory trial failed: {e}"),
            };
            let samples = sampler
                .samples()
                .iter()
                .map(|(t, counts)| {
                    let mut row = Vec::with_capacity(1 + counts.len());
                    row.push(*t);
                    row.extend_from_slice(counts);
                    row
                })
                .collect();
            TrialRecord {
                trial,
                interactions,
                completions: None,
                final_counts: None,
                samples: Some(samples),
            }
        }
    }
}

/// Run one trial under non-default dynamics: the general topology /
/// scheduler / churn loop in `pp_topo` (always the naive kernel —
/// [`CellSpec::validate_dynamics`] rejects any other before we get
/// here). `Summary` records interactions-to-stability; `Full` also keeps
/// the final configuration, whose total reflects net churn.
fn run_dynamics_trial(
    spec: &CellSpec,
    cell: &MaterializedCell,
    trial: u64,
    seed: u64,
) -> TrialRecord {
    let outcome = pp_topo::run_dynamics(
        &cell.proto,
        spec.n as usize,
        &spec.dynamics,
        &cell.criterion,
        spec.budget,
        seed,
        &mut pp_engine::observer::NullObserver,
    )
    .unwrap_or_else(|e| panic!("dynamics trial {trial} of {} failed: {e}", spec.file_stem()));
    TrialRecord {
        trial,
        interactions: outcome.interactions,
        completions: None,
        final_counts: matches!(spec.mode, CellMode::Full).then_some(outcome.final_counts),
        samples: None,
    }
}

/// Execute a cell against the store: return the cached result if
/// complete, otherwise recover the journal, simulate the missing trials
/// (in parallel), journal each as it lands, and promote the finished set
/// to the store atomically.
///
/// Rejects specs whose dynamics block is invalid or whose kernel cannot
/// run it (e.g. the batch kernel on a non-complete topology) with
/// `InvalidInput` before any trial is simulated.
pub fn run_cell(
    spec: &CellSpec,
    store: &ResultStore,
    obs: &dyn SweepObserver,
    opts: &ExecOptions,
) -> std::io::Result<CellOutcome> {
    if let Err(msg) = spec.validate_dynamics() {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg));
    }
    let started = std::time::Instant::now();
    let elapsed_micros =
        |s: &std::time::Instant| s.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    if let Some(cached) = store.load(spec) {
        record_cell(&CellAccounting {
            file_stem: &spec.file_stem(),
            cache_hit: true,
            wall_micros: elapsed_micros(&started),
            trials: cached.records.len() as u64,
            recovered: 0,
            censored: cached.censored() as u64,
            interactions: cached.interactions().iter().sum(),
        });
        obs.cell_finished(spec, true, 0);
        return Ok(CellOutcome::Complete(cached));
    }

    let journal_state = store.journal_state(spec);
    sweep_metrics()
        .journal_discarded_lines
        .add(journal_state.discarded_lines as u64);
    let mut records = journal_state.records;
    records.retain(|&t, _| t < spec.trials as u64);
    let recovered = records.len();
    sweep_metrics().trials_recovered.add(recovered as u64);
    let missing: Vec<u64> = (0..spec.trials as u64)
        .filter(|t| !records.contains_key(t))
        .collect();
    obs.cell_started(spec, recovered);

    let to_run: &[u64] = match opts.kill_after {
        Some(m) => &missing[..m.min(missing.len())],
        None => &missing,
    };

    if !to_run.is_empty() {
        let cell = spec.materialize();
        let writer = store.journal_sink(spec)?;
        let io_err = std::sync::Mutex::new(None::<std::io::Error>);
        let fresh: Vec<TrialRecord> = {
            use rayon::prelude::*;
            to_run
                .to_vec()
                .into_par_iter()
                .map(|t| {
                    let rec = run_one_trial(spec, &cell, t);
                    if let Err(e) = writer.append(&rec) {
                        io_err.lock().unwrap().get_or_insert(e);
                    }
                    let m = sweep_metrics();
                    m.trials_simulated.inc();
                    if rec.interactions.is_none() {
                        m.trials_censored.inc();
                    }
                    obs.trial_finished(spec, rec.interactions.is_none());
                    rec
                })
                .collect()
        };
        if let Some(e) = io_err.into_inner().unwrap() {
            return Err(e);
        }
        for rec in fresh {
            records.insert(rec.trial, rec);
        }
    }

    if records.len() < spec.trials {
        // kill_after fired (the only way to get here): leave the journal
        // in place for the next attempt.
        return Ok(CellOutcome::Interrupted {
            journaled: records.len(),
        });
    }

    let sorted: Vec<TrialRecord> = records.into_values().collect();
    let result = store.save(spec, sorted)?;
    record_cell(&CellAccounting {
        file_stem: &spec.file_stem(),
        cache_hit: false,
        wall_micros: elapsed_micros(&started),
        trials: result.records.len() as u64,
        recovered: recovered as u64,
        censored: result.censored() as u64,
        interactions: result.interactions().iter().sum(),
    });
    obs.cell_finished(spec, false, recovered);
    Ok(CellOutcome::Complete(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{CountingObserver, NullObserver};
    use crate::spec::{CriterionKind, ProtocolId};
    use std::sync::atomic::Ordering;

    // Execution semantics are backend-independent; the unit tests run on
    // the in-memory backend (no tempdir churn), while the conformance
    // suite in tests/backend_conformance.rs covers fs and log.
    fn temp_store(_tag: &str) -> ResultStore {
        ResultStore::in_memory()
    }

    fn spec(mode: CellMode) -> CellSpec {
        let kernel = crate::spec::KernelChoice::auto_for(mode);
        CellSpec {
            protocol: ProtocolId::UniformKPartition { k: 3 },
            n: 12,
            trials: 6,
            seed: 41,
            criterion: CriterionKind::Stable,
            budget: 10_000_000,
            mode,
            kernel,
            dynamics: pp_topo::Dynamics::default_dynamics(),
        }
    }

    #[test]
    fn fresh_run_then_cache_hit() {
        let store = temp_store("cache");
        let obs = CountingObserver::default();
        let s = spec(CellMode::Summary);
        let r1 = run_cell(&s, &store, &obs, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(obs.trials.load(Ordering::Relaxed), 6);
        assert_eq!(obs.cache_hits.load(Ordering::Relaxed), 0);
        assert_eq!(r1.records.len(), 6);
        assert_eq!(r1.censored(), 0);
        // Journal was promoted away.
        assert!(!store.has_journal(&s));

        let r2 = run_cell(&s, &store, &obs, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(obs.trials.load(Ordering::Relaxed), 6, "no re-simulation");
        assert_eq!(obs.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(r1.records, r2.records);
    }

    #[test]
    fn interrupted_then_resumed_equals_fresh() {
        let store_a = temp_store("resume_a");
        let store_b = temp_store("resume_b");
        let s = spec(CellMode::Summary);
        let fresh = run_cell(&s, &store_a, &NullObserver, &ExecOptions::default())
            .unwrap()
            .expect_complete();

        // Kill after 2 trials, then resume.
        let obs = CountingObserver::default();
        match run_cell(
            &s,
            &store_b,
            &obs,
            &ExecOptions {
                kill_after: Some(2),
            },
        )
        .unwrap()
        {
            CellOutcome::Interrupted { journaled } => assert_eq!(journaled, 2),
            other => panic!("expected interruption, got {other:?}"),
        }
        let resumed = run_cell(&s, &store_b, &obs, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(
            obs.trials.load(Ordering::Relaxed),
            6,
            "2 killed + 4 resumed"
        );
        assert_eq!(obs.recovered.load(Ordering::Relaxed), 2);
        assert_eq!(fresh.records, resumed.records);
    }

    #[test]
    fn watched_and_full_modes_record_extras() {
        let store = temp_store("modes");
        let w = run_cell(
            &spec(CellMode::Watched),
            &store,
            &NullObserver,
            &ExecOptions::default(),
        )
        .unwrap()
        .expect_complete();
        // n = 12, k = 3: g_3 count reaches n/k · … — completions non-empty
        // and monotone.
        for t in w.watched() {
            assert!(!t.completions.is_empty());
            assert!(t.completions.windows(2).all(|p| p[0] <= p[1]));
        }
        let f = run_cell(
            &spec(CellMode::Full),
            &store,
            &NullObserver,
            &ExecOptions::default(),
        )
        .unwrap()
        .expect_complete();
        for o in f.outcomes() {
            assert_eq!(o.final_counts.iter().sum::<u64>(), 12);
        }
    }

    #[test]
    fn trajectory_mode_samples_counts() {
        let store = temp_store("traj");
        let s = CellSpec {
            trials: 1,
            ..spec(CellMode::Trajectory { sample_every: 64 })
        };
        let r = run_cell(&s, &store, &NullObserver, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        let rec = &r.records[0];
        let samples = rec.samples.as_ref().unwrap();
        assert!(!samples.is_empty());
        let num_states = s.materialize().proto.num_states();
        for row in samples {
            assert_eq!(row.len(), 1 + num_states);
            assert_eq!(row[1..].iter().sum::<u64>(), 12);
        }
    }

    fn dyn_spec(fragment: &str, mode: CellMode) -> CellSpec {
        CellSpec {
            kernel: crate::spec::KernelChoice::Naive,
            dynamics: pp_topo::Dynamics::parse(fragment).unwrap(),
            // Sparse-topology trials may never stabilise; a small budget
            // keeps the censored path fast in debug builds.
            budget: 200_000,
            ..spec(mode)
        }
    }

    #[test]
    fn dynamics_cell_runs_end_to_end_and_caches() {
        let store = temp_store("dyn");
        let obs = CountingObserver::default();
        // Ring + net-positive churn, full capture: final counts must sum
        // to n plus net churn for every trial that ran.
        let s = dyn_spec("ring;uniform;j2.l1.c0.p50", CellMode::Full);
        let r1 = run_cell(&s, &store, &obs, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(r1.records.len(), 6);
        for rec in &r1.records {
            let counts = rec.final_counts.as_ref().unwrap();
            assert_eq!(counts.iter().sum::<u64>(), s.target_n());
        }
        // Deterministic and cached: a second run is a pure hit.
        let r2 = run_cell(&s, &store, &obs, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(obs.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(r1.records, r2.records);
    }

    #[test]
    fn dynamics_cell_resumes_deterministically() {
        // The journal/resume contract holds under dynamics too: kill
        // mid-cell, resume, compare against an uninterrupted run.
        let s = dyn_spec("rr:d=4;adversarial;j1.l1.c1.p40", CellMode::Summary);
        let fresh = run_cell(
            &s,
            &temp_store("dynfresh"),
            &NullObserver,
            &ExecOptions::default(),
        )
        .unwrap()
        .expect_complete();
        let store = temp_store("dynresume");
        match run_cell(
            &s,
            &store,
            &NullObserver,
            &ExecOptions {
                kill_after: Some(3),
            },
        )
        .unwrap()
        {
            CellOutcome::Interrupted { journaled } => assert_eq!(journaled, 3),
            other => panic!("expected interruption, got {other:?}"),
        }
        let resumed = run_cell(&s, &store, &NullObserver, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(fresh.records, resumed.records);
    }

    #[test]
    fn invalid_dynamics_rejected_before_any_trial() {
        let store = temp_store("dynbad");
        let obs = CountingObserver::default();
        // Batch kernel on a ring: the typed pp_topo refusal surfaces as
        // InvalidInput, and no trial is simulated.
        let s = CellSpec {
            kernel: crate::spec::KernelChoice::Batch,
            ..dyn_spec("ring;uniform;j0.l0.c0.p0", CellMode::Summary)
        };
        let err = run_cell(&s, &store, &obs, &ExecOptions::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("batch"), "{err}");
        assert_eq!(obs.trials.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn matches_legacy_runner_output() {
        // The sweep path must reproduce pp_analysis::runner bit for bit —
        // this is what makes migrating the figure binaries lossless.
        let store = temp_store("legacy");
        let s = spec(CellMode::Summary);
        let r = run_cell(&s, &store, &NullObserver, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        let kp = pp_protocols::kpartition::UniformKPartition::new(3);
        let batch = pp_analysis::runner::run_trials(
            &kp.compile(),
            12,
            &kp.stable_signature(12),
            pp_analysis::runner::TrialConfig {
                trials: 6,
                master_seed: 41,
                max_interactions: 10_000_000,
            },
        );
        assert_eq!(r.interactions(), batch.interactions);
        assert_eq!(r.censored(), batch.censored);
    }
}
