//! Sweep-level progress instrumentation.
//!
//! Modeled on `pp_engine::observer`: the executor stays measurement-free
//! and calls into a [`SweepObserver`] at cell/trial granularity; the
//! observer decides what to do with the events. [`ConsoleProgress`]
//! renders a live line to stderr (stdout is reserved for report tables,
//! so piping `pp-sweep run fig3 > fig3.log` captures clean output);
//! [`NullObserver`] is for tests and embedding.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::spec::CellSpec;

/// Receiver of sweep progress events. Methods default to no-ops so
/// observers implement only what they need. Called concurrently from
/// worker threads, hence `Sync` and `&self`.
pub trait SweepObserver: Sync {
    /// A run over `total_cells` cells comprising `total_trials` trials
    /// is starting.
    fn run_started(&self, total_cells: usize, total_trials: u64) {
        let _ = (total_cells, total_trials);
    }

    /// A cell is starting; `already_done` trials were recovered from its
    /// journal (resume) — they will not be re-run.
    fn cell_started(&self, spec: &CellSpec, already_done: usize) {
        let _ = (spec, already_done);
    }

    /// One trial finished (freshly simulated, not recovered).
    fn trial_finished(&self, spec: &CellSpec, censored: bool) {
        let _ = (spec, censored);
    }

    /// A cell completed. `cache_hit` means the store already had it and
    /// nothing was simulated; `recovered` counts journal-recovered trials.
    fn cell_finished(&self, spec: &CellSpec, cache_hit: bool, recovered: usize) {
        let _ = (spec, cache_hit, recovered);
    }
}

/// Observer that ignores everything.
pub struct NullObserver;

impl SweepObserver for NullObserver {}

/// Live progress on stderr: cells done, trials/sec, ETA, censored count,
/// cache hits. Throttled to one redraw per completed trial bucket to
/// keep the syscall overhead negligible next to simulation.
pub struct ConsoleProgress {
    start: Instant,
    total_cells: AtomicUsize,
    total_trials: AtomicU64,
    cells_done: AtomicUsize,
    trials_done: AtomicU64,
    trials_skipped: AtomicU64,
    censored: AtomicU64,
    cache_hits: AtomicUsize,
    line: Mutex<()>,
}

impl ConsoleProgress {
    /// New progress renderer (clock starts now).
    pub fn new() -> Self {
        ConsoleProgress {
            start: Instant::now(),
            total_cells: AtomicUsize::new(0),
            total_trials: AtomicU64::new(0),
            cells_done: AtomicUsize::new(0),
            trials_done: AtomicU64::new(0),
            trials_skipped: AtomicU64::new(0),
            censored: AtomicU64::new(0),
            cache_hits: AtomicUsize::new(0),
            line: Mutex::new(()),
        }
    }

    /// Number of cells served straight from the store.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of freshly simulated trials.
    pub fn trials_simulated(&self) -> u64 {
        self.trials_done.load(Ordering::Relaxed)
    }

    fn redraw(&self) {
        let _guard = self.line.lock().unwrap();
        let done = self.trials_done.load(Ordering::Relaxed);
        let skipped = self.trials_skipped.load(Ordering::Relaxed);
        let total = self.total_trials.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let remaining = total.saturating_sub(done + skipped);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            "?".into()
        };
        eprint!(
            "\r  cells {}/{} | trials {}/{} ({} cached) | {:.1} trials/s | ETA {} | censored {}   ",
            self.cells_done.load(Ordering::Relaxed),
            self.total_cells.load(Ordering::Relaxed),
            done + skipped,
            total,
            skipped,
            rate,
            eta,
            self.censored.load(Ordering::Relaxed),
        );
        let _ = std::io::Write::flush(&mut std::io::stderr());
    }

    /// Terminate the progress line (call once after the run).
    pub fn finish(&self) {
        self.redraw();
        eprintln!();
    }
}

impl Default for ConsoleProgress {
    fn default() -> Self {
        ConsoleProgress::new()
    }
}

impl SweepObserver for ConsoleProgress {
    fn run_started(&self, total_cells: usize, total_trials: u64) {
        self.total_cells.store(total_cells, Ordering::Relaxed);
        self.total_trials.store(total_trials, Ordering::Relaxed);
        self.redraw();
    }

    fn cell_started(&self, _spec: &CellSpec, already_done: usize) {
        self.trials_skipped
            .fetch_add(already_done as u64, Ordering::Relaxed);
    }

    fn trial_finished(&self, _spec: &CellSpec, censored: bool) {
        self.trials_done.fetch_add(1, Ordering::Relaxed);
        if censored {
            self.censored.fetch_add(1, Ordering::Relaxed);
        }
        self.redraw();
    }

    fn cell_finished(&self, spec: &CellSpec, cache_hit: bool, _recovered: usize) {
        self.cells_done.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.trials_skipped
                .fetch_add(spec.trials as u64, Ordering::Relaxed);
        }
        self.redraw();
    }
}

/// Test observer that tallies events.
#[derive(Default)]
pub struct CountingObserver {
    /// Freshly simulated trials.
    pub trials: AtomicU64,
    /// Censored among them.
    pub censored: AtomicU64,
    /// Completed cells.
    pub cells: AtomicUsize,
    /// Cache-hit cells among them.
    pub cache_hits: AtomicUsize,
    /// Journal-recovered trials.
    pub recovered: AtomicU64,
}

impl SweepObserver for CountingObserver {
    fn trial_finished(&self, _spec: &CellSpec, censored: bool) {
        self.trials.fetch_add(1, Ordering::Relaxed);
        if censored {
            self.censored.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn cell_finished(&self, _spec: &CellSpec, cache_hit: bool, recovered: usize) {
        self.cells.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.recovered
            .fetch_add(recovered as u64, Ordering::Relaxed);
    }
}
