//! Minimal JSON encoding/decoding for the result store and journals.
//!
//! The implementation lives in [`pp_telemetry::json`] — the metrics
//! exporter shares the same integer-only format, and the telemetry core
//! must stay dependency-free, so the module moved down the stack. This
//! re-export keeps every existing `pp_sweep::json::...` path working.

pub use pp_telemetry::json::*;
