//! Pre-flight lint gate: statically analyse every protocol a sweep plan
//! is about to simulate, and refuse to spend compute on a structurally
//! broken one.
//!
//! `pp-sweep run` calls [`lint_cells`] before the runner touches a
//! single trial. Each distinct [`ProtocolId`] in the selected cells is
//! mapped to its pp-lint registry entry (compiled protocol + declared
//! contract, including the Lemma 1 functionals for the k-partition
//! family) and linted; any `Error`-severity finding aborts the run with
//! the rendered report. Warnings are printed but do not block — the CI
//! gate (`pp-lint --all-protocols --deny warnings`) is the stricter
//! line of defence.

use crate::spec::{CellSpec, ProtocolId};
use pp_lint::registry;
use pp_lint::Severity;

/// Map a sweep protocol id to its lint-registry entry.
fn entry_for(id: ProtocolId) -> registry::Entry {
    match id {
        ProtocolId::UniformKPartition { k } => registry::ukp(k),
        ProtocolId::BasicStrategy { k } => registry::basic(k),
        ProtocolId::OneSidedAbort { k } => registry::oneside(k),
        ProtocolId::ComposedBipartition { h } => registry::composed(h),
        ProtocolId::ApproxPartition { k } => registry::approx(k),
    }
}

/// Lint every distinct protocol in `cells`. Returns `Err` with a
/// human-readable report when any protocol has an `Error` finding;
/// warning-level findings are returned in `Ok` for the caller to print.
pub fn lint_cells(cells: &[CellSpec]) -> Result<Vec<String>, String> {
    let mut seen: Vec<ProtocolId> = Vec::new();
    for cell in cells {
        if !seen.contains(&cell.protocol) {
            seen.push(cell.protocol);
        }
    }

    let mut warnings = Vec::new();
    for id in seen {
        let entry = entry_for(id);
        let report = pp_lint::lint(&entry.proto, &entry.expect);
        if report.deny() {
            return Err(format!(
                "protocol {} failed static analysis:\n{}",
                entry.slug,
                report.render_text(&entry.proto)
            ));
        }
        for f in report.at(Severity::Warning) {
            warnings.push(format!("{}: {}: {}", entry.slug, f.kind.id(), f.message));
        }
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellMode, CriterionKind, KernelChoice};

    fn cell(protocol: ProtocolId) -> CellSpec {
        CellSpec {
            protocol,
            n: 32,
            trials: 1,
            seed: 1,
            criterion: CriterionKind::Stable,
            budget: 1_000_000,
            mode: CellMode::Summary,
            kernel: KernelChoice::Leap,
        }
    }

    #[test]
    fn all_plan_protocols_pass_the_gate() {
        let cells: Vec<CellSpec> = [
            ProtocolId::UniformKPartition { k: 3 },
            ProtocolId::UniformKPartition { k: 8 },
            ProtocolId::BasicStrategy { k: 3 },
            ProtocolId::OneSidedAbort { k: 4 },
            ProtocolId::ComposedBipartition { h: 2 },
            ProtocolId::ApproxPartition { k: 5 },
        ]
        .into_iter()
        .map(cell)
        .collect();
        let warnings = lint_cells(&cells).expect("zoo protocols are lint-clean");
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
    }

    #[test]
    fn duplicate_protocols_lint_once() {
        let cells = vec![
            cell(ProtocolId::UniformKPartition { k: 3 }),
            cell(ProtocolId::UniformKPartition { k: 3 }),
        ];
        assert!(lint_cells(&cells).is_ok());
    }
}
