//! Pre-flight lint gate: statically analyse every protocol a sweep plan
//! is about to simulate, and refuse to spend compute on a structurally
//! broken one.
//!
//! `pp-sweep run` calls [`lint_cells`] before the runner touches a
//! single trial. Each distinct [`ProtocolId`] in the selected cells is
//! mapped to its pp-lint registry entry (compiled protocol + declared
//! contract, including the Lemma 1 functionals for the k-partition
//! family) and linted; any `Error`-severity finding aborts the run with
//! the rendered report. Warnings are printed but do not block — the CI
//! gate (`pp-lint --all-protocols --deny warnings`) is the stricter
//! line of defence.

use crate::spec::{CellSpec, ProtocolId};
use pp_lint::registry;
use pp_lint::Severity;

/// Map a sweep protocol id to its lint-registry entry.
fn entry_for(id: ProtocolId) -> registry::Entry {
    match id {
        ProtocolId::UniformKPartition { k } => registry::ukp(k),
        ProtocolId::BasicStrategy { k } => registry::basic(k),
        ProtocolId::OneSidedAbort { k } => registry::oneside(k),
        ProtocolId::ComposedBipartition { h } => registry::composed(h),
        ProtocolId::ApproxPartition { k } => registry::approx(k),
    }
}

/// Lint every distinct protocol in `cells`. Returns `Err` with a
/// human-readable report when any protocol has an `Error` finding;
/// warning-level findings are returned in `Ok` for the caller to print.
///
/// Cells with a bounded-degree topology additionally get the
/// [`pp_lint::topo`] strand-risk pass: a protocol whose chain-building
/// progression is deeper than the declared degree bound can serve is
/// flagged (warning only — sparse topologies are simulable, the finding
/// just predicts censored trials).
pub fn lint_cells(cells: &[CellSpec]) -> Result<Vec<String>, String> {
    let mut seen: Vec<ProtocolId> = Vec::new();
    // Distinct (protocol, degree bound) pairs for the topology pass.
    let mut topo_seen: Vec<(ProtocolId, u32, String)> = Vec::new();
    for cell in cells {
        if !seen.contains(&cell.protocol) {
            seen.push(cell.protocol);
        }
        if let Some(d) = cell.dynamics.topo.degree_bound() {
            let family = cell.dynamics.topo.family().to_string();
            if !topo_seen
                .iter()
                .any(|(p, b, _)| *p == cell.protocol && *b == d)
            {
                topo_seen.push((cell.protocol, d, family));
            }
        }
    }

    let mut warnings = Vec::new();
    for id in seen {
        let entry = entry_for(id);
        let report = pp_lint::lint(&entry.proto, &entry.expect);
        if report.deny() {
            return Err(format!(
                "protocol {} failed static analysis:\n{}",
                entry.slug,
                report.render_text(&entry.proto)
            ));
        }
        for f in report.at(Severity::Warning) {
            warnings.push(format!("{}: {}: {}", entry.slug, f.kind.id(), f.message));
        }
    }
    for (id, degree, family) in topo_seen {
        let entry = entry_for(id);
        for f in pp_lint::topo::strand_findings(&entry.proto, Some(degree)) {
            warnings.push(format!(
                "{} on {family}: {}: {}",
                entry.slug,
                f.kind.id(),
                f.message
            ));
        }
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellMode, CriterionKind, KernelChoice};

    fn cell(protocol: ProtocolId) -> CellSpec {
        CellSpec {
            protocol,
            n: 32,
            trials: 1,
            seed: 1,
            criterion: CriterionKind::Stable,
            budget: 1_000_000,
            mode: CellMode::Summary,
            kernel: KernelChoice::Leap,
            dynamics: pp_topo::Dynamics::default_dynamics(),
        }
    }

    #[test]
    fn all_plan_protocols_pass_the_gate() {
        let cells: Vec<CellSpec> = [
            ProtocolId::UniformKPartition { k: 3 },
            ProtocolId::UniformKPartition { k: 8 },
            ProtocolId::BasicStrategy { k: 3 },
            ProtocolId::OneSidedAbort { k: 4 },
            ProtocolId::ComposedBipartition { h: 2 },
            ProtocolId::ApproxPartition { k: 5 },
        ]
        .into_iter()
        .map(cell)
        .collect();
        let warnings = lint_cells(&cells).expect("zoo protocols are lint-clean");
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
    }

    #[test]
    fn duplicate_protocols_lint_once() {
        let cells = vec![
            cell(ProtocolId::UniformKPartition { k: 3 }),
            cell(ProtocolId::UniformKPartition { k: 3 }),
        ];
        assert!(lint_cells(&cells).is_ok());
    }

    #[test]
    fn bounded_degree_topology_warns_on_deep_chains() {
        let mut ring = cell(ProtocolId::UniformKPartition { k: 6 });
        ring.kernel = KernelChoice::Naive;
        ring.dynamics = pp_topo::Dynamics::parse("ring;uniform;j0.l0.c0.p0").unwrap();
        let warnings = lint_cells(&[ring]).expect("warnings are not fatal");
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("topology-strand-risk") && w.contains("ring")),
            "expected a strand-risk warning, got {warnings:?}"
        );
        // The same protocol on the complete graph stays warning-free.
        let complete = cell(ProtocolId::UniformKPartition { k: 6 });
        let warnings = lint_cells(&[complete]).unwrap();
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
    }
}
