//! Convergence-phase timelines: `pp-sweep run --timelines [glob]`.
//!
//! A timeline is the phase-classification record of **trial 0** of a
//! cell — same derived seed, kernel, and budget as the trial the store
//! holds, re-run under a [`pp_engine::PhaseProbe`] that samples
//! Algorithm 1's regime (chain-building / repair / stable) at
//! logarithmically-spaced checkpoints. The result is written as
//! integer-and-string JSON to `<store>/<stem>.timeline.json`, next to
//! the cell's content-addressed result and its `.trace` (the two views
//! are complementary: the trace says *which rule fired when*, the
//! timeline says *which macroscopic regime the run was in*). Because
//! trial 0's seed is a pure function of the spec, a timeline can be
//! (re)captured at any time — including on a cache hit — and the phase
//! boundaries are consistent with the trace classifier's
//! chain-lifecycle events on the same seed (a repair segment can only
//! begin at or after a `chain_abort`); `timeline.rs`'s tests pin that
//! consistency configuration-by-configuration.
//!
//! Cells running protocols whose state names don't follow the
//! k-partition convention have no phase classification; they are
//! skipped (reported as `None`), not failed.

use std::path::PathBuf;

use pp_engine::population::{CountPopulation, Population};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::seeds;
use pp_engine::simulator::{RunError, Simulator};
use pp_engine::{Phase, PhaseProbe};
use pp_telemetry::json::Value;

use crate::spec::{CellMode, CellSpec, KernelChoice};
use crate::store::ResultStore;
use crate::trace::glob_match;

/// Where a cell's timeline lives: `<store>/<stem>.timeline.json` for
/// directory-backed stores; mem/log backends land under
/// `<results>/timelines/`.
pub fn timeline_path(store: &ResultStore, spec: &CellSpec) -> PathBuf {
    let dir = match store.fs_dir() {
        Some(d) => d.to_path_buf(),
        None => pp_analysis::config::results_dir().join("timelines"),
    };
    dir.join(format!("{}.timeline.json", spec.file_stem()))
}

/// One captured (or reloaded) per-run phase timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellTimeline {
    /// The cell's store file stem.
    pub stem: String,
    /// Where the timeline was written (or found).
    pub path: PathBuf,
    /// Whether this call recorded the timeline (false: reused on disk).
    pub fresh: bool,
    /// `(first step observed, phase)` segments, in step order.
    pub segments: Vec<(u64, Phase)>,
    /// Checkpoints resolved by the probe.
    pub checkpoints: u64,
    /// Trial 0's total interaction count (budget when censored).
    pub interactions: u64,
    /// Whether trial 0 stabilised within budget.
    pub stable: bool,
}

impl CellTimeline {
    /// Encode as the on-disk JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("cell", Value::Str(self.stem.clone())),
            ("trial", Value::U64(0)),
            ("checkpoints", Value::U64(self.checkpoints)),
            ("interactions", Value::U64(self.interactions)),
            ("stable", Value::U64(self.stable as u64)),
            (
                "segments",
                Value::Arr(
                    self.segments
                        .iter()
                        .map(|&(step, phase)| {
                            Value::Arr(vec![
                                Value::U64(step),
                                Value::Str(phase.as_str().to_string()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode the on-disk JSON object.
    pub fn from_json(v: &Value, path: PathBuf) -> Result<CellTimeline, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k}"));
        let num =
            |k: &str| field(k).and_then(|x| x.as_u64().ok_or_else(|| format!("field {k} not u64")));
        let mut segments = Vec::new();
        for seg in field("segments")?.as_arr().ok_or("segments not an array")? {
            let pair = seg.as_arr().filter(|p| p.len() == 2).ok_or("bad segment")?;
            let step = pair[0].as_u64().ok_or("bad segment step")?;
            let phase = pair[1]
                .as_str()
                .and_then(Phase::parse)
                .ok_or("bad segment phase")?;
            segments.push((step, phase));
        }
        Ok(CellTimeline {
            stem: field("cell")?
                .as_str()
                .ok_or("cell not a string")?
                .to_string(),
            path,
            fresh: false,
            segments,
            checkpoints: num("checkpoints")?,
            interactions: num("interactions")?,
            stable: num("stable")? != 0,
        })
    }
}

/// The seed trial 0 runs with (same derivation as `exec::run_one_trial`).
fn trial0_seed(spec: &CellSpec) -> u64 {
    match spec.mode {
        CellMode::Trajectory { .. } => spec.seed,
        _ => seeds::derive(spec.seed, 0),
    }
}

/// What one probed trial yields: the phase segments plus run totals.
struct ProbedTrial {
    segments: Vec<(u64, Phase)>,
    checkpoints: u64,
    interactions: u64,
    stable: bool,
}

/// Re-run trial 0 of `spec` under a phase probe. Returns `None` when the
/// protocol's states don't follow the k-partition naming convention.
fn record_trial0(spec: &CellSpec) -> Option<ProbedTrial> {
    let cell = spec.materialize();
    let mut probe = PhaseProbe::for_protocol(&cell.proto)?;
    let seed = trial0_seed(spec);
    if !spec.dynamics.is_default() {
        let outcome = pp_topo::run_dynamics(
            &cell.proto,
            spec.n as usize,
            &spec.dynamics,
            &cell.criterion,
            spec.budget,
            seed,
            &mut probe,
        )
        .unwrap_or_else(|e| panic!("timeline trial of {} failed: {e}", spec.file_stem()));
        let interactions = outcome.interactions.unwrap_or(spec.budget);
        probe.finish(interactions, &outcome.final_counts);
        return Some(ProbedTrial {
            segments: probe.segments().to_vec(),
            checkpoints: probe.checkpoints(),
            interactions,
            stable: outcome.stabilised(),
        });
    }
    let mut pop = CountPopulation::new(&cell.proto, spec.n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let sim = Simulator::new(&cell.proto);
    // Batch cells are probed on the exact leap kernel, the same stand-in
    // the trace layer uses: the batch kernel has no interaction-granular
    // checkpoint stream, and the leap run is a faithful exact execution
    // of the same cell seed.
    let (interactions, stable) = match spec.kernel {
        KernelChoice::Naive => {
            match sim.run_observed(
                &mut pop,
                &mut sched,
                &cell.criterion,
                spec.budget,
                &mut probe,
            ) {
                Ok(r) => (r.interactions, true),
                Err(RunError::InteractionLimit { .. }) => (spec.budget, false),
                Err(e) => panic!("timeline trial failed: {e}"),
            }
        }
        KernelChoice::Leap | KernelChoice::Batch => {
            match sim.run_leap_observed(
                &mut pop,
                &mut sched,
                &cell.criterion,
                spec.budget,
                &mut probe,
            ) {
                Ok(r) => (r.interactions, true),
                Err(RunError::InteractionLimit { .. }) => (spec.budget, false),
                Err(e) => panic!("timeline trial failed: {e}"),
            }
        }
    };
    probe.finish(interactions, pop.counts());
    Some(ProbedTrial {
        segments: probe.segments().to_vec(),
        checkpoints: probe.checkpoints(),
        interactions,
        stable,
    })
}

/// Capture (or reload) the timeline of one cell. `Ok(None)` means the
/// cell's protocol has no phase classification.
pub fn timeline_cell(spec: &CellSpec, store: &ResultStore) -> Result<Option<CellTimeline>, String> {
    let path = timeline_path(store, spec);
    if let Ok(text) = std::fs::read_to_string(&path) {
        let v = Value::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
        let t = CellTimeline::from_json(&v, path.clone())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        pp_telemetry::counter("timeline.cells.reused").inc();
        return Ok(Some(t));
    }
    let Some(probed) = record_trial0(spec) else {
        return Ok(None);
    };
    pp_telemetry::counter("timeline.cells.recorded").inc();
    pp_telemetry::counter("timeline.segments").add(probed.segments.len() as u64);
    pp_telemetry::counter("timeline.checkpoints").add(probed.checkpoints);
    let timeline = CellTimeline {
        stem: spec.file_stem(),
        path: path.clone(),
        fresh: true,
        segments: probed.segments,
        checkpoints: probed.checkpoints,
        interactions: probed.interactions,
        stable: probed.stable,
    };
    let mut text = timeline.to_json().encode();
    text.push('\n');
    pp_trace::cli::write_atomic(&path, text.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(Some(timeline))
}

/// Capture timelines for every cell whose stem matches `glob`
/// (deduplicated). Cells without a phase classification are skipped.
pub fn timeline_matching(
    cells: &[CellSpec],
    store: &ResultStore,
    glob: &str,
) -> Result<Vec<CellTimeline>, String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for spec in cells {
        let stem = spec.file_stem();
        if glob_match(glob, &stem) && seen.insert(stem) {
            if let Some(t) = timeline_cell(spec, store)? {
                out.push(t);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CriterionKind, ProtocolId};
    use pp_engine::PhaseMap;
    use pp_trace::Trace;

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("pp_sweep_timeline_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::at(dir)
    }

    fn ukp_spec(kernel: KernelChoice, k: usize, n: u64, seed: u64) -> CellSpec {
        CellSpec {
            protocol: ProtocolId::UniformKPartition { k },
            n,
            trials: 1,
            seed,
            criterion: CriterionKind::Stable,
            budget: 10_000_000,
            mode: CellMode::Summary,
            kernel,
            dynamics: pp_topo::Dynamics::default_dynamics(),
        }
    }

    /// Reconstruct the count vector after `step` interactions from a
    /// trace's effective records (counts are constant between them).
    fn counts_at(
        proto: &pp_engine::CompiledProtocol,
        n: u64,
        trace: &Trace,
        step: u64,
    ) -> Vec<u64> {
        let pop = CountPopulation::new(proto, n);
        let mut counts = pop.counts().to_vec();
        for rec in &trace.records {
            let &pp_trace::TraceRecord::Effective {
                step: s,
                p,
                q,
                p2,
                q2,
            } = rec
            else {
                continue;
            };
            if s > step {
                break;
            }
            counts[p as usize] -= 1;
            counts[q as usize] -= 1;
            counts[p2 as usize] += 1;
            counts[q2 as usize] += 1;
        }
        counts
    }

    #[test]
    fn timeline_round_trips_and_reuses() {
        let store = temp_store("rt");
        let spec = ukp_spec(KernelChoice::Leap, 3, 12, 41);
        let t = timeline_cell(&spec, &store).unwrap().unwrap();
        assert!(t.fresh);
        assert!(t.path.exists());
        assert!(!t.segments.is_empty());
        assert_eq!(t.segments[0].1, Phase::ChainBuilding);
        assert!(t.stable, "k=3 n=12 stabilises well inside 10M");
        assert_eq!(t.segments.last().unwrap().1, Phase::Stable);
        // Steps strictly increasing, phases actually change per segment.
        for w in t.segments.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert_ne!(w[0].1, w[1].1);
        }
        let again = timeline_cell(&spec, &store).unwrap().unwrap();
        assert!(!again.fresh);
        assert_eq!(again.segments, t.segments);
        assert_eq!(again.interactions, t.interactions);
        assert_eq!(again.stable, t.stable);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn leftover_member_cells_end_stable() {
        // For n mod k ≥ 2 the stable signature keeps exactly one m_r
        // agent, so the terminal segment must still classify as stable
        // (regression: the classifier used to read any lone builder as
        // chain_building and mislabel every such cell's tail).
        let store = temp_store("leftover");
        let spec = ukp_spec(KernelChoice::Leap, 4, 11, 41);
        let t = timeline_cell(&spec, &store).unwrap().unwrap();
        assert!(t.stable, "k=4 n=11 stabilises well inside 10M");
        assert_eq!(t.segments.last().unwrap().1, Phase::Stable);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn phases_match_the_trace_classifier_on_the_same_seed() {
        // The acceptance contract: on one seed, the timeline's phase
        // boundaries must be consistent with the trace classifier's
        // chain-lifecycle events. Checked two ways, over several seeds so
        // the repair branch is actually exercised:
        //  1. every recorded segment's phase equals the classification of
        //     the configuration the *trace* says held at that step;
        //  2. a repair segment begins only at or after a chain_abort.
        let mut saw_repair = false;
        for seed in [41u64, 42, 43, 44, 45, 46, 47, 48] {
            let store = temp_store(&format!("cons{seed}"));
            let spec = ukp_spec(KernelChoice::Leap, 4, 40, seed);
            let t = timeline_cell(&spec, &store).unwrap().unwrap();
            let tr = crate::trace::trace_cell(&spec, &store).unwrap();
            let bytes = std::fs::read(&tr.path).unwrap();
            let trace = Trace::decode(&bytes).unwrap();
            let diag = pp_trace::classify(&trace).unwrap();
            let cell = spec.materialize();
            let map = PhaseMap::for_protocol(&cell.proto).unwrap();

            for &(step, phase) in &t.segments {
                assert_eq!(
                    map.classify(&counts_at(&cell.proto, spec.n, &trace, step)),
                    phase,
                    "seed {seed}: segment at step {step} disagrees with the trace"
                );
                if phase == Phase::Repair {
                    saw_repair = true;
                    let abort_before = diag
                        .events
                        .iter()
                        .any(|e| e.kind() == "chain_abort" && e.step() <= step);
                    assert!(
                        abort_before,
                        "seed {seed}: repair at {step} without a prior chain_abort"
                    );
                }
            }
            if t.stable {
                assert_eq!(t.segments.last().unwrap().1, Phase::Stable);
            }
            let _ = std::fs::remove_dir_all(store.dir());
        }
        assert!(
            saw_repair,
            "no seed exercised the repair branch; pick seeds that collide chains"
        );
    }

    #[test]
    fn dynamics_cells_run_their_own_loop() {
        let store = temp_store("dyn");
        let mut spec = ukp_spec(KernelChoice::Naive, 3, 12, 7);
        spec.budget = 3_000;
        spec.dynamics = pp_topo::Dynamics::parse("ring;uniform;j0.l0.c0.p0").unwrap();
        let t = timeline_cell(&spec, &store).unwrap().unwrap();
        assert!(!t.segments.is_empty());
        assert!(t.interactions <= 3_000);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn matching_dedupes_filters_and_skips_unclassifiable() {
        let store = temp_store("match");
        let spec = ukp_spec(KernelChoice::Leap, 3, 12, 41);
        let cells = vec![spec.clone(), spec.clone()];
        let made = timeline_matching(&cells, &store, "ukp-*").unwrap();
        assert_eq!(made.len(), 1);
        assert!(timeline_matching(&cells, &store, "zzz-*")
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
