//! `pp-sweep`: checkpointed, cached, sharded experiment orchestration.
//!
//! The paper's experiments (§5) are sweeps over `(protocol, k, n)` cells
//! of 100 trials each; at the far end of the grids (Figure 6's large `k`)
//! a single sweep runs for hours. This crate turns the ad-hoc figure
//! binaries into one subsystem with three guarantees:
//!
//! * **Declarative plans** ([`plan`]) — each experiment states its cell
//!   grid up front ([`spec::CellSpec`]); reporters render tables and CSVs
//!   from stored results, separate from execution.
//! * **Content-addressed caching** ([`store`]) — a completed cell is
//!   stored under a stable hash of everything that determines its output;
//!   re-running a finished plan is a no-op and figures regenerate
//!   incrementally when only part of a grid changed. Storage is
//!   pluggable ([`backend`]): the historical file store, an in-memory
//!   store for tests and ephemeral serving, and a compacting
//!   append-only log sized for millions of cells (`pp-serve`'s cache
//!   tier; select with `PP_STORE_BACKEND`).
//! * **Crash-safe resume** ([`journal`], [`exec`]) — every finished trial
//!   is appended to a per-cell JSONL journal; after an interruption the
//!   next run replays the journal and simulates only the missing trials.
//!   Because trial `i`'s seed is `derive(cell_seed, i)` independent of
//!   history, a resumed sweep is **bit-identical** to an uninterrupted
//!   one.
//!
//! Execution ([`runner`]) shards cells across the worker pool with live
//! progress via a metrics hook ([`observer`]) modeled on
//! `pp_engine::observer`. The [`cli`] module backs the `pp-sweep` binary
//! (`run`, `resume`, `status`, `gc`, `list`); the legacy figure binaries
//! are thin wrappers over [`cli::delegate`].

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod backend;
// The CLI surface prints to stdout by design.
#[allow(clippy::print_stdout)]
pub mod cli;
pub mod exec;
pub mod journal;
pub mod json;
pub mod lintgate;
// Console progress writes to stdout by design.
#[allow(clippy::print_stdout)]
pub mod observer;
pub mod plan;
pub mod plans;
pub mod runner;
pub mod spec;
pub mod store;
pub mod telemetry;
pub mod timeline;
pub mod trace;
