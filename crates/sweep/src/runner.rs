//! Plan orchestration: shard a plan's cell queue across the worker pool.
//!
//! Cells are the sharding unit — each worker claims whole cells off the
//! queue (via the order-preserving parallel map), while trials inside a
//! cell run on the same pool when it is otherwise idle. Heavier cells
//! (large `n`, large `k`) are dispatched first so the pool drains evenly
//! instead of one straggler cell serialising the tail of the run.

use std::collections::HashMap;

use crate::exec::{run_cell, CellOutcome, ExecOptions};
use crate::observer::SweepObserver;
use crate::plan::Plan;
use crate::spec::CellSpec;
use crate::store::ResultStore;

/// Outcome of a plan (or multi-plan) run.
#[derive(Debug)]
pub struct RunStats {
    /// Cells executed or loaded.
    pub cells: usize,
    /// Cells served entirely from the store.
    pub cache_hits: usize,
    /// Cells that finished by simulating at least one trial.
    pub simulated: usize,
}

/// Run a set of cells (deduplicated by content hash) against the store.
/// Returns per-cell stats; any I/O error aborts the run.
pub fn run_cells(
    cells: &[CellSpec],
    store: &ResultStore,
    obs: &dyn SweepObserver,
    opts: &ExecOptions,
) -> std::io::Result<RunStats> {
    // Dedupe: plans share cells (the ablation reuses fig3's cells, `all`
    // unions every plan); each distinct cell runs once.
    let mut seen = HashMap::new();
    for c in cells {
        seen.entry(c.content_hash()).or_insert_with(|| c.clone());
    }
    let mut unique: Vec<CellSpec> = seen.into_values().collect();
    // Largest simulation volume first (cost ∝ trials · budget is a crude
    // but monotone proxy); ties broken by hash for determinism.
    unique.sort_by_key(|c| {
        (
            std::cmp::Reverse(c.budget.saturating_mul(c.trials as u64)),
            c.content_hash(),
        )
    });

    obs.run_started(unique.len(), unique.iter().map(|c| c.trials as u64).sum());

    let m = crate::telemetry::sweep_metrics();
    let workers = rayon::current_num_threads() as u64;
    m.shard_workers.set(workers);
    let run_started = std::time::Instant::now();
    let busy_before = m.shard_busy_micros.get();

    // Tee observer: tallies hit/simulated for the return value while
    // forwarding every event to the caller's observer.
    struct Tee<'a> {
        inner: &'a dyn SweepObserver,
        hits: std::sync::atomic::AtomicUsize,
    }
    impl SweepObserver for Tee<'_> {
        fn cell_started(&self, spec: &CellSpec, already_done: usize) {
            self.inner.cell_started(spec, already_done);
        }
        fn trial_finished(&self, spec: &CellSpec, censored: bool) {
            self.inner.trial_finished(spec, censored);
        }
        fn cell_finished(&self, spec: &CellSpec, cache_hit: bool, recovered: usize) {
            if cache_hit {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            self.inner.cell_finished(spec, cache_hit, recovered);
        }
    }
    let tee = Tee {
        inner: obs,
        hits: std::sync::atomic::AtomicUsize::new(0),
    };

    let results: Vec<std::io::Result<()>> = {
        use rayon::prelude::*;
        unique
            .clone()
            .into_par_iter()
            .map(|spec| {
                // `kill_after` is a per-cell knob; at plan level it only
                // makes sense for single-cell test runs, so pass through.
                match run_cell(&spec, store, &tee, opts)? {
                    CellOutcome::Complete(_) | CellOutcome::Interrupted { .. } => Ok(()),
                }
            })
            .collect()
    };
    for r in results {
        r?;
    }

    let wall = run_started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    m.run_wall_micros.add(wall);
    // Utilisation: busy mass this run over the pool's wall capacity.
    // Cache-hit-only runs finish in microseconds; report them as idle
    // rather than dividing by a meaninglessly small capacity.
    let busy = m.shard_busy_micros.get().saturating_sub(busy_before);
    let capacity = wall.saturating_mul(workers);
    if let Some(pct) = (busy * 100).min(capacity * 100).checked_div(capacity) {
        m.shard_utilisation_pct.set(pct);
    }

    let cache_hits = tee.hits.load(std::sync::atomic::Ordering::Relaxed);
    Ok(RunStats {
        cells: unique.len(),
        cache_hits,
        simulated: unique.len() - cache_hits,
    })
}

/// Run one plan end to end: execute its cells, then render its report.
pub fn run_plan(
    plan: &Plan,
    store: &ResultStore,
    obs: &dyn SweepObserver,
    opts: &ExecOptions,
) -> std::io::Result<String> {
    run_cells(&plan.cells, store, obs, opts)?;
    (plan.report)(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingObserver;
    use crate::plan::{ukp_cell, PlanConfig};
    use crate::spec::CellMode;
    use std::sync::atomic::Ordering;

    // Orchestration semantics are backend-independent; unit tests use
    // the in-memory backend (see tests/backend_conformance.rs for the
    // cross-backend battery).
    fn temp_store(_tag: &str) -> ResultStore {
        ResultStore::in_memory()
    }

    fn cfg() -> PlanConfig {
        PlanConfig {
            trials: 4,
            master_seed: 7,
        }
    }

    #[test]
    fn duplicate_cells_run_once() {
        let store = temp_store("dedupe");
        let obs = CountingObserver::default();
        let cell = ukp_cell(3, 12, cfg(), CellMode::Summary);
        let cells = vec![cell.clone(), cell.clone(), cell];
        let stats = run_cells(&cells, &store, &obs, &ExecOptions::default()).unwrap();
        assert_eq!(stats.cells, 1);
        assert_eq!(obs.trials.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let store = temp_store("hits");
        let cells: Vec<_> = [(3usize, 9u64), (3, 12), (4, 12)]
            .iter()
            .map(|&(k, n)| ukp_cell(k, n, cfg(), CellMode::Summary))
            .collect();
        let first = CountingObserver::default();
        run_cells(&cells, &store, &first, &ExecOptions::default()).unwrap();
        assert_eq!(first.cache_hits.load(Ordering::Relaxed), 0);
        assert_eq!(first.trials.load(Ordering::Relaxed), 12);

        let second = CountingObserver::default();
        run_cells(&cells, &store, &second, &ExecOptions::default()).unwrap();
        assert_eq!(second.cache_hits.load(Ordering::Relaxed), 3, "100% hits");
        assert_eq!(second.trials.load(Ordering::Relaxed), 0, "nothing re-run");
    }

    #[test]
    fn plan_report_renders_after_run() {
        // Smallest real plan: trajectory (3 single-run cells) would still
        // take seconds; use a throwaway plan instead.
        let store = temp_store("plan");
        let cell = ukp_cell(3, 12, cfg(), CellMode::Summary);
        let report_cell = cell.clone();
        let plan = Plan {
            name: "test",
            title: "Test",
            description: "test plan",
            cells: vec![cell],
            report: Box::new(move |store| {
                let c = crate::plan::must_load(store, &report_cell);
                Ok(format!("mean={}", c.summary().mean))
            }),
        };
        let text = run_plan(
            &plan,
            &store,
            &CountingObserver::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(text.starts_with("mean="));
    }
}
