//! The `pp-sweep` command-line interface.
//!
//! ```text
//! pp-sweep list               # registered plans
//! pp-sweep run <plan>|all     # execute (cache-aware) and report
//! pp-sweep resume <plan>|all  # alias of run: resume IS the default
//! pp-sweep status [<plan>]    # per-plan cell completion state + telemetry
//! pp-sweep metrics [path]     # validate + summarise a metrics export
//! pp-sweep gc                 # drop store files no current plan references
//! ```
//!
//! `run`/`resume` export telemetry as JSONL to `<results>/metrics.jsonl`
//! after every run (see [`crate::telemetry`]); `--metrics <path>` writes
//! an additional copy to an explicit location. `--trace <glob>` records
//! trial 0 of every cell whose store file stem matches the glob into
//! `<store>/<stem>.trace` (see [`crate::trace`]) and folds the trace
//! diagnostics into the same metrics export. `--timelines [glob]`
//! (default `*`) classifies trial 0 of each matching cell into
//! convergence phases and writes `<store>/<stem>.timeline.json` (see
//! [`crate::timeline`]).
//!
//! Environment: `PP_TRIALS`, `PP_SEED`, `PP_RESULTS_DIR`, `PP_FIG6_KMAX`
//! — all participate in cell identity, so changing them addresses
//! different store entries rather than corrupting existing ones.

use std::collections::HashSet;

use crate::exec::ExecOptions;
use crate::observer::ConsoleProgress;
use crate::plan::{self, Plan, PlanConfig};
use crate::runner;
use crate::store::ResultStore;

/// Entry point; returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    let cfg = PlanConfig::from_env();
    // `PP_STORE_BACKEND` selects where cells live (fs — the default —,
    // mem, or log); see crate::backend.
    let store = match ResultStore::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pp-sweep: cannot open store: {e}");
            return 1;
        }
    };
    // Split off the options run/resume accept: `--metrics [path]`,
    // `--trace <glob>`, and `--timelines [glob]`. An explicit metrics
    // path duplicates the export there; the default export next to the
    // results happens regardless. `--timelines` without a glob covers
    // every cell.
    let (args, metrics_to, trace_glob, timelines_glob) = {
        let mut rest = Vec::new();
        let mut metrics = None;
        let mut trace = None;
        let mut timelines = None;
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if a == "--metrics" {
                let path = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if path.is_some() {
                    it.next();
                }
                metrics = Some(path);
            } else if a == "--trace" {
                match it.peek().filter(|v| !v.starts_with("--")) {
                    Some(glob) => {
                        trace = Some((*glob).clone());
                        it.next();
                    }
                    None => {
                        eprintln!(
                            "pp-sweep: --trace requires a cell-stem glob (try `--trace '*'`)"
                        );
                        return 2;
                    }
                }
            } else if a == "--timelines" {
                let glob = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if glob.is_some() {
                    it.next();
                }
                timelines = Some(glob.unwrap_or_else(|| "*".to_string()));
            } else {
                rest.push(a);
            }
        }
        (rest, metrics, trace, timelines)
    };
    match args.as_slice() {
        [] => {
            eprintln!("{USAGE}");
            2
        }
        [cmd] if *cmd == "list" => {
            list(cfg);
            0
        }
        [cmd, name] if *cmd == "run" || *cmd == "resume" => run(
            name,
            cfg,
            &store,
            metrics_to.flatten(),
            trace_glob.as_deref(),
            timelines_glob.as_deref(),
        ),
        [cmd] if *cmd == "status" => {
            for p in plan::plans(cfg) {
                status(&p, &store);
            }
            status_telemetry(&store);
            0
        }
        [cmd, name] if *cmd == "status" => match plan::find(name, cfg) {
            Some(p) => {
                status(&p, &store);
                status_telemetry(&store);
                0
            }
            None => unknown_plan(name, cfg),
        },
        [cmd] if *cmd == "gc" => gc(cfg, &store),
        [cmd] if *cmd == "metrics" => metrics_cmd(&store, &default_metrics_path(&store)),
        [cmd, path] if *cmd == "metrics" => metrics_cmd(&store, std::path::Path::new(path)),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

const USAGE: &str = "usage: pp-sweep <list | run <plan|all> [--metrics [path]] [--trace <glob>] \
[--timelines [glob]] | resume <plan|all> [--metrics [path]] [--trace <glob>] [--timelines [glob]] | \
status [plan] | metrics [path] | gc>";

/// Where `run` exports metrics by default (and where `status` and the
/// bare `metrics` command look): next to the results they describe.
fn default_metrics_path(store: &ResultStore) -> std::path::PathBuf {
    match store.fs_dir() {
        Some(dir) => dir.join("metrics.jsonl"),
        // mem/log backends have no store directory; export next to the
        // rest of the results.
        None => pp_analysis::config::results_dir().join("metrics.jsonl"),
    }
}

/// One line describing the active backend and its stats, e.g.
/// `store backend: fs at results/store — 42 cells, 0 journals, …`.
fn backend_line(store: &ResultStore) -> String {
    format!(
        "store backend: {} at {} — {}",
        store.kind(),
        store.location(),
        store.stats().summary()
    )
}

fn list(cfg: PlanConfig) {
    println!(
        "registered plans (PP_TRIALS={}, PP_SEED={}):",
        cfg.trials, cfg.master_seed
    );
    for p in plan::plans(cfg) {
        println!(
            "  {:<18} {:>4} cells  {:>7} trials  — {}",
            p.name,
            p.cells.len(),
            p.total_trials(),
            p.description
        );
    }
    println!("  {:<18} union of the above", "all");
}

fn banner(p: &Plan, cfg: PlanConfig) {
    println!("== {} — {}", p.title, p.description);
    println!(
        "   trials/cell = {}, master seed = {} (override with PP_TRIALS / PP_SEED)",
        cfg.trials, cfg.master_seed
    );
    println!();
}

fn run(
    name: &str,
    cfg: PlanConfig,
    store: &ResultStore,
    metrics_to: Option<String>,
    trace_glob: Option<&str>,
    timelines_glob: Option<&str>,
) -> i32 {
    let selected: Vec<Plan> = if name == "all" {
        plan::plans(cfg)
    } else {
        match plan::find(name, cfg) {
            Some(p) => vec![p],
            None => return unknown_plan(name, cfg),
        }
    };

    // Union of cells first (dedupes across plans), then every report.
    let cells: Vec<_> = selected.iter().flat_map(|p| p.cells.clone()).collect();

    // Static analysis gate: refuse to simulate a structurally broken
    // protocol (lint errors), surface warnings without blocking.
    match crate::lintgate::lint_cells(&cells) {
        Ok(warnings) => {
            for w in warnings {
                eprintln!("pp-sweep: lint warning: {w}");
            }
        }
        Err(report) => {
            eprintln!("pp-sweep: refusing to run: {report}");
            return 1;
        }
    }

    let progress = ConsoleProgress::new();
    let stats = match runner::run_cells(&cells, store, &progress, &ExecOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            progress.finish();
            eprintln!("pp-sweep: run failed: {e}");
            return 1;
        }
    };
    progress.finish();
    eprintln!(
        "  {} cells complete ({} from cache, {} executed); store: {} ({})",
        stats.cells,
        stats.cache_hits,
        stats.simulated,
        store.location(),
        store.kind()
    );

    for p in &selected {
        banner(p, cfg);
        match (p.report)(store) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("pp-sweep: report for {} failed: {e}", p.name);
                return 1;
            }
        }
        println!();
    }

    // Trace capture happens after the run so it works on cache hits too
    // (trial 0's seed is a pure function of the spec), and before the
    // metrics export so the trace series land in the same snapshot.
    if let Some(glob) = trace_glob {
        match crate::trace::trace_matching(&cells, store, glob) {
            Ok(traced) if traced.is_empty() => {
                eprintln!("  traces: no cell stem matches `{glob}`");
            }
            Ok(traced) => {
                let fresh = traced.iter().filter(|t| t.fresh).count();
                let bytes: u64 = traced.iter().map(|t| t.bytes).sum();
                eprintln!(
                    "  traces: {} cells ({} recorded, {} reused), {} bytes",
                    traced.len(),
                    fresh,
                    traced.len() - fresh,
                    bytes
                );
            }
            Err(e) => {
                eprintln!("pp-sweep: trace capture failed: {e}");
                return 1;
            }
        }
    }

    // Phase timelines ride the same post-run slot as traces: trial 0's
    // seed is a pure function of the spec, so cache hits still yield a
    // timeline, and capturing before the metrics export lands the
    // timeline counters in the same snapshot.
    if let Some(glob) = timelines_glob {
        match crate::timeline::timeline_matching(&cells, store, glob) {
            Ok(timelines) if timelines.is_empty() => {
                eprintln!("  timelines: no classifiable cell stem matches `{glob}`");
            }
            Ok(timelines) => {
                let fresh = timelines.iter().filter(|t| t.fresh).count();
                let stable = timelines.iter().filter(|t| t.stable).count();
                eprintln!(
                    "  timelines: {} cells ({} recorded, {} reused), {} stabilised",
                    timelines.len(),
                    fresh,
                    timelines.len() - fresh,
                    stable
                );
            }
            Err(e) => {
                eprintln!("pp-sweep: timeline capture failed: {e}");
                return 1;
            }
        }
    }

    // Every run leaves a machine-readable performance record next to its
    // results; --metrics <path> exports an extra copy wherever asked.
    let mut targets = vec![default_metrics_path(store)];
    targets.extend(metrics_to.map(std::path::PathBuf::from));
    for path in &targets {
        if let Err(e) = crate::telemetry::write_metrics(path) {
            eprintln!("pp-sweep: cannot write metrics to {}: {e}", path.display());
            return 1;
        }
        eprintln!("  metrics: {}", path.display());
    }
    0
}

/// `pp-sweep metrics [path]`: parse an exported metrics file, check the
/// core engine counters are present, and print the summary table.
fn metrics_cmd(store: &ResultStore, path: &std::path::Path) -> i32 {
    println!("{}", backend_line(store));
    let snap = match pp_telemetry::Snapshot::read_jsonl(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pp-sweep: cannot read metrics: {e}");
            return 1;
        }
    };
    if let Err(e) = crate::telemetry::validate_snapshot(&snap) {
        eprintln!("pp-sweep: {}: invalid metrics export: {e}", path.display());
        return 1;
    }
    if let Some(warning) = stale_export_warning(&snap) {
        eprintln!("pp-sweep: warning: {warning}");
    }
    println!("metrics from {}:", path.display());
    print!("{}", snap.summary_table());
    // One derived line when the batch kernel ran: how often it leapt vs
    // handed back to exact stepping, the observable batch/exact crossover.
    let batches = snap.value("engine.leap_batches").unwrap_or(0);
    if batches > 0 {
        let fallbacks = snap.value("engine.batch_fallbacks").unwrap_or(0);
        println!(
            "batch kernel: {batches} tau-leaps applied, {fallbacks} fallbacks to exact stepping"
        );
    }
    0
}

/// Explain why an export cannot be trusted as "the last run", if so.
///
/// Exports are stamped with the cell-key schema version that produced
/// them (`sweep.export.key_version`). A missing or older stamp means the
/// file predates the current schema: the cells it describes live under
/// keys the running binary no longer addresses, so showing its counters
/// as a digest of "the last run" would silently report zeros (or stale
/// totals) for current work.
fn stale_export_warning(snap: &pp_telemetry::Snapshot) -> Option<String> {
    let current = crate::telemetry::key_version_num();
    match snap.value(crate::telemetry::KEY_VERSION_SERIES) {
        Some(v) if v == current => None,
        Some(v) => Some(format!(
            "metrics export was written under cell-key schema v{v}, but this binary uses \
v{current} — counters describe cells the current schema no longer addresses; \
re-run `pp-sweep run` to refresh"
        )),
        None => Some(format!(
            "metrics export carries no cell-key schema stamp (predates v{current}) — \
re-run `pp-sweep run` to refresh"
        )),
    }
}

/// One compact line of engine/sweep totals from the default metrics
/// export, if a run has produced one.
fn status_telemetry(store: &ResultStore) {
    println!("{}", backend_line(store));
    let path = default_metrics_path(store);
    let Ok(snap) = pp_telemetry::Snapshot::read_jsonl(&path) else {
        return; // no export yet — say nothing rather than alarm
    };
    if let Some(warning) = stale_export_warning(&snap) {
        // A stale export must not masquerade as a zeros digest of the
        // last run — say what happened and skip the digest entirely.
        println!("telemetry: {warning} ({})", path.display());
        return;
    }
    let v = |name: &str| snap.value(name).unwrap_or(0);
    println!(
        "telemetry (last run): {} interactions ({} effective) over {} engine runs; \
{} cells ({} cached), {} trials simulated, {} recovered — {}",
        v("engine.interactions"),
        v("engine.effective_interactions"),
        v("engine.runs"),
        v("sweep.cells.completed"),
        v("sweep.cells.cache_hits"),
        v("sweep.trials.simulated"),
        v("sweep.trials.recovered"),
        path.display()
    );
    // Batch-kernel crossover line, only when the tau-leap kernel ran.
    let batches = v("engine.leap_batches");
    if batches > 0 {
        println!(
            "batch kernel (last run): {batches} tau-leaps, {} exact fallbacks",
            v("engine.batch_fallbacks")
        );
    }
    // Timeline line only when the last run captured phase timelines.
    let timelines = v("timeline.cells.recorded") + v("timeline.cells.reused");
    if timelines > 0 {
        println!(
            "timelines (last run): {timelines} cells ({} freshly recorded, {} phase segments, \
{} checkpoints)",
            v("timeline.cells.recorded"),
            v("timeline.segments"),
            v("timeline.checkpoints"),
        );
    }
    // Second line only when the last run captured traces.
    let effective = v("trace.records.effective");
    if effective > 0 {
        println!(
            "traces (last run): {} effective records ({} bytes); chains: {} born, \
{} completed, {} aborted, {} demolished",
            effective,
            v("trace.bytes"),
            v("trace.chain.births"),
            v("trace.chain.completions"),
            v("trace.chain.aborts"),
            v("trace.chain.demolitions"),
        );
    }
}

fn status(p: &Plan, store: &ResultStore) {
    let mut complete = 0usize;
    let mut partial = 0usize;
    let mut partial_trials = 0u64;
    let mut pending = 0usize;
    let mut traced = 0usize;
    let mut timelined = 0usize;
    for spec in &p.cells {
        if crate::trace::trace_path(store, spec).exists() {
            traced += 1;
        }
        if crate::timeline::timeline_path(store, spec).exists() {
            timelined += 1;
        }
        if store.load(spec).is_some() {
            complete += 1;
        } else {
            let st = store.journal_state(spec);
            if st.records.is_empty() {
                pending += 1;
            } else {
                partial += 1;
                partial_trials += st.records.len() as u64;
            }
        }
    }
    let state = if complete == p.cells.len() {
        "complete"
    } else if complete + partial > 0 {
        "in progress"
    } else {
        "not started"
    };
    let mut traces = if traced > 0 {
        format!(", {traced} traced")
    } else {
        String::new()
    };
    if timelined > 0 {
        traces.push_str(&format!(", {timelined} timelined"));
    }
    println!(
        "{:<18} {:>11}: {}/{} cells complete, {} partial ({} journaled trials), {} pending{}",
        p.name,
        state,
        complete,
        p.cells.len(),
        partial,
        partial_trials,
        pending,
        traces
    );
}

fn gc(cfg: PlanConfig, store: &ResultStore) -> i32 {
    // Everything a *current* plan (under the current env knobs) can
    // address is live; anything else — stale KEY_VERSION entries, cells
    // from other PP_TRIALS/PP_SEED settings, leftover .tmp files — is
    // garbage. That is the point: gc reclaims results the current
    // configuration can no longer reach. What reclaiming *means* is the
    // backend's business: the file store deletes dead files, the log
    // store drops dead index entries and compacts, the memory store
    // forgets.
    let mut live: HashSet<String> = HashSet::new();
    for p in plan::plans(cfg) {
        for c in &p.cells {
            live.insert(c.file_stem());
        }
    }
    let outcome = match store.gc(&live) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pp-sweep: gc failed: {e}");
            return 1;
        }
    };
    for item in &outcome.removed {
        println!("removed {item}");
    }
    println!(
        "gc: removed {}, kept {} (store: {})",
        outcome.removed.len(),
        outcome.kept,
        store.location()
    );
    println!("{}", backend_line(store));
    0
}

fn unknown_plan(name: &str, cfg: PlanConfig) -> i32 {
    eprintln!("pp-sweep: unknown plan '{name}'; available:");
    for p in plan::plans(cfg) {
        eprintln!("  {}", p.name);
    }
    2
}

/// Entry point for the legacy thin-wrapper binaries (`fig3`, `baselines`,
/// …): run the named plan with live progress, print its banner + report —
/// the same console contract the old standalone binaries had, now
/// cache-aware and resumable.
pub fn delegate(plan_name: &str) {
    let code = main_with_args(&["run".to_string(), plan_name.to_string()]);
    if code != 0 {
        std::process::exit(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_commands_and_plans_fail_cleanly() {
        assert_eq!(main_with_args(&[]), 2);
        assert_eq!(main_with_args(&["frobnicate".into()]), 2);
        assert_eq!(main_with_args(&["run".into(), "not_a_plan".into()]), 2);
    }

    #[test]
    fn stale_exports_are_called_out_not_zeroed() {
        let current = crate::telemetry::key_version_num();
        assert!(current >= 1);
        // No schema stamp: the export predates versioned exports.
        let snap = pp_telemetry::Snapshot::from_jsonl(
            "{\"kind\":\"counter\",\"name\":\"engine.runs\",\"value\":0}\n",
        )
        .unwrap();
        let warning = stale_export_warning(&snap).expect("unstamped export flagged");
        assert!(warning.contains("no cell-key schema stamp"), "{warning}");
        // Older stamp: written under a previous KEY_VERSION.
        let text = format!(
            "{{\"kind\":\"gauge\",\"name\":\"sweep.export.key_version\",\"value\":{}}}\n",
            current - 1
        );
        let snap = pp_telemetry::Snapshot::from_jsonl(&text).unwrap();
        let warning = stale_export_warning(&snap).expect("old stamp flagged");
        assert!(
            warning.contains(&format!("schema v{}", current - 1)),
            "{warning}"
        );
        // Current stamp: trustworthy, no warning.
        let text = format!(
            "{{\"kind\":\"gauge\",\"name\":\"sweep.export.key_version\",\"value\":{current}}}\n"
        );
        let snap = pp_telemetry::Snapshot::from_jsonl(&text).unwrap();
        assert_eq!(stale_export_warning(&snap), None);
    }

    #[test]
    fn list_and_status_do_not_touch_the_store() {
        // Point the store somewhere empty; list/status must succeed
        // without creating anything.
        let dir = std::env::temp_dir().join(format!("pp_sweep_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::at(&dir);
        let cfg = PlanConfig {
            trials: 2,
            master_seed: 1,
        };
        for p in plan::plans(cfg) {
            status(&p, &store);
        }
        list(cfg);
        assert!(!dir.exists());
    }
}
