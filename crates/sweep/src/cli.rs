//! The `pp-sweep` command-line interface.
//!
//! ```text
//! pp-sweep list               # registered plans
//! pp-sweep run <plan>|all     # execute (cache-aware) and report
//! pp-sweep resume <plan>|all  # alias of run: resume IS the default
//! pp-sweep status [<plan>]    # per-plan cell completion state
//! pp-sweep gc                 # drop store files no current plan references
//! ```
//!
//! Environment: `PP_TRIALS`, `PP_SEED`, `PP_RESULTS_DIR`, `PP_FIG6_KMAX`
//! — all participate in cell identity, so changing them addresses
//! different store entries rather than corrupting existing ones.

use std::collections::HashSet;

use crate::exec::ExecOptions;
use crate::journal;
use crate::observer::ConsoleProgress;
use crate::plan::{self, Plan, PlanConfig};
use crate::runner;
use crate::store::ResultStore;

/// Entry point; returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    let cfg = PlanConfig::from_env();
    let store = ResultStore::default_location();
    match args {
        [] => {
            eprintln!("{USAGE}");
            2
        }
        [cmd] if cmd == "list" => {
            list(cfg);
            0
        }
        [cmd, name] if cmd == "run" || cmd == "resume" => run(name, cfg, &store),
        [cmd] if cmd == "status" => {
            for p in plan::plans(cfg) {
                status(&p, &store);
            }
            0
        }
        [cmd, name] if cmd == "status" => match plan::find(name, cfg) {
            Some(p) => {
                status(&p, &store);
                0
            }
            None => unknown_plan(name, cfg),
        },
        [cmd] if cmd == "gc" => gc(cfg, &store),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

const USAGE: &str =
    "usage: pp-sweep <list | run <plan|all> | resume <plan|all> | status [plan] | gc>";

fn list(cfg: PlanConfig) {
    println!(
        "registered plans (PP_TRIALS={}, PP_SEED={}):",
        cfg.trials, cfg.master_seed
    );
    for p in plan::plans(cfg) {
        println!(
            "  {:<18} {:>4} cells  {:>7} trials  — {}",
            p.name,
            p.cells.len(),
            p.total_trials(),
            p.description
        );
    }
    println!("  {:<18} union of the above", "all");
}

fn banner(p: &Plan, cfg: PlanConfig) {
    println!("== {} — {}", p.title, p.description);
    println!(
        "   trials/cell = {}, master seed = {} (override with PP_TRIALS / PP_SEED)",
        cfg.trials, cfg.master_seed
    );
    println!();
}

fn run(name: &str, cfg: PlanConfig, store: &ResultStore) -> i32 {
    let selected: Vec<Plan> = if name == "all" {
        plan::plans(cfg)
    } else {
        match plan::find(name, cfg) {
            Some(p) => vec![p],
            None => return unknown_plan(name, cfg),
        }
    };

    // Union of cells first (dedupes across plans), then every report.
    let cells: Vec<_> = selected.iter().flat_map(|p| p.cells.clone()).collect();
    let progress = ConsoleProgress::new();
    let stats = match runner::run_cells(&cells, store, &progress, &ExecOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            progress.finish();
            eprintln!("pp-sweep: run failed: {e}");
            return 1;
        }
    };
    progress.finish();
    eprintln!(
        "  {} cells complete ({} from cache, {} executed); store: {}",
        stats.cells,
        stats.cache_hits,
        stats.simulated,
        store.dir().display()
    );

    for p in &selected {
        banner(p, cfg);
        match (p.report)(store) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("pp-sweep: report for {} failed: {e}", p.name);
                return 1;
            }
        }
        println!();
    }
    0
}

fn status(p: &Plan, store: &ResultStore) {
    let mut complete = 0usize;
    let mut partial = 0usize;
    let mut partial_trials = 0u64;
    let mut pending = 0usize;
    for spec in &p.cells {
        if store.load(spec).is_some() {
            complete += 1;
        } else {
            let st = journal::load(&store.journal_path(spec));
            if st.records.is_empty() {
                pending += 1;
            } else {
                partial += 1;
                partial_trials += st.records.len() as u64;
            }
        }
    }
    let state = if complete == p.cells.len() {
        "complete"
    } else if complete + partial > 0 {
        "in progress"
    } else {
        "not started"
    };
    println!(
        "{:<18} {:>11}: {}/{} cells complete, {} partial ({} journaled trials), {} pending",
        p.name,
        state,
        complete,
        p.cells.len(),
        partial,
        partial_trials,
        pending
    );
}

fn gc(cfg: PlanConfig, store: &ResultStore) -> i32 {
    // Everything a *current* plan (under the current env knobs) can
    // address is live; anything else — stale KEY_VERSION files, cells
    // from other PP_TRIALS/PP_SEED settings, leftover .tmp files — is
    // garbage. That is the point: gc reclaims results the current
    // configuration can no longer reach.
    let mut live: HashSet<String> = HashSet::new();
    for p in plan::plans(cfg) {
        for c in &p.cells {
            live.insert(format!("{}.json", c.file_stem()));
            live.insert(format!("{}.jsonl", c.file_stem()));
        }
    }
    let files = match store.existing_files() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pp-sweep: cannot list store: {e}");
            return 1;
        }
    };
    let mut removed = 0usize;
    let mut kept = 0usize;
    for f in files {
        let name = f
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if live.contains(&name) {
            kept += 1;
        } else {
            match std::fs::remove_file(&f) {
                Ok(()) => {
                    println!("removed {}", f.display());
                    removed += 1;
                }
                Err(e) => eprintln!("pp-sweep: cannot remove {}: {e}", f.display()),
            }
        }
    }
    println!(
        "gc: removed {removed}, kept {kept} (store: {})",
        store.dir().display()
    );
    0
}

fn unknown_plan(name: &str, cfg: PlanConfig) -> i32 {
    eprintln!("pp-sweep: unknown plan '{name}'; available:");
    for p in plan::plans(cfg) {
        eprintln!("  {}", p.name);
    }
    2
}

/// Entry point for the legacy thin-wrapper binaries (`fig3`, `baselines`,
/// …): run the named plan with live progress, print its banner + report —
/// the same console contract the old standalone binaries had, now
/// cache-aware and resumable.
pub fn delegate(plan_name: &str) {
    let code = main_with_args(&["run".to_string(), plan_name.to_string()]);
    if code != 0 {
        std::process::exit(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_commands_and_plans_fail_cleanly() {
        assert_eq!(main_with_args(&[]), 2);
        assert_eq!(main_with_args(&["frobnicate".into()]), 2);
        assert_eq!(main_with_args(&["run".into(), "not_a_plan".into()]), 2);
    }

    #[test]
    fn list_and_status_do_not_touch_the_store() {
        // Point the store somewhere empty; list/status must succeed
        // without creating anything.
        let dir = std::env::temp_dir().join(format!("pp_sweep_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::at(&dir);
        let cfg = PlanConfig {
            trials: 2,
            master_seed: 1,
        };
        for p in plan::plans(cfg) {
            status(&p, &store);
        }
        list(cfg);
        assert!(!dir.exists());
    }
}
