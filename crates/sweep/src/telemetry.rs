//! Sweep-layer metrics: cache behaviour, journal recovery, per-cell cost,
//! and shard utilisation.
//!
//! Everything lands in the process-wide [`pp_telemetry`] registry so one
//! `--metrics` export covers all three layers — engine counters
//! (`engine.*`, flushed by the observers the analysis runner attaches),
//! runner/store counters (`sweep.*`, recorded here), and verifier
//! counters (`verify.*`). Global series aggregate the whole run;
//! per-cell series are labelled with the cell's store file stem
//! (`sweep.cell.trials{cell=<stem>}`), so a fig3 export can be joined
//! back to the result files it describes.
//!
//! | name                           | kind      | meaning |
//! |--------------------------------|-----------|---------|
//! | `sweep.cells.completed`        | counter   | cells finished (any source) |
//! | `sweep.cells.cache_hits`       | counter   | cells served from the store |
//! | `sweep.cells.cache_misses`     | counter   | cells that needed execution |
//! | `sweep.trials.simulated`       | counter   | trials actually simulated |
//! | `sweep.trials.censored`        | counter   | simulated trials that hit the budget |
//! | `sweep.trials.recovered`       | counter   | trials replayed from journals |
//! | `sweep.journal.discarded_lines`| counter   | malformed/truncated journal lines dropped |
//! | `sweep.cell.wall_micros`       | histogram | wall time per executed cell |
//! | `sweep.run.wall_micros`        | counter   | wall time of `run_cells` calls |
//! | `sweep.shard.workers`          | gauge     | worker threads in the pool |
//! | `sweep.shard.busy_micros`      | counter   | summed per-cell wall time |
//! | `sweep.shard.utilisation_pct`  | gauge     | busy / (wall × workers), percent |

use pp_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Shared handles to the sweep's global metric series in one registry.
#[derive(Clone, Debug)]
pub struct SweepMetrics {
    /// Cells finished, whether cached, recovered, or simulated.
    pub cells_completed: Arc<Counter>,
    /// Cells served entirely from the result store.
    pub cache_hits: Arc<Counter>,
    /// Cells that had to execute at least one trial.
    pub cache_misses: Arc<Counter>,
    /// Trials simulated fresh.
    pub trials_simulated: Arc<Counter>,
    /// Fresh trials that hit their interaction budget.
    pub trials_censored: Arc<Counter>,
    /// Trials recovered from a crash journal instead of re-simulated.
    pub trials_recovered: Arc<Counter>,
    /// Malformed or truncated journal lines dropped during recovery.
    pub journal_discarded_lines: Arc<Counter>,
    /// Wall time of each executed (non-cache-hit) cell, microseconds.
    pub cell_wall_micros: Arc<Histogram>,
    /// Total wall time spent inside `run_cells`, microseconds.
    pub run_wall_micros: Arc<Counter>,
    /// Worker threads available to the shard pool.
    pub shard_workers: Arc<Gauge>,
    /// Summed per-cell wall time — the pool's busy mass, microseconds.
    pub shard_busy_micros: Arc<Counter>,
    /// `busy / (wall × workers)` of the latest run, in percent.
    pub shard_utilisation_pct: Arc<Gauge>,
}

impl SweepMetrics {
    /// Resolve (registering on first use) the sweep series in `reg`.
    pub fn register_in(reg: &Registry) -> Self {
        SweepMetrics {
            cells_completed: reg.counter("sweep.cells.completed"),
            cache_hits: reg.counter("sweep.cells.cache_hits"),
            cache_misses: reg.counter("sweep.cells.cache_misses"),
            trials_simulated: reg.counter("sweep.trials.simulated"),
            trials_censored: reg.counter("sweep.trials.censored"),
            trials_recovered: reg.counter("sweep.trials.recovered"),
            journal_discarded_lines: reg.counter("sweep.journal.discarded_lines"),
            cell_wall_micros: reg.histogram("sweep.cell.wall_micros"),
            run_wall_micros: reg.counter("sweep.run.wall_micros"),
            shard_workers: reg.gauge("sweep.shard.workers"),
            shard_busy_micros: reg.counter("sweep.shard.busy_micros"),
            shard_utilisation_pct: reg.gauge("sweep.shard.utilisation_pct"),
        }
    }
}

/// The sweep's series in the process-wide registry.
pub fn sweep_metrics() -> &'static SweepMetrics {
    static GLOBAL: OnceLock<SweepMetrics> = OnceLock::new();
    GLOBAL.get_or_init(|| SweepMetrics::register_in(pp_telemetry::global()))
}

/// Per-cell accounting recorded once when a cell completes.
#[derive(Clone, Copy, Debug)]
pub struct CellAccounting<'a> {
    /// The cell's store file stem — the label joining metrics to results.
    pub file_stem: &'a str,
    /// Whether the cell was served from the store without executing.
    pub cache_hit: bool,
    /// Wall time from cache probe to completion, microseconds.
    pub wall_micros: u64,
    /// Trials in the finished cell.
    pub trials: u64,
    /// Of those, recovered from the journal.
    pub recovered: u64,
    /// Of those, censored (budget hit).
    pub censored: u64,
    /// Summed interactions over the cell's completed trials.
    pub interactions: u64,
}

/// Record one completed cell: bumps the global series and writes the
/// per-cell labelled series into the global registry.
pub fn record_cell(acct: &CellAccounting<'_>) {
    let m = sweep_metrics();
    m.cells_completed.inc();
    if acct.cache_hit {
        m.cache_hits.inc();
    } else {
        m.cache_misses.inc();
        m.cell_wall_micros.record(acct.wall_micros);
        m.shard_busy_micros.add(acct.wall_micros);
    }
    let reg = pp_telemetry::global();
    let labels: &[(&str, &str)] = &[("cell", acct.file_stem)];
    reg.gauge_with("sweep.cell.cache_hit", labels)
        .set(u64::from(acct.cache_hit));
    reg.gauge_with("sweep.cell.micros", labels)
        .set(acct.wall_micros);
    reg.counter_with("sweep.cell.trials", labels)
        .add(acct.trials);
    reg.counter_with("sweep.cell.recovered", labels)
        .add(acct.recovered);
    reg.counter_with("sweep.cell.censored", labels)
        .add(acct.censored);
    reg.counter_with("sweep.cell.interactions", labels)
        .add(acct.interactions);
}

/// Gauge stamping every export with the cell-key schema version that
/// produced it (`KEY_VERSION` `"v4"` → `4`). `pp-sweep status` and
/// `pp-sweep metrics` compare it against the running binary's version to
/// tell a stale export apart from a genuinely idle run — without the
/// stamp, a `metrics.jsonl` left behind by an older schema reads as an
/// all-zeros digest.
pub const KEY_VERSION_SERIES: &str = "sweep.export.key_version";

/// Numeric form of [`crate::spec::KEY_VERSION`] (`"v4"` → `4`).
pub fn key_version_num() -> u64 {
    crate::spec::KEY_VERSION
        .trim_start_matches('v')
        .parse()
        .unwrap_or(0)
}

/// Engine counters every sweep export must carry — the CI smoke test and
/// `pp-sweep metrics` both validate against this list.
pub const CORE_ENGINE_COUNTERS: &[&str] = &[
    "engine.runs",
    "engine.interactions",
    "engine.effective_interactions",
    "engine.leap_batches",
    "engine.batch_fallbacks",
];

/// Validate an exported snapshot: the core engine counters must be
/// present, and whenever the sweep simulated at least one trial,
/// `engine.runs` must be non-zero — a simulated trial that left no
/// engine tally means the observer wiring is broken. (An all-cache-hit
/// run legitimately exports zero engine runs.) At least one `sweep.*`
/// series must exist.
pub fn validate_snapshot(snap: &Snapshot) -> Result<(), String> {
    for name in CORE_ENGINE_COUNTERS {
        if snap.value(name).is_none() {
            return Err(format!("missing core engine counter {name}"));
        }
    }
    let simulated = snap.value("sweep.trials.simulated").unwrap_or(0);
    if simulated > 0 && snap.value("engine.runs") == Some(0) {
        return Err(format!(
            "{simulated} trials simulated but engine.runs is zero — observer wiring broken"
        ));
    }
    if !snap.metrics.iter().any(|m| m.name.starts_with("sweep.")) {
        return Err("no sweep.* series in export".into());
    }
    // Trace diagnostics, when present, must be internally consistent:
    // effective records imply per-rule attribution, and rule 8 emits
    // exactly two demolishers per abort, so finished demolitions can
    // never exceed twice the aborts (censored runs leave some pending).
    let traced = snap.value("trace.records.effective").unwrap_or(0);
    let firings: u64 = snap
        .metrics
        .iter()
        .filter(|m| m.name == "trace.rule.firings")
        .filter_map(|m| match m.data {
            pp_telemetry::MetricData::Counter(v) => Some(v),
            _ => None,
        })
        .sum();
    if firings > traced {
        return Err(format!(
            "{firings} rule firings attributed but only {traced} effective records traced"
        ));
    }
    let aborts = snap.value("trace.chain.aborts").unwrap_or(0);
    let demolitions = snap.value("trace.chain.demolitions").unwrap_or(0);
    if demolitions > 2 * aborts {
        return Err(format!(
            "{demolitions} demolitions finished from only {aborts} aborts (rule 8 spawns two demolishers each)"
        ));
    }
    Ok(())
}

/// Export the global registry as JSONL to `path`.
///
/// Forces registration of the engine and sweep series first, so every
/// export carries the core counters (at zero if nothing ran) — an
/// all-cache-hit run still yields a complete, validatable file.
pub fn write_metrics(path: &Path) -> std::io::Result<()> {
    register_all_series();
    Snapshot::capture_global().write_jsonl(path)
}

/// Force registration of the engine, sweep, and trace series in the
/// global registry and stamp the cell-key schema version, so a snapshot
/// captured right after carries every core counter (at zero if nothing
/// ran). `write_metrics` calls this before its export; `pp-serve`'s
/// `GET /metrics` calls it before rendering the Prometheus exposition.
pub fn register_all_series() {
    let _ = pp_engine::metrics::engine_metrics();
    let _ = sweep_metrics();
    pp_trace::export::register_series(pp_telemetry::global());
    // Stamp the schema version so readers can detect stale exports.
    pp_telemetry::global()
        .gauge(KEY_VERSION_SERIES)
        .set(key_version_num());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_telemetry::MetricData;

    #[test]
    fn record_cell_updates_global_and_labelled_series() {
        let before = Snapshot::capture_global();
        let hits0 = before.value("sweep.cells.cache_hits").unwrap_or(0);
        let done0 = before.value("sweep.cells.completed").unwrap_or(0);
        record_cell(&CellAccounting {
            file_stem: "test_telemetry_cell",
            cache_hit: false,
            wall_micros: 1500,
            trials: 4,
            recovered: 1,
            censored: 0,
            interactions: 999,
        });
        record_cell(&CellAccounting {
            file_stem: "test_telemetry_cell",
            cache_hit: true,
            wall_micros: 10,
            trials: 4,
            recovered: 0,
            censored: 0,
            interactions: 999,
        });
        let after = Snapshot::capture_global();
        assert_eq!(after.value("sweep.cells.cache_hits"), Some(hits0 + 1));
        assert_eq!(after.value("sweep.cells.completed"), Some(done0 + 2));
        let labelled = after
            .metrics
            .iter()
            .find(|m| {
                m.name == "sweep.cell.trials"
                    && m.labels == [("cell".to_string(), "test_telemetry_cell".to_string())]
            })
            .expect("labelled per-cell series");
        let MetricData::Counter(trials) = labelled.data else {
            panic!("expected counter");
        };
        assert!(trials >= 8);
    }

    #[test]
    fn key_version_stamp_matches_the_spec_schema() {
        let expected: u64 = crate::spec::KEY_VERSION
            .trim_start_matches('v')
            .parse()
            .unwrap();
        assert!(expected > 0, "KEY_VERSION must stay numeric-after-v");
        assert_eq!(key_version_num(), expected);
        let dir = std::env::temp_dir().join(format!("pp_sweep_keyver_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        write_metrics(&path).unwrap();
        let snap = Snapshot::read_jsonl(&path).unwrap();
        assert_eq!(snap.value(KEY_VERSION_SERIES), Some(expected));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_incomplete_exports() {
        assert!(validate_snapshot(&Snapshot::default()).is_err());
        let text = "{\"kind\":\"counter\",\"name\":\"engine.runs\",\"value\":0}\n";
        let snap = Snapshot::from_jsonl(text).unwrap();
        assert!(
            validate_snapshot(&snap).is_err(),
            "missing counters rejected"
        );
        // Trials simulated but no engine runs tallied: broken wiring.
        let text = "\
{\"kind\":\"counter\",\"name\":\"engine.runs\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.interactions\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.effective_interactions\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.leap_batches\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.batch_fallbacks\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"sweep.trials.simulated\",\"value\":7}\n";
        let snap = Snapshot::from_jsonl(text).unwrap();
        assert!(
            validate_snapshot(&snap).is_err(),
            "zero runs with simulated trials rejected"
        );
        // All-cache-hit run: zero engine runs is legitimate.
        let text = "\
{\"kind\":\"counter\",\"name\":\"engine.runs\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.interactions\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.effective_interactions\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.leap_batches\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.batch_fallbacks\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"sweep.trials.simulated\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"sweep.cells.cache_hits\",\"value\":12}\n";
        let snap = Snapshot::from_jsonl(text).unwrap();
        assert!(validate_snapshot(&snap).is_ok(), "cached run accepted");
        let text = "\
{\"kind\":\"counter\",\"name\":\"engine.runs\",\"value\":5}\n\
{\"kind\":\"counter\",\"name\":\"engine.interactions\",\"value\":100}\n\
{\"kind\":\"counter\",\"name\":\"engine.effective_interactions\",\"value\":60}\n\
{\"kind\":\"counter\",\"name\":\"engine.leap_batches\",\"value\":2}\n\
{\"kind\":\"counter\",\"name\":\"engine.batch_fallbacks\",\"value\":1}\n\
{\"kind\":\"counter\",\"name\":\"sweep.cells.completed\",\"value\":1}\n";
        let snap = Snapshot::from_jsonl(text).unwrap();
        assert!(validate_snapshot(&snap).is_ok());
    }

    #[test]
    fn validate_checks_trace_consistency() {
        let base = "\
{\"kind\":\"counter\",\"name\":\"engine.runs\",\"value\":5}\n\
{\"kind\":\"counter\",\"name\":\"engine.interactions\",\"value\":100}\n\
{\"kind\":\"counter\",\"name\":\"engine.effective_interactions\",\"value\":60}\n\
{\"kind\":\"counter\",\"name\":\"engine.leap_batches\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"engine.batch_fallbacks\",\"value\":0}\n\
{\"kind\":\"counter\",\"name\":\"sweep.cells.completed\",\"value\":1}\n";
        // More rule firings attributed than effective records traced.
        let text = format!(
            "{base}\
{{\"kind\":\"counter\",\"name\":\"trace.records.effective\",\"value\":10}}\n\
{{\"kind\":\"counter\",\"name\":\"trace.rule.firings\",\"labels\":{{\"rule\":\"r1\"}},\"value\":11}}\n"
        );
        let snap = Snapshot::from_jsonl(&text).unwrap();
        assert!(
            validate_snapshot(&snap).is_err(),
            "over-attribution rejected"
        );
        // Rule 8 spawns two demolishers per abort; three finished from one
        // abort is impossible.
        let text = format!(
            "{base}\
{{\"kind\":\"counter\",\"name\":\"trace.chain.aborts\",\"value\":1}}\n\
{{\"kind\":\"counter\",\"name\":\"trace.chain.demolitions\",\"value\":3}}\n"
        );
        let snap = Snapshot::from_jsonl(&text).unwrap();
        assert!(
            validate_snapshot(&snap).is_err(),
            "impossible demolitions rejected"
        );
        // A consistent trace export passes.
        let text = format!(
            "{base}\
{{\"kind\":\"counter\",\"name\":\"trace.records.effective\",\"value\":10}}\n\
{{\"kind\":\"counter\",\"name\":\"trace.rule.firings\",\"labels\":{{\"rule\":\"r1\"}},\"value\":6}}\n\
{{\"kind\":\"counter\",\"name\":\"trace.chain.aborts\",\"value\":2}}\n\
{{\"kind\":\"counter\",\"name\":\"trace.chain.demolitions\",\"value\":4}}\n"
        );
        let snap = Snapshot::from_jsonl(&text).unwrap();
        assert!(
            validate_snapshot(&snap).is_ok(),
            "consistent trace accepted"
        );
    }
}
