//! Append-only per-cell trial journal: the checkpoint/resume mechanism.
//!
//! While a cell runs, every finished trial is appended to
//! `<store>/<cell>.jsonl` — one JSON object per line, flushed
//! immediately. If the process dies (OOM, ctrl-C, power), the next run
//! loads the journal, keeps every complete line, and re-runs only the
//! missing trials. Because trial `i`'s seed is `derive(cell_seed, i)`
//! regardless of which trials ran before it, the resumed cell is
//! bit-identical to an uninterrupted one.
//!
//! Robustness rules:
//! * a torn final line (crash mid-write) is detected by its parse failure
//!   and discarded, along with anything after it;
//! * duplicate trial indices keep the first occurrence (a crash between
//!   "write" and "mark done" can at worst duplicate work, not corrupt it);
//! * trials may appear out of order (workers finish when they finish).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::Value;
use crate::store::TrialRecord;

/// What a journal load found.
#[derive(Debug)]
pub struct JournalState {
    /// Recovered records, keyed by trial index.
    pub records: BTreeMap<u64, TrialRecord>,
    /// Number of trailing lines discarded as torn/corrupt.
    pub discarded_lines: usize,
}

/// Load a journal file. A missing file is an empty journal. Lines after
/// the first unparseable one are dropped (see module docs): a torn line
/// means the writer died mid-append, so nothing after it can be trusted
/// to align with line boundaries.
pub fn load(path: &Path) -> JournalState {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            return JournalState {
                records: BTreeMap::new(),
                discarded_lines: 0,
            }
        }
    };
    let mut records = BTreeMap::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Value::parse(line)
            .ok()
            .and_then(|v| TrialRecord::from_json(&v));
        match rec {
            Some(r) => {
                records.entry(r.trial).or_insert(r);
            }
            None => {
                return JournalState {
                    records,
                    discarded_lines: lines.len() - i,
                };
            }
        }
    }
    JournalState {
        records,
        discarded_lines: 0,
    }
}

/// Append-side handle. Thread-safe: workers share one writer, and each
/// record is written and flushed as a single line so concurrent appends
/// interleave at line granularity only.
pub struct JournalWriter {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl JournalWriter {
    /// Open (or create) the journal for appending.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<JournalWriter> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(JournalWriter {
            path,
            file: Mutex::new(file),
        })
    }

    /// Append one record (single write + flush — the crash-safety unit).
    pub fn append(&self, record: &TrialRecord) -> std::io::Result<()> {
        let mut line = record.to_json().encode();
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pp_sweep_journal_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{tag}.jsonl"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_then_load_roundtrips() {
        let path = temp_journal("roundtrip");
        let w = JournalWriter::open(&path).unwrap();
        w.append(&TrialRecord::summary(2, Some(20))).unwrap();
        w.append(&TrialRecord::summary(0, Some(10))).unwrap();
        w.append(&TrialRecord::summary(1, None)).unwrap();
        let st = load(&path);
        assert_eq!(st.discarded_lines, 0);
        assert_eq!(st.records.len(), 3);
        assert_eq!(st.records[&0], TrialRecord::summary(0, Some(10)));
        assert_eq!(st.records[&1], TrialRecord::summary(1, None));
        assert_eq!(st.records[&2], TrialRecord::summary(2, Some(20)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty() {
        let st = load(Path::new("/nonexistent/journal.jsonl"));
        assert!(st.records.is_empty());
        assert_eq!(st.discarded_lines, 0);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = temp_journal("torn");
        let w = JournalWriter::open(&path).unwrap();
        w.append(&TrialRecord::summary(0, Some(10))).unwrap();
        w.append(&TrialRecord::summary(1, Some(11))).unwrap();
        // Simulate a crash mid-write: append half a record, no newline.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"trial\":2,\"interac").unwrap();
        }
        let st = load(&path);
        assert_eq!(st.records.len(), 2);
        assert_eq!(st.discarded_lines, 1);
        assert!(!st.records.contains_key(&2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_drops_the_rest() {
        let path = temp_journal("midcorrupt");
        std::fs::write(
            &path,
            "{\"trial\":0,\"interactions\":5}\nGARBAGE\n{\"trial\":1,\"interactions\":6}\n",
        )
        .unwrap();
        let st = load(&path);
        // Only the prefix before the corruption survives: after a torn
        // region, line boundaries are untrustworthy.
        assert_eq!(st.records.len(), 1);
        assert_eq!(st.discarded_lines, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_trials_keep_first() {
        let path = temp_journal("dup");
        let w = JournalWriter::open(&path).unwrap();
        w.append(&TrialRecord::summary(0, Some(1))).unwrap();
        w.append(&TrialRecord::summary(0, Some(999))).unwrap();
        let st = load(&path);
        assert_eq!(st.records[&0].interactions, Some(1));
        let _ = std::fs::remove_file(&path);
    }
}
