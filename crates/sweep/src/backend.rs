//! Pluggable store backends: where content-addressed cells live.
//!
//! The [`StoreBackend`] trait is the persistence seam under
//! [`ResultStore`](crate::store::ResultStore). All three implementations
//! persist the *same* canonical cell document
//! ([`encode_cell_doc`](crate::store::encode_cell_doc)) and verify loads
//! against the requesting spec's canonical key, so cells are
//! byte-portable between backends and a hash collision can never serve
//! the wrong cell.
//!
//! * [`FsBackend`] — one `<stem>.json` per cell plus a `<stem>.jsonl`
//!   crash journal, exactly the pre-trait layout: existing stores keep
//!   working and existing content hashes stay valid bit for bit.
//! * [`MemBackend`] — a mutex-guarded map. Journals are in-memory too,
//!   so checkpoint/resume semantics hold *within* a process (which is
//!   what the tests and an ephemeral `pp-serve` need) but nothing
//!   survives it.
//! * [`LogBackend`] — one append-only log file holding cell documents
//!   and journal trials as framed JSONL lines, an in-memory index of
//!   live cells, and copy-forward compaction once dead bytes dominate.
//!   One open handle owns the file; concurrent *processes* must not
//!   share a log.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::journal::{self, JournalState, JournalWriter};
use crate::json::Value;
use crate::spec::{fnv1a64, CellSpec};
use crate::store::{decode_cell_doc, encode_cell_doc, CellResult, TrialRecord};

/// Append side of a cell's crash journal: each record lands durably (to
/// the backend's standard) before `append` returns.
pub trait JournalSink: Send + Sync {
    /// Append one finished trial.
    fn append(&self, record: &TrialRecord) -> std::io::Result<()>;
}

impl JournalSink for JournalWriter {
    fn append(&self, record: &TrialRecord) -> std::io::Result<()> {
        JournalWriter::append(self, record)
    }
}

/// What a garbage collection did.
#[derive(Clone, Debug, Default)]
pub struct GcOutcome {
    /// Human-readable lines describing each reclaimed item.
    pub removed: Vec<String>,
    /// Items kept (live cells; for `fs`, live files).
    pub kept: usize,
}

/// Cheap backend statistics for `pp-sweep status` / `pp-serve /stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendStats {
    /// Completed cells currently addressable.
    pub cells: u64,
    /// Cells with an in-progress journal.
    pub journals: u64,
    /// Total bytes held (file sizes; log length; encoded size for mem).
    pub bytes: u64,
    /// Of those, bytes still addressable.
    pub live_bytes: u64,
    /// Of those, bytes awaiting compaction (log backend only).
    pub dead_bytes: u64,
}

impl BackendStats {
    /// One compact console line, e.g.
    /// `12 cells, 0 journals, 34567 bytes (100% live)`.
    pub fn summary(&self) -> String {
        let live_pct = (self.live_bytes * 100)
            .checked_div(self.bytes)
            .unwrap_or(100);
        format!(
            "{} cells, {} journals, {} bytes ({}% live)",
            self.cells, self.journals, self.bytes, live_pct
        )
    }
}

/// A persistence backend for completed cells and their crash journals.
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Short kind tag: `fs`, `mem`, or `log`.
    fn kind(&self) -> &'static str;
    /// Human-readable location for console output.
    fn location(&self) -> String;
    /// Load a completed cell; `None` on miss or corruption.
    fn load(&self, spec: &CellSpec) -> Option<CellResult>;
    /// Persist a completed cell (validated by the caller) and drop its
    /// journal.
    fn save(&self, spec: &CellSpec, records: Vec<TrialRecord>) -> std::io::Result<CellResult>;
    /// Recover a cell's journal (empty state if none).
    fn journal_state(&self, spec: &CellSpec) -> JournalState;
    /// Open an append sink for a cell's journal.
    fn journal_sink(&self, spec: &CellSpec) -> std::io::Result<Box<dyn JournalSink>>;
    /// Whether the cell has an in-progress journal.
    fn has_journal(&self, spec: &CellSpec) -> bool;
    /// Drop everything not addressed by a live stem; see
    /// [`ResultStore::gc`](crate::store::ResultStore::gc).
    fn gc(&self, live_stems: &HashSet<String>) -> std::io::Result<GcOutcome>;
    /// Current statistics.
    fn stats(&self) -> BackendStats;
    /// Flush buffered state (graceful-shutdown hook).
    fn flush(&self) -> std::io::Result<()>;
    /// The backing directory, for directory-backed stores.
    fn fs_dir(&self) -> Option<&Path> {
        None
    }
}

// ---------------------------------------------------------------------
// FsBackend — the historical one-file-per-cell layout.
// ---------------------------------------------------------------------

/// File store: `<dir>/<stem>.json` per cell, `<dir>/<stem>.jsonl`
/// journals. Saves are atomic (temp file + rename), so a crash can lose
/// at most an in-progress cell — never corrupt a completed one.
#[derive(Debug)]
pub struct FsBackend {
    dir: PathBuf,
}

impl FsBackend {
    /// Backend rooted at `dir` (created lazily on first save).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        FsBackend { dir: dir.into() }
    }

    fn result_path(&self, spec: &CellSpec) -> PathBuf {
        self.dir.join(format!("{}.json", spec.file_stem()))
    }

    fn journal_path(&self, spec: &CellSpec) -> PathBuf {
        self.dir.join(format!("{}.jsonl", spec.file_stem()))
    }

    /// All files currently in the store directory (results, journals,
    /// leftover temp files) — the garbage collector's view.
    pub fn existing_files(&self) -> std::io::Result<Vec<PathBuf>> {
        match std::fs::read_dir(&self.dir) {
            Ok(entries) => {
                let mut out: Vec<PathBuf> = entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.is_file())
                    .collect();
                out.sort();
                Ok(out)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

impl StoreBackend for FsBackend {
    fn kind(&self) -> &'static str {
        "fs"
    }

    fn location(&self) -> String {
        self.dir.display().to_string()
    }

    fn load(&self, spec: &CellSpec) -> Option<CellResult> {
        let text = std::fs::read_to_string(self.result_path(spec)).ok()?;
        let records = decode_cell_doc(spec, &text)?;
        Some(CellResult {
            spec: spec.clone(),
            records,
        })
    }

    fn save(&self, spec: &CellSpec, records: Vec<TrialRecord>) -> std::io::Result<CellResult> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.result_path(spec);
        let tmp = self.dir.join(format!("{}.json.tmp", spec.file_stem()));
        std::fs::write(&tmp, encode_cell_doc(spec, &records))?;
        std::fs::rename(&tmp, &path)?;
        let _ = std::fs::remove_file(self.journal_path(spec));
        Ok(CellResult {
            spec: spec.clone(),
            records,
        })
    }

    fn journal_state(&self, spec: &CellSpec) -> JournalState {
        journal::load(&self.journal_path(spec))
    }

    fn journal_sink(&self, spec: &CellSpec) -> std::io::Result<Box<dyn JournalSink>> {
        Ok(Box::new(JournalWriter::open(self.journal_path(spec))?))
    }

    fn has_journal(&self, spec: &CellSpec) -> bool {
        self.journal_path(spec).exists()
    }

    fn gc(&self, live_stems: &HashSet<String>) -> std::io::Result<GcOutcome> {
        // Everything a live stem can address is live: the result, its
        // journal, its trace. The default metrics export lives in the
        // store directory too and is never garbage.
        let mut live: HashSet<String> = HashSet::new();
        live.insert("metrics.jsonl".to_string());
        for stem in live_stems {
            live.insert(format!("{stem}.json"));
            live.insert(format!("{stem}.jsonl"));
            live.insert(format!("{stem}.trace"));
        }
        let mut out = GcOutcome::default();
        for f in self.existing_files()? {
            let name = f
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if live.contains(&name) {
                out.kept += 1;
            } else {
                std::fs::remove_file(&f)?;
                out.removed.push(f.display().to_string());
            }
        }
        Ok(out)
    }

    fn stats(&self) -> BackendStats {
        let mut s = BackendStats::default();
        for f in self.existing_files().unwrap_or_default() {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            s.bytes += len;
            s.live_bytes += len;
            match f.extension().and_then(|e| e.to_str()) {
                Some("json") => s.cells += 1,
                Some("jsonl") if f.file_name().is_some_and(|n| n != "metrics.jsonl") => {
                    s.journals += 1
                }
                _ => {}
            }
        }
        s
    }

    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }

    fn fs_dir(&self) -> Option<&Path> {
        Some(&self.dir)
    }
}

// ---------------------------------------------------------------------
// MemBackend — ephemeral, for tests and in-memory serving.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemState {
    /// Completed cells by content hash, with their encoded size.
    cells: HashMap<u64, (CellResult, u64)>,
    /// In-progress journals by content hash.
    journals: HashMap<u64, BTreeMap<u64, TrialRecord>>,
}

/// In-memory store: a mutex-guarded map of completed cells plus
/// in-process journals. Resume-after-`kill_after` works within the
/// process; nothing survives it.
#[derive(Debug, Default)]
pub struct MemBackend {
    state: Arc<Mutex<MemState>>,
}

impl MemBackend {
    /// A fresh, empty store.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

struct MemSink {
    state: Arc<Mutex<MemState>>,
    hash: u64,
}

impl JournalSink for MemSink {
    fn append(&self, record: &TrialRecord) -> std::io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.journals
            .entry(self.hash)
            .or_default()
            .entry(record.trial)
            .or_insert_with(|| record.clone());
        Ok(())
    }
}

impl StoreBackend for MemBackend {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn location(&self) -> String {
        "(in-memory)".to_string()
    }

    fn load(&self, spec: &CellSpec) -> Option<CellResult> {
        let st = self.state.lock().unwrap();
        let (res, _) = st.cells.get(&spec.content_hash())?;
        // Hash-collision guard, same contract as the key check on disk.
        if res.spec != *spec {
            return None;
        }
        Some(res.clone())
    }

    fn save(&self, spec: &CellSpec, records: Vec<TrialRecord>) -> std::io::Result<CellResult> {
        let bytes = encode_cell_doc(spec, &records).len() as u64;
        let result = CellResult {
            spec: spec.clone(),
            records,
        };
        let mut st = self.state.lock().unwrap();
        let h = spec.content_hash();
        st.cells.insert(h, (result.clone(), bytes));
        st.journals.remove(&h);
        Ok(result)
    }

    fn journal_state(&self, spec: &CellSpec) -> JournalState {
        let st = self.state.lock().unwrap();
        JournalState {
            records: st
                .journals
                .get(&spec.content_hash())
                .cloned()
                .unwrap_or_default(),
            discarded_lines: 0,
        }
    }

    fn journal_sink(&self, spec: &CellSpec) -> std::io::Result<Box<dyn JournalSink>> {
        Ok(Box::new(MemSink {
            state: Arc::clone(&self.state),
            hash: spec.content_hash(),
        }))
    }

    fn has_journal(&self, spec: &CellSpec) -> bool {
        self.state
            .lock()
            .unwrap()
            .journals
            .contains_key(&spec.content_hash())
    }

    fn gc(&self, live_stems: &HashSet<String>) -> std::io::Result<GcOutcome> {
        let mut st = self.state.lock().unwrap();
        let mut out = GcOutcome::default();
        st.cells.retain(|_, (res, _)| {
            if live_stems.contains(&res.spec.file_stem()) {
                true
            } else {
                out.removed.push(format!("cell {}", res.spec.file_stem()));
                false
            }
        });
        out.kept = st.cells.len();
        st.journals.clear();
        Ok(out)
    }

    fn stats(&self) -> BackendStats {
        let st = self.state.lock().unwrap();
        let bytes: u64 = st.cells.values().map(|(_, b)| b).sum();
        BackendStats {
            cells: st.cells.len() as u64,
            journals: st.journals.len() as u64,
            bytes,
            live_bytes: bytes,
            dead_bytes: 0,
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LogBackend — append-only log + in-memory index + compaction.
// ---------------------------------------------------------------------

/// Dead bytes tolerated before a save triggers compaction (and dead
/// bytes must also outweigh live bytes — classic LSM-ish rule, so a
/// huge mostly-live log is not rewritten for a few stale lines).
const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    offset: u64,
    len: u64, // line length including the trailing newline
}

#[derive(Debug, Default)]
struct LogJournal {
    key: String,
    stem: String,
    records: BTreeMap<u64, TrialRecord>,
    bytes: u64,
}

#[derive(Debug)]
struct LogState {
    file: std::fs::File, // append handle
    index: HashMap<u64, (IndexEntry, String)>,
    journals: HashMap<u64, LogJournal>,
    tail: u64,
    dead_bytes: u64,
    compactions: u64,
}

/// Append-only log store: every completed cell is one framed line
/// (`{"t":"cell","key":…,"stem":…,"trials":[…]}`), every journaled trial
/// one `{"t":"trial",…}` line. An in-memory index maps content hashes to
/// byte ranges; loads seek and re-verify the key. Superseded lines
/// (re-saved cells, sealed journals) become dead bytes; once they exceed
/// both a threshold and the live mass, the log is compacted by copying
/// live lines to a fresh file and atomically renaming it into place.
#[derive(Debug)]
pub struct LogBackend {
    path: PathBuf,
    state: Arc<Mutex<LogState>>,
    compact_threshold: u64,
}

impl LogBackend {
    /// Open (or create) the log at `path`, recovering the index by a
    /// full scan. A torn tail (crash mid-append) is truncated away, the
    /// same contract as the per-cell journals.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        LogBackend::open_with_threshold(path, DEFAULT_COMPACT_THRESHOLD)
    }

    /// [`LogBackend::open`] with an explicit compaction threshold
    /// (tests use a tiny one to force compactions).
    pub fn open_with_threshold(
        path: impl Into<PathBuf>,
        compact_threshold: u64,
    ) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut index: HashMap<u64, (IndexEntry, String)> = HashMap::new();
        let mut journals: HashMap<u64, LogJournal> = HashMap::new();
        let mut dead_bytes = 0u64;
        let mut good_end = 0u64;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut offset = 0u64;
        for line in text.split_inclusive('\n') {
            let len = line.len() as u64;
            let complete = line.ends_with('\n');
            let parsed = if complete {
                Value::parse(line.trim_end()).ok()
            } else {
                None // torn tail: no newline means the append died mid-line
            };
            let Some(v) = parsed else { break };
            match Self::apply_line(&v, offset, len, &mut index, &mut journals) {
                Some(reclaimed) => dead_bytes += reclaimed,
                None => break, // structurally foreign line: stop trusting the tail
            }
            offset += len;
            good_end = offset;
        }
        if good_end < text.len() as u64 {
            // Drop the torn/foreign tail so future offsets stay aligned.
            let f = std::fs::OpenOptions::new().write(true).open(&path);
            if let Ok(f) = f {
                f.set_len(good_end)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(LogBackend {
            path,
            state: Arc::new(Mutex::new(LogState {
                file,
                index,
                journals,
                tail: good_end,
                dead_bytes,
                compactions: 0,
            })),
            compact_threshold,
        })
    }

    /// Fold one parsed log line into the recovery state; returns the
    /// bytes it made dead (superseded lines), or `None` if the line is
    /// not a recognised frame.
    fn apply_line(
        v: &Value,
        offset: u64,
        len: u64,
        index: &mut HashMap<u64, (IndexEntry, String)>,
        journals: &mut HashMap<u64, LogJournal>,
    ) -> Option<u64> {
        let key = v.get("key")?.as_str()?;
        let stem = v.get("stem")?.as_str()?.to_string();
        let h = fnv1a64(key.as_bytes());
        let mut dead = 0u64;
        match v.get("t")?.as_str()? {
            "cell" => {
                v.get("trials")?.as_arr()?; // shape check only
                if let Some((old, _)) = index.insert(h, (IndexEntry { offset, len }, stem)) {
                    dead += old.len;
                }
                if let Some(j) = journals.remove(&h) {
                    dead += j.bytes;
                }
            }
            "trial" => {
                let rec = TrialRecord::from_json(v.get("rec")?)?;
                if index.contains_key(&h) {
                    dead += len; // trial for an already-sealed cell
                } else {
                    let j = journals.entry(h).or_default();
                    j.key = key.to_string();
                    j.stem = stem;
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        j.records.entry(rec.trial)
                    {
                        e.insert(rec);
                        j.bytes += len;
                    } else {
                        dead += len; // duplicate: first occurrence wins
                    }
                }
            }
            _ => return None,
        }
        Some(dead)
    }

    fn cell_line(spec: &CellSpec, records: &[TrialRecord]) -> String {
        let mut line = Value::obj([
            ("t", Value::Str("cell".into())),
            ("key", Value::Str(spec.canonical_key())),
            ("stem", Value::Str(spec.file_stem())),
            (
                "trials",
                Value::Arr(records.iter().map(TrialRecord::to_json).collect()),
            ),
        ])
        .encode();
        line.push('\n');
        line
    }

    fn trial_line(spec: &CellSpec, record: &TrialRecord) -> String {
        let mut line = Value::obj([
            ("t", Value::Str("trial".into())),
            ("key", Value::Str(spec.canonical_key())),
            ("stem", Value::Str(spec.file_stem())),
            ("rec", record.to_json()),
        ])
        .encode();
        line.push('\n');
        line
    }

    fn append_line(st: &mut LogState, line: &str) -> std::io::Result<IndexEntry> {
        st.file.write_all(line.as_bytes())?;
        st.file.flush()?;
        let entry = IndexEntry {
            offset: st.tail,
            len: line.len() as u64,
        };
        st.tail += entry.len;
        Ok(entry)
    }

    /// Copy every live line to a fresh log, atomically replace the old
    /// one, and rebuild the index. Called with the state lock held.
    fn compact_locked(&self, st: &mut LogState) -> std::io::Result<()> {
        let tmp = self.path.with_extension("log.compact");
        let mut reader = std::fs::File::open(&self.path)?;
        {
            let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            // Deterministic order: live cells by stem (ties by hash),
            // then journals by stem.
            let mut cells: Vec<(&u64, &(IndexEntry, String))> = st.index.iter().collect();
            cells.sort_by(|a, b| (&a.1 .1, a.0).cmp(&(&b.1 .1, b.0)));
            let mut new_offset = 0u64;
            let mut new_index: HashMap<u64, (IndexEntry, String)> = HashMap::new();
            for (h, (entry, stem)) in cells {
                let mut buf = vec![0u8; entry.len as usize];
                reader.seek(std::io::SeekFrom::Start(entry.offset))?;
                reader.read_exact(&mut buf)?;
                out.write_all(&buf)?;
                new_index.insert(
                    *h,
                    (
                        IndexEntry {
                            offset: new_offset,
                            len: entry.len,
                        },
                        stem.clone(),
                    ),
                );
                new_offset += entry.len;
            }
            let mut jhashes: Vec<u64> = st.journals.keys().copied().collect();
            jhashes.sort_by_key(|h| (st.journals[h].stem.clone(), *h));
            for h in jhashes {
                let j = st.journals.get_mut(&h).unwrap();
                let mut bytes = 0u64;
                for rec in j.records.values() {
                    let mut line = Value::obj([
                        ("t", Value::Str("trial".into())),
                        ("key", Value::Str(j.key.clone())),
                        ("stem", Value::Str(j.stem.clone())),
                        ("rec", rec.to_json()),
                    ])
                    .encode();
                    line.push('\n');
                    out.write_all(line.as_bytes())?;
                    bytes += line.len() as u64;
                }
                j.bytes = bytes;
                new_offset += bytes;
            }
            out.flush()?;
            st.index = new_index;
            st.tail = new_offset;
        }
        std::fs::rename(&tmp, &self.path)?;
        st.file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        st.dead_bytes = 0;
        st.compactions += 1;
        Ok(())
    }

    fn maybe_compact(&self, st: &mut LogState) -> std::io::Result<()> {
        let live = st.tail.saturating_sub(st.dead_bytes);
        if st.dead_bytes >= self.compact_threshold && st.dead_bytes >= live {
            self.compact_locked(st)?;
        }
        Ok(())
    }

    /// Compactions performed since open (observability + tests).
    pub fn compactions(&self) -> u64 {
        self.state.lock().unwrap().compactions
    }
}

struct LogSink {
    state: Arc<Mutex<LogState>>,
    spec: CellSpec,
}

impl JournalSink for LogSink {
    fn append(&self, record: &TrialRecord) -> std::io::Result<()> {
        let line = LogBackend::trial_line(&self.spec, record);
        let h = self.spec.content_hash();
        let mut st = self.state.lock().unwrap();
        let entry = LogBackend::append_line(&mut st, &line)?;
        let duplicate = st
            .journals
            .get(&h)
            .is_some_and(|j| j.records.contains_key(&record.trial));
        if duplicate {
            st.dead_bytes += entry.len;
        } else {
            let j = st.journals.entry(h).or_default();
            j.key = self.spec.canonical_key();
            j.stem = self.spec.file_stem();
            j.records.insert(record.trial, record.clone());
            j.bytes += entry.len;
        }
        Ok(())
    }
}

impl StoreBackend for LogBackend {
    fn kind(&self) -> &'static str {
        "log"
    }

    fn location(&self) -> String {
        self.path.display().to_string()
    }

    fn load(&self, spec: &CellSpec) -> Option<CellResult> {
        let st = self.state.lock().unwrap();
        let (entry, _) = st.index.get(&spec.content_hash())?;
        let mut buf = vec![0u8; entry.len as usize];
        let mut reader = std::fs::File::open(&self.path).ok()?;
        reader.seek(std::io::SeekFrom::Start(entry.offset)).ok()?;
        reader.read_exact(&mut buf).ok()?;
        drop(st);
        let line = String::from_utf8(buf).ok()?;
        let v = Value::parse(line.trim_end()).ok()?;
        // Re-encode the embedded document and reuse the canonical
        // decoder so the key/shape verification is identical to fs.
        let doc = Value::obj([
            ("key", v.get("key")?.clone()),
            ("trials", v.get("trials")?.clone()),
        ]);
        let records = decode_cell_doc(spec, &doc.encode())?;
        Some(CellResult {
            spec: spec.clone(),
            records,
        })
    }

    fn save(&self, spec: &CellSpec, records: Vec<TrialRecord>) -> std::io::Result<CellResult> {
        let line = LogBackend::cell_line(spec, &records);
        let h = spec.content_hash();
        let mut st = self.state.lock().unwrap();
        let entry = LogBackend::append_line(&mut st, &line)?;
        if let Some((old, _)) = st.index.insert(h, (entry, spec.file_stem())) {
            st.dead_bytes += old.len;
        }
        if let Some(j) = st.journals.remove(&h) {
            st.dead_bytes += j.bytes;
        }
        self.maybe_compact(&mut st)?;
        Ok(CellResult {
            spec: spec.clone(),
            records,
        })
    }

    fn journal_state(&self, spec: &CellSpec) -> JournalState {
        let st = self.state.lock().unwrap();
        JournalState {
            records: st
                .journals
                .get(&spec.content_hash())
                .map(|j| j.records.clone())
                .unwrap_or_default(),
            discarded_lines: 0,
        }
    }

    fn journal_sink(&self, spec: &CellSpec) -> std::io::Result<Box<dyn JournalSink>> {
        Ok(Box::new(LogSink {
            state: Arc::clone(&self.state),
            spec: spec.clone(),
        }))
    }

    fn has_journal(&self, spec: &CellSpec) -> bool {
        self.state
            .lock()
            .unwrap()
            .journals
            .contains_key(&spec.content_hash())
    }

    fn gc(&self, live_stems: &HashSet<String>) -> std::io::Result<GcOutcome> {
        let mut st = self.state.lock().unwrap();
        let mut out = GcOutcome::default();
        let mut dead = 0u64;
        st.index.retain(|_, (entry, stem)| {
            if live_stems.contains(stem) {
                true
            } else {
                out.removed.push(format!("cell {stem}"));
                dead += entry.len;
                false
            }
        });
        st.journals.retain(|_, j| {
            if live_stems.contains(&j.stem) {
                true
            } else {
                out.removed.push(format!("journal {}", j.stem));
                dead += j.bytes;
                false
            }
        });
        st.dead_bytes += dead;
        // gc always compacts: reclaiming the bytes *is* the deletion.
        self.compact_locked(&mut st)?;
        out.kept = st.index.len();
        Ok(out)
    }

    fn stats(&self) -> BackendStats {
        let st = self.state.lock().unwrap();
        let cell_bytes: u64 = st.index.values().map(|(e, _)| e.len).sum();
        let journal_bytes: u64 = st.journals.values().map(|j| j.bytes).sum();
        BackendStats {
            cells: st.index.len() as u64,
            journals: st.journals.len() as u64,
            bytes: st.tail,
            live_bytes: cell_bytes + journal_bytes,
            dead_bytes: st.dead_bytes,
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        self.state.lock().unwrap().file.sync_all()
    }
}
