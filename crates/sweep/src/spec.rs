//! Cell specifications: the declarative unit of a sweep.
//!
//! A [`CellSpec`] pins everything that determines a cell's output —
//! protocol, population size, trial count, the fully-derived cell seed,
//! stability criterion, interaction budget, and capture mode. Two specs
//! with equal [canonical keys](CellSpec::canonical_key) produce
//! bit-identical trial records, which is what lets the store treat the
//! key's hash as the cell's content address.

use crate::json::Value;
use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::stability::{Signature, Silent, StabilityCriterion};
use pp_protocols::hierarchical::{HierarchicalPartition, HierarchicalStable};
use pp_protocols::kpartition::ablation::BasicStrategyKPartition;
use pp_protocols::kpartition::variant::OneSidedAbortKPartition;
use pp_protocols::kpartition::UniformKPartition;
use pp_topo::Dynamics;

/// Which protocol a cell simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// The paper's uniform k-partition protocol (`3k − 2` states).
    UniformKPartition {
        /// Number of groups.
        k: usize,
    },
    /// The §3.2 "basic strategy" ablation (rules 1–7, can deadlock).
    BasicStrategy {
        /// Number of groups.
        k: usize,
    },
    /// The one-sided chain-abort variant of rule 8.
    OneSidedAbort {
        /// Number of groups.
        k: usize,
    },
    /// Composed bipartition baseline, `k = 2^h`.
    ComposedBipartition {
        /// Composition depth.
        h: u32,
    },
    /// Approximate-partition baseline (every group ≥ `n/(2k)`).
    ApproxPartition {
        /// Number of groups.
        k: usize,
    },
}

impl ProtocolId {
    /// The group count `k` this instance targets.
    pub fn k(&self) -> usize {
        match *self {
            ProtocolId::UniformKPartition { k }
            | ProtocolId::BasicStrategy { k }
            | ProtocolId::OneSidedAbort { k }
            | ProtocolId::ApproxPartition { k } => k,
            ProtocolId::ComposedBipartition { h } => 1usize << h,
        }
    }

    /// Canonical-key fragment; part of the content address, so any change
    /// here invalidates every cached result of that protocol.
    fn key_fragment(&self) -> String {
        match *self {
            ProtocolId::UniformKPartition { k } => format!("ukp:k={k}"),
            ProtocolId::BasicStrategy { k } => format!("basic:k={k}"),
            ProtocolId::OneSidedAbort { k } => format!("oneside:k={k}"),
            ProtocolId::ComposedBipartition { h } => format!("composed:h={h}"),
            ProtocolId::ApproxPartition { k } => format!("approx:k={k}"),
        }
    }

    /// Short human-readable slug for store filenames.
    fn slug(&self) -> String {
        match *self {
            ProtocolId::UniformKPartition { k } => format!("ukp-k{k}"),
            ProtocolId::BasicStrategy { k } => format!("basic-k{k}"),
            ProtocolId::OneSidedAbort { k } => format!("oneside-k{k}"),
            ProtocolId::ComposedBipartition { h } => format!("composed-h{h}"),
            ProtocolId::ApproxPartition { k } => format!("approx-k{k}"),
        }
    }
}

/// When a cell's runs stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CriterionKind {
    /// The protocol's own stability criterion (stable signature for the
    /// k-partition family, hierarchical stability for the baselines).
    Stable,
    /// No enabled transition changes any state (used by the ablation,
    /// whose deadlocks are silent but non-uniform).
    Silent,
}

/// What each trial records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellMode {
    /// Interactions-to-stability only.
    Summary,
    /// Additionally the interaction at each increment of the watched
    /// `g_k` state (Figure 4's instrumentation; k-partition only).
    Watched,
    /// Additionally the final count vector (for imbalance measurements).
    Full,
    /// A single sampled execution: configuration snapshots every
    /// `sample_every` interactions (the trajectory experiment).
    Trajectory {
        /// Sampling period in interactions.
        sample_every: u64,
    },
}

impl CellMode {
    fn key_fragment(&self) -> String {
        match *self {
            CellMode::Summary => "summary".into(),
            CellMode::Watched => "watched".into(),
            CellMode::Full => "full".into(),
            CellMode::Trajectory { sample_every } => format!("traj:every={sample_every}"),
        }
    }
}

/// Which simulation kernel a cell's trials run on.
///
/// Recorded in the spec — and hence in the canonical key — because the
/// kernels agree in distribution but consume randomness differently: the
/// same cell seed yields different (equally valid) trial records under
/// each, so a cached naive cell must not satisfy a leap request or vice
/// versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// The naive one-interaction-per-step loop.
    Naive,
    /// The leap kernel (identity interactions skipped in closed form).
    Leap,
    /// The tau-leap batch kernel (bounded-error bulk firing in the giant-n
    /// regime, exact-leap fallback near convergence; see
    /// `pp_engine::batch` for the error model).
    Batch,
}

impl KernelChoice {
    /// The kernel a cell of the given mode should run on, honouring the
    /// `PP_KERNEL` knob. Trajectory cells pin naive regardless of the
    /// knob — not a correctness requirement any more (the sampler
    /// reconstructs identity runs in closed form on the leap kernel),
    /// but the kernel is part of the content address, so the pin keeps
    /// existing cached trajectories addressable; every other mode
    /// resolves `auto` to leap.
    pub fn auto_for(mode: CellMode) -> KernelChoice {
        if matches!(mode, CellMode::Trajectory { .. }) {
            return KernelChoice::Naive;
        }
        match pp_analysis::config::kernel() {
            pp_analysis::config::KernelKnob::Naive => KernelChoice::Naive,
            pp_analysis::config::KernelKnob::Batch => KernelChoice::Batch,
            pp_analysis::config::KernelKnob::Leap | pp_analysis::config::KernelKnob::Auto => {
                KernelChoice::Leap
            }
        }
    }

    /// The equivalent [`pp_analysis::runner::Kernel`].
    pub fn runner_kernel(self) -> pp_analysis::runner::Kernel {
        match self {
            KernelChoice::Naive => pp_analysis::runner::Kernel::Naive,
            KernelChoice::Leap => pp_analysis::runner::Kernel::Leap,
            KernelChoice::Batch => pp_analysis::runner::Kernel::Batch,
        }
    }

    fn key_fragment(&self) -> &'static str {
        match self {
            KernelChoice::Naive => "naive",
            KernelChoice::Leap => "leap",
            KernelChoice::Batch => "batch",
        }
    }
}

/// One cell: a batch of trials at fixed parameters.
///
/// `seed` is the *cell* seed, already derived from the sweep's master
/// seed (the plans use `seeds::derive_labelled(master, k, n)`, matching
/// the legacy binaries); trial `i` then runs with
/// `seeds::derive(seed, i)`. Storing the derived seed makes the spec —
/// and hence the content address — self-contained.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// Protocol under test.
    pub protocol: ProtocolId,
    /// Population size.
    pub n: u64,
    /// Number of independent trials.
    pub trials: usize,
    /// Fully-derived cell seed (see type docs).
    pub seed: u64,
    /// Stopping criterion.
    pub criterion: CriterionKind,
    /// Per-trial interaction budget; trials exceeding it are censored.
    pub budget: u64,
    /// What each trial records.
    pub mode: CellMode,
    /// Which simulation kernel runs the trials.
    pub kernel: KernelChoice,
    /// Population dynamics: topology family, edge scheduler, and churn.
    /// [`Dynamics::default_dynamics`] (complete graph, uniform scheduler,
    /// no churn) is the paper's model and keys identically to pre-v4
    /// specs, so the historical store stays warm.
    pub dynamics: Dynamics,
}

/// Format-version prefix of every canonical key. Bump when the journal /
/// store record format or the execution semantics change incompatibly;
/// old cache entries then simply miss (and `pp-sweep gc` collects them).
///
/// v2: the simulation kernel joined the spec (and the key gained a
/// `kernel=` fragment) — leap-kernel trial records are distribution-equal
/// but not bit-equal to naive ones, so they must not alias.
///
/// v3: the tau-leap batch kernel joined the kernel set. Batch trial
/// records are bounded-error (not distribution-identical) relative to
/// leap in the bulk, so the version bump retires every v2 cache entry
/// rather than risking a naive/leap cell answering under semantics that
/// now include a third kernel.
///
/// v4: population dynamics (topology / scheduler / churn) joined the
/// spec. The bump is *loss-free*: default-dynamics cells — the paper's
/// complete-graph model, i.e. every cell that could exist before v4 —
/// keep emitting the exact v3 key (see [`LEGACY_KEY_VERSION`]), so
/// their content hashes are unchanged and the historical store stays
/// warm; only cells with non-default dynamics carry the `v4` prefix and
/// a `dyn=` fragment.
pub const KEY_VERSION: &str = "v4";

/// The key version emitted for default-dynamics cells, preserving their
/// pre-v4 content addresses byte for byte.
pub const LEGACY_KEY_VERSION: &str = "v3";

impl CellSpec {
    /// The canonical key: a stable, human-readable string that pins every
    /// input the cell's output depends on.
    pub fn canonical_key(&self) -> String {
        let crit = match self.criterion {
            CriterionKind::Stable => "stable",
            CriterionKind::Silent => "silent",
        };
        // Default-dynamics cells keep the legacy key byte for byte (no
        // `dyn=` fragment, v3 prefix) so their content addresses — and
        // hence every pre-v4 store entry — survive the version bump.
        let version = if self.dynamics.is_default() {
            LEGACY_KEY_VERSION
        } else {
            KEY_VERSION
        };
        let mut key = format!(
            "{version}|{}|n={}|trials={}|seed={}|crit={crit}|budget={}|mode={}|kernel={}",
            self.protocol.key_fragment(),
            self.n,
            self.trials,
            self.seed,
            self.budget,
            self.mode.key_fragment(),
            self.kernel.key_fragment(),
        );
        if !self.dynamics.is_default() {
            key.push_str(&format!("|dyn={}", self.dynamics.key_fragment()));
        }
        key
    }

    /// FNV-1a 64-bit hash of the canonical key — the cell's content
    /// address. Deliberately a from-scratch implementation with fixed
    /// constants (not `DefaultHasher`, whose output may change between
    /// Rust releases): the value is persisted in filenames and must be
    /// stable across processes and toolchains.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.canonical_key().as_bytes())
    }

    /// Store filename stem: human-readable slug plus the full hash, e.g.
    /// `ukp-k4-n96-a1b2c3d4e5f60718`.
    pub fn file_stem(&self) -> String {
        format!(
            "{}-n{}-{:016x}",
            self.protocol.slug(),
            self.n,
            self.content_hash()
        )
    }

    /// The population size the stopping criterion targets: `n` shifted by
    /// the churn plan's net join−leave−crash balance. Equal to `n` for
    /// default dynamics.
    pub fn target_n(&self) -> u64 {
        let net = self.dynamics.churn.net();
        if net >= 0 {
            self.n.saturating_add(net as u64)
        } else {
            self.n.saturating_sub(net.unsigned_abs())
        }
    }

    /// Check the dynamics block is executable: the topology/churn specs
    /// are valid at this `n`, the chosen kernel can run them (the batch
    /// and leap kernels require the paper's default dynamics — the batch
    /// refusal is the typed `BatchRequiresComplete` from `pp_topo`), and
    /// the capture mode is supported under dynamics.
    pub fn validate_dynamics(&self) -> Result<(), String> {
        if self.dynamics.is_default() {
            return Ok(());
        }
        self.dynamics
            .validate(self.n as usize)
            .map_err(|e| e.to_string())?;
        pp_topo::ensure_kernel_compatible(self.kernel.key_fragment(), &self.dynamics)
            .map_err(|e| e.to_string())?;
        if !matches!(self.mode, CellMode::Summary | CellMode::Full) {
            return Err("watched/trajectory modes require default dynamics".into());
        }
        Ok(())
    }

    /// Compile the protocol and its stopping criterion.
    ///
    /// Criteria that depend on the population size (stable signatures)
    /// target [`CellSpec::target_n`] — the post-churn population — so a
    /// churn cell is judged stable against the configuration it can
    /// actually reach.
    pub fn materialize(&self) -> MaterializedCell {
        let sig_n = self.target_n();
        let (proto, stable): (CompiledProtocol, AnyCriterion) = match self.protocol {
            ProtocolId::UniformKPartition { k } => {
                let p = UniformKPartition::new(k);
                let c = AnyCriterion::Signature(p.stable_signature(sig_n));
                (p.compile(), c)
            }
            ProtocolId::BasicStrategy { k } => {
                let p = BasicStrategyKPartition::new(k);
                // The basic strategy has no stable signature (it can
                // deadlock anywhere); its natural stopping point is
                // silence, so Stable degrades to Silent.
                (p.compile(), AnyCriterion::Silent(Silent))
            }
            ProtocolId::OneSidedAbort { k } => {
                let p = OneSidedAbortKPartition::new(k);
                let c = AnyCriterion::Signature(p.stable_signature(sig_n));
                (p.compile(), c)
            }
            ProtocolId::ComposedBipartition { h } => {
                let p = HierarchicalPartition::composed(h);
                let c = AnyCriterion::Hierarchical(p.stability());
                (p.compile(), c)
            }
            ProtocolId::ApproxPartition { k } => {
                let p = HierarchicalPartition::approx(k);
                let c = AnyCriterion::Hierarchical(p.stability());
                (p.compile(), c)
            }
        };
        let criterion = match self.criterion {
            CriterionKind::Stable => stable,
            CriterionKind::Silent => AnyCriterion::Silent(Silent),
        };
        MaterializedCell { proto, criterion }
    }

    /// Encode as the `pp-serve` wire object, e.g.
    /// `{"protocol":"ukp","k":4,"n":96,"trials":100,"seed":12345,
    /// "criterion":"stable","budget":1000000,"mode":"summary",
    /// "kernel":"leap"}`.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(&'static str, Value)> = Vec::new();
        match self.protocol {
            ProtocolId::UniformKPartition { k } => {
                pairs.push(("protocol", Value::Str("ukp".into())));
                pairs.push(("k", Value::U64(k as u64)));
            }
            ProtocolId::BasicStrategy { k } => {
                pairs.push(("protocol", Value::Str("basic".into())));
                pairs.push(("k", Value::U64(k as u64)));
            }
            ProtocolId::OneSidedAbort { k } => {
                pairs.push(("protocol", Value::Str("oneside".into())));
                pairs.push(("k", Value::U64(k as u64)));
            }
            ProtocolId::ComposedBipartition { h } => {
                pairs.push(("protocol", Value::Str("composed".into())));
                pairs.push(("h", Value::U64(u64::from(h))));
            }
            ProtocolId::ApproxPartition { k } => {
                pairs.push(("protocol", Value::Str("approx".into())));
                pairs.push(("k", Value::U64(k as u64)));
            }
        }
        pairs.push(("n", Value::U64(self.n)));
        pairs.push(("trials", Value::U64(self.trials as u64)));
        pairs.push(("seed", Value::U64(self.seed)));
        pairs.push((
            "criterion",
            Value::Str(
                match self.criterion {
                    CriterionKind::Stable => "stable",
                    CriterionKind::Silent => "silent",
                }
                .into(),
            ),
        ));
        pairs.push(("budget", Value::U64(self.budget)));
        match self.mode {
            CellMode::Summary => pairs.push(("mode", Value::Str("summary".into()))),
            CellMode::Watched => pairs.push(("mode", Value::Str("watched".into()))),
            CellMode::Full => pairs.push(("mode", Value::Str("full".into()))),
            CellMode::Trajectory { sample_every } => {
                pairs.push(("mode", Value::Str("trajectory".into())));
                pairs.push(("sample_every", Value::U64(sample_every)));
            }
        }
        pairs.push(("kernel", Value::Str(self.kernel.key_fragment().to_string())));
        if !self.dynamics.is_default() {
            pairs.push(("dynamics", Value::Str(self.dynamics.key_fragment())));
        }
        Value::obj(pairs)
    }

    /// Decode the `pp-serve` wire object. `protocol`, `n`, `trials`,
    /// `seed`, and `budget` are required (they all enter the content
    /// address, so there are no silent defaults for them); `criterion`
    /// defaults to `stable`, `mode` to `summary`, and `kernel` to the
    /// mode's [`KernelChoice::auto_for`] resolution.
    pub fn from_json(v: &Value) -> Result<CellSpec, String> {
        let req_u64 = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{field}'"))
        };
        let k = || -> Result<usize, String> { Ok(req_u64("k")? as usize) };
        let protocol = match v
            .get("protocol")
            .and_then(Value::as_str)
            .ok_or("missing field 'protocol'")?
        {
            "ukp" => ProtocolId::UniformKPartition { k: k()? },
            "basic" => ProtocolId::BasicStrategy { k: k()? },
            "oneside" => ProtocolId::OneSidedAbort { k: k()? },
            "composed" => ProtocolId::ComposedBipartition {
                h: req_u64("h")? as u32,
            },
            "approx" => ProtocolId::ApproxPartition { k: k()? },
            other => return Err(format!("unknown protocol '{other}'")),
        };
        let criterion = match v.get("criterion").and_then(Value::as_str) {
            None | Some("stable") => CriterionKind::Stable,
            Some("silent") => CriterionKind::Silent,
            Some(other) => return Err(format!("unknown criterion '{other}'")),
        };
        let mode = match v.get("mode").and_then(Value::as_str) {
            None | Some("summary") => CellMode::Summary,
            Some("watched") => CellMode::Watched,
            Some("full") => CellMode::Full,
            Some("trajectory") => CellMode::Trajectory {
                sample_every: req_u64("sample_every")?,
            },
            Some(other) => return Err(format!("unknown mode '{other}'")),
        };
        let kernel = match v.get("kernel").and_then(Value::as_str) {
            None => KernelChoice::auto_for(mode),
            Some("naive") => KernelChoice::Naive,
            Some("leap") => KernelChoice::Leap,
            Some("batch") => KernelChoice::Batch,
            Some(other) => return Err(format!("unknown kernel '{other}'")),
        };
        let dynamics = match v.get("dynamics").and_then(Value::as_str) {
            None => Dynamics::default_dynamics(),
            Some(frag) => Dynamics::parse(frag).map_err(|e| e.to_string())?,
        };
        let spec = CellSpec {
            protocol,
            n: req_u64("n")?,
            trials: req_u64("trials")? as usize,
            seed: req_u64("seed")?,
            criterion,
            budget: req_u64("budget")?,
            mode,
            kernel,
            dynamics,
        };
        if spec.trials == 0 {
            return Err("trials must be positive".into());
        }
        if spec.n == 0 {
            return Err("n must be positive".into());
        }
        // k = 1 is degenerate and k < 1 impossible; reject before
        // materialize() can panic inside a server.
        if spec.protocol.k() < 2 {
            return Err("k must be at least 2".into());
        }
        if matches!(spec.mode, CellMode::Watched)
            && !matches!(spec.protocol, ProtocolId::UniformKPartition { .. })
        {
            return Err("watched mode is only defined for protocol 'ukp'".into());
        }
        spec.validate_dynamics()?;
        Ok(spec)
    }

    /// The watched state for [`CellMode::Watched`] cells: `g_k`.
    ///
    /// # Panics
    /// If the protocol is not the uniform k-partition (the only protocol
    /// the watched instrumentation is defined for).
    pub fn watched_state(&self) -> StateId {
        match self.protocol {
            ProtocolId::UniformKPartition { k } => UniformKPartition::new(k).g(k),
            other => panic!("watched mode is only defined for the paper's protocol, got {other:?}"),
        }
    }
}

/// FNV-1a, 64-bit. Stable by construction.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A compiled protocol plus its stopping criterion.
pub struct MaterializedCell {
    /// The compiled protocol.
    pub proto: CompiledProtocol,
    /// The stopping criterion.
    pub criterion: AnyCriterion,
}

/// Runtime-dispatched stability criterion, so heterogeneous cells fit in
/// one queue.
pub enum AnyCriterion {
    /// A count signature (the k-partition family's Lemma 4–6 criterion).
    Signature(Signature),
    /// Hierarchical (baseline protocols).
    Hierarchical(HierarchicalStable),
    /// Silence.
    Silent(Silent),
}

impl StabilityCriterion for AnyCriterion {
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        match self {
            AnyCriterion::Signature(c) => c.is_stable(proto, counts),
            AnyCriterion::Hierarchical(c) => c.is_stable(proto, counts),
            AnyCriterion::Silent(c) => c.is_stable(proto, counts),
        }
    }

    // Forward to each variant's tracker so the leap kernel gets the
    // Signature criterion's O(1) incremental checker instead of the
    // default rescan wrapper around the enum.
    fn tracker<'a>(
        &'a self,
        proto: &CompiledProtocol,
        counts: &[u64],
    ) -> Box<dyn pp_engine::stability::StabilityTracker + 'a> {
        match self {
            AnyCriterion::Signature(c) => c.tracker(proto, counts),
            AnyCriterion::Hierarchical(c) => c.tracker(proto, counts),
            AnyCriterion::Silent(c) => c.tracker(proto, counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ukp_cell() -> CellSpec {
        CellSpec {
            protocol: ProtocolId::UniformKPartition { k: 4 },
            n: 96,
            trials: 100,
            seed: 12345,
            criterion: CriterionKind::Stable,
            budget: 1_000_000,
            mode: CellMode::Summary,
            kernel: KernelChoice::Leap,
            dynamics: Dynamics::default_dynamics(),
        }
    }

    fn ring_dynamics() -> Dynamics {
        Dynamics::parse("ring;uniform;j0.l0.c0.p0").unwrap()
    }

    #[test]
    fn canonical_key_pins_every_field() {
        let base = ukp_cell();
        let key = base.canonical_key();
        assert_eq!(
            key,
            "v3|ukp:k=4|n=96|trials=100|seed=12345|crit=stable|budget=1000000|mode=summary|kernel=leap"
        );
        let variants = [
            CellSpec {
                n: 97,
                ..base.clone()
            },
            CellSpec {
                trials: 99,
                ..base.clone()
            },
            CellSpec {
                seed: 12346,
                ..base.clone()
            },
            CellSpec {
                criterion: CriterionKind::Silent,
                ..base.clone()
            },
            CellSpec {
                budget: 2,
                ..base.clone()
            },
            CellSpec {
                mode: CellMode::Full,
                ..base.clone()
            },
            CellSpec {
                protocol: ProtocolId::OneSidedAbort { k: 4 },
                ..base.clone()
            },
            CellSpec {
                kernel: KernelChoice::Naive,
                ..base.clone()
            },
            CellSpec {
                dynamics: ring_dynamics(),
                kernel: KernelChoice::Naive,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.canonical_key(), key);
            assert_ne!(v.content_hash(), base.content_hash());
        }
    }

    #[test]
    fn key_version_bump_is_loss_free() {
        // Default-dynamics cells — everything that existed before v4 —
        // must keep their exact v3 canonical key, and hence their content
        // address: a spec stored under v3 is a cache hit under v4.
        let legacy = ukp_cell();
        assert!(legacy.dynamics.is_default());
        let key = legacy.canonical_key();
        assert!(key.starts_with("v3|"), "legacy key drifted: {key}");
        assert!(!key.contains("dyn="), "legacy key gained a fragment: {key}");
        // The pinned pre-v4 hash (computed before the dynamics field
        // existed). If this changes, the historical store goes cold.
        assert_eq!(
            key,
            "v3|ukp:k=4|n=96|trials=100|seed=12345|crit=stable|budget=1000000|mode=summary|kernel=leap"
        );

        // Non-default dynamics key under v4 with an explicit fragment.
        let topo = CellSpec {
            dynamics: ring_dynamics(),
            kernel: KernelChoice::Naive,
            ..ukp_cell()
        };
        let key = topo.canonical_key();
        assert!(key.starts_with("v4|"), "dynamics key not v4: {key}");
        assert!(
            key.ends_with("|dyn=ring;uniform;j0.l0.c0.p0"),
            "missing dyn fragment: {key}"
        );
    }

    #[test]
    fn dynamics_validation_gates_kernels_and_modes() {
        // Batch on a ring: the typed refusal from pp_topo surfaces.
        let bad = CellSpec {
            dynamics: ring_dynamics(),
            kernel: KernelChoice::Batch,
            ..ukp_cell()
        };
        let err = bad.validate_dynamics().unwrap_err();
        assert!(err.contains("batch"), "untyped refusal: {err}");
        assert!(err.contains("ring"), "refusal names no family: {err}");
        // Leap on a ring: requires default dynamics.
        let bad = CellSpec {
            dynamics: ring_dynamics(),
            kernel: KernelChoice::Leap,
            ..ukp_cell()
        };
        assert!(bad.validate_dynamics().is_err());
        // Naive on a ring is fine; watched mode under dynamics is not.
        let ok = CellSpec {
            dynamics: ring_dynamics(),
            kernel: KernelChoice::Naive,
            ..ukp_cell()
        };
        assert!(ok.validate_dynamics().is_ok());
        let bad = CellSpec {
            mode: CellMode::Watched,
            ..ok
        };
        assert!(bad.validate_dynamics().is_err());
    }

    #[test]
    fn target_n_follows_net_churn() {
        assert_eq!(ukp_cell().target_n(), 96);
        let churned = CellSpec {
            dynamics: Dynamics::parse("complete;uniform;j3.l1.c1.p100").unwrap(),
            kernel: KernelChoice::Naive,
            ..ukp_cell()
        };
        assert_eq!(churned.target_n(), 97);
        let shrinking = CellSpec {
            dynamics: Dynamics::parse("complete;uniform;j0.l2.c1.p100").unwrap(),
            kernel: KernelChoice::Naive,
            ..ukp_cell()
        };
        assert_eq!(shrinking.target_n(), 93);
    }

    #[test]
    fn content_hash_is_process_independent() {
        // Hardcoded expectation: this hash is persisted in store
        // filenames, so it must never drift across runs, processes, or
        // toolchain updates. If this test fails, the key format changed —
        // bump KEY_VERSION and regenerate stores rather than silently
        // aliasing old entries.
        let h = ukp_cell().content_hash();
        assert_eq!(h, fnv1a64(ukp_cell().canonical_key().as_bytes()));
        let expected = fnv1a64(
            b"v3|ukp:k=4|n=96|trials=100|seed=12345|crit=stable|budget=1000000|mode=summary|kernel=leap",
        );
        assert_eq!(h, expected);
    }

    #[test]
    fn trajectory_mode_pins_naive_kernel() {
        assert_eq!(
            KernelChoice::auto_for(CellMode::Trajectory { sample_every: 10 }),
            KernelChoice::Naive
        );
        // Non-trajectory modes resolve via the env knob; with PP_KERNEL
        // unset (the test default) auto means leap.
        if std::env::var("PP_KERNEL").is_err() {
            assert_eq!(
                KernelChoice::auto_for(CellMode::Summary),
                KernelChoice::Leap
            );
        }
    }

    #[test]
    fn file_stem_embeds_slug_and_hash() {
        let c = ukp_cell();
        let stem = c.file_stem();
        assert!(stem.starts_with("ukp-k4-n96-"));
        assert!(stem.ends_with(&format!("{:016x}", c.content_hash())));
    }

    #[test]
    fn materialize_all_protocols() {
        use pp_engine::stability::StabilityCriterion as _;
        for proto in [
            ProtocolId::UniformKPartition { k: 3 },
            ProtocolId::BasicStrategy { k: 3 },
            ProtocolId::OneSidedAbort { k: 3 },
            ProtocolId::ComposedBipartition { h: 2 },
            ProtocolId::ApproxPartition { k: 3 },
        ] {
            let spec = CellSpec {
                protocol: proto,
                n: 12,
                trials: 1,
                seed: 1,
                criterion: CriterionKind::Stable,
                budget: 1000,
                mode: CellMode::Summary,
                kernel: KernelChoice::Leap,
                dynamics: Dynamics::default_dynamics(),
            };
            let m = spec.materialize();
            // The initial configuration is never already stable.
            let mut counts = vec![0u64; m.proto.num_states()];
            counts[m.proto.initial_state().index()] = 12;
            assert!(!m.criterion.is_stable(&m.proto, &counts));
        }
    }

    #[test]
    fn wire_json_roundtrips_every_protocol_and_mode() {
        let mut specs = vec![ukp_cell()];
        for proto in [
            ProtocolId::BasicStrategy { k: 3 },
            ProtocolId::OneSidedAbort { k: 5 },
            ProtocolId::ComposedBipartition { h: 2 },
            ProtocolId::ApproxPartition { k: 3 },
        ] {
            specs.push(CellSpec {
                protocol: proto,
                criterion: CriterionKind::Silent,
                kernel: KernelChoice::Naive,
                ..ukp_cell()
            });
        }
        specs.push(CellSpec {
            mode: CellMode::Trajectory { sample_every: 64 },
            kernel: KernelChoice::Naive,
            ..ukp_cell()
        });
        specs.push(CellSpec {
            mode: CellMode::Watched,
            ..ukp_cell()
        });
        specs.push(CellSpec {
            dynamics: Dynamics::parse("rr:d=4;zipf:s=12;j1.l1.c0.p500").unwrap(),
            kernel: KernelChoice::Naive,
            ..ukp_cell()
        });
        for s in &specs {
            let v = s.to_json();
            let back = CellSpec::from_json(&v).unwrap();
            assert_eq!(&back, s, "roundtrip of {}", s.canonical_key());
            // And the wire text itself parses back identically.
            let reparsed = crate::json::Value::parse(&v.encode()).unwrap();
            assert_eq!(CellSpec::from_json(&reparsed).unwrap(), *s);
        }
    }

    #[test]
    fn wire_json_rejects_bad_specs() {
        let bad = [
            "{}",
            "{\"protocol\":\"nope\",\"n\":1}",
            "{\"protocol\":\"ukp\",\"k\":4}",
            "{\"protocol\":\"ukp\",\"k\":1,\"n\":12,\"trials\":1,\"seed\":1,\"budget\":10}",
            "{\"protocol\":\"ukp\",\"k\":4,\"n\":0,\"trials\":1,\"seed\":1,\"budget\":10}",
            "{\"protocol\":\"ukp\",\"k\":4,\"n\":12,\"trials\":0,\"seed\":1,\"budget\":10}",
            "{\"protocol\":\"basic\",\"k\":4,\"n\":12,\"trials\":1,\"seed\":1,\"budget\":10,\"mode\":\"watched\"}",
            "{\"protocol\":\"ukp\",\"k\":4,\"n\":12,\"trials\":1,\"seed\":1,\"budget\":10,\"mode\":\"trajectory\"}",
        ];
        for text in bad {
            let v = crate::json::Value::parse(text).unwrap();
            assert!(CellSpec::from_json(&v).is_err(), "accepted {text}");
        }
        // Defaults: criterion/mode/kernel may be omitted.
        let v = crate::json::Value::parse(
            "{\"protocol\":\"ukp\",\"k\":4,\"n\":12,\"trials\":2,\"seed\":9,\"budget\":1000}",
        )
        .unwrap();
        let s = CellSpec::from_json(&v).unwrap();
        assert_eq!(s.criterion, CriterionKind::Stable);
        assert_eq!(s.mode, CellMode::Summary);
    }

    #[test]
    fn k_accessor_matches_composition() {
        assert_eq!(ProtocolId::ComposedBipartition { h: 3 }.k(), 8);
        assert_eq!(ProtocolId::ApproxPartition { k: 5 }.k(), 5);
    }
}
