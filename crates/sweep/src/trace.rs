//! Per-cell execution traces: `pp-sweep run --trace <glob>`.
//!
//! Tracing a cell records **trial 0** of that cell — same protocol, same
//! derived seed, same kernel, same budget as the trial the store holds —
//! through a [`pp_trace::TraceRecorder`] and writes the sealed stream to
//! `<store>/<stem>.trace`, next to the cell's content-addressed result.
//! Because trial 0's seed is a pure function of the spec, the trace can
//! be (re)captured at any time, including on a cache hit, and always
//! describes the exact run whose record sits in `<stem>.json`. Cells
//! with a non-default `dynamics` block are recorded through the same
//! agent-based loop their trials execute on (see
//! [`record_dynamics_trial0`]), lifecycle events included — never
//! silently re-simulated on the complete-graph kernels.
//!
//! Captured traces feed the telemetry export: record/byte totals for
//! every traced cell, plus per-rule firings and chain-lifecycle totals
//! for k-partition cells (see [`pp_trace::export`]). `pp-sweep status`
//! reports which cells have traces; `pp-sweep gc` keeps them alive.

use std::path::PathBuf;

use pp_engine::population::{CountPopulation, Population};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::seeds;
use pp_engine::simulator::{RunError, Simulator};
use pp_trace::{Trace, TraceKernel, TraceRecorder};

use crate::spec::{CellMode, CellSpec, KernelChoice, MaterializedCell, ProtocolId};
use crate::store::ResultStore;

/// Match a shell-style glob (`*` = any run, `?` = any one char) against a
/// full name. Hand-rolled (two-pointer with star backtracking) so the
/// sweep stays dependency-free.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let s: Vec<char> = name.chars().collect();
    let (mut pi, mut si) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after *, name pos it matched to)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, mark)) = star {
            // Extend the last * by one more character and retry.
            star = Some((sp, mark + 1));
            pi = sp;
            si = mark + 1;
        } else {
            return false;
        }
    }
    p[pi..].iter().all(|&c| c == '*')
}

/// Where a cell's trace lives: `<store>/<stem>.trace` for
/// directory-backed stores; for mem/log backends (which have no store
/// directory) traces land under `<results>/traces/` instead.
pub fn trace_path(store: &ResultStore, spec: &CellSpec) -> PathBuf {
    let dir = match store.fs_dir() {
        Some(d) => d.to_path_buf(),
        None => pp_analysis::config::results_dir().join("traces"),
    };
    dir.join(format!("{}.trace", spec.file_stem()))
}

/// What tracing one cell produced.
#[derive(Clone, Debug)]
pub struct CellTrace {
    /// The cell's store file stem.
    pub stem: String,
    /// Where the trace was written (or found).
    pub path: PathBuf,
    /// Whether this call recorded the trace (false: reused on disk).
    pub fresh: bool,
    /// Sealed trace size in bytes.
    pub bytes: u64,
    /// Effective interactions in the trace.
    pub effective: u64,
}

/// The seed trial 0 of a cell runs with — the same derivation
/// [`crate::exec::run_one_trial`] uses, so the trace describes exactly
/// the trial the store holds.
fn trial0_seed(spec: &CellSpec) -> u64 {
    match spec.mode {
        CellMode::Trajectory { .. } => spec.seed,
        _ => seeds::derive(spec.seed, 0),
    }
}

/// Record trial 0 of a cell whose `dynamics` block is non-default
/// (restricted topology, skewed/adversarial edge scheduler, or churn).
/// Those trials execute through the agent-based loop in [`pp_topo`], not
/// the count-vector kernels, so the trace is captured through the same
/// loop with the same seed — lifecycle events included — and describes
/// exactly the run the store holds. The header is tagged
/// [`TraceKernel::Naive`]: the dynamics loop is interaction-granular
/// like the naive kernel, and the trace decodes, replays, and
/// classifies like any other. (Only `pp-trace verify`'s live re-run,
/// which assumes the complete-graph kernels, does not apply here.)
fn record_dynamics_trial0(spec: &CellSpec, cell: &MaterializedCell, seed: u64) -> Vec<u8> {
    let pop = CountPopulation::new(&cell.proto, spec.n);
    let mut rec = TraceRecorder::for_run(&cell.proto, &pop, seed, TraceKernel::Naive);
    let outcome = pp_topo::run_dynamics(
        &cell.proto,
        spec.n as usize,
        &spec.dynamics,
        &cell.criterion,
        spec.budget,
        seed,
        &mut rec,
    )
    .unwrap_or_else(|e| panic!("dynamics trace of {} failed: {e}", spec.file_stem()));
    rec.finish(&outcome.final_counts)
}

/// Record trial 0 of `spec` and return the sealed trace bytes.
fn record_trial0(spec: &CellSpec) -> Vec<u8> {
    let cell = spec.materialize();
    let seed = trial0_seed(spec);
    if !spec.dynamics.is_default() {
        return record_dynamics_trial0(spec, &cell, seed);
    }
    let kernel = match spec.kernel {
        KernelChoice::Naive => TraceKernel::Naive,
        KernelChoice::Leap => TraceKernel::Leap,
        // The batch kernel fires whole leaps in bulk and so has no
        // interaction-granular event stream to record. Trace trial 0 of a
        // batch cell on the exact leap kernel instead: the trace is then a
        // faithful exact execution of the same cell seed, a diagnostic
        // stand-in rather than a replay of the stored (bounded-error)
        // batch trial.
        KernelChoice::Batch => TraceKernel::Leap,
    };
    let mut pop = CountPopulation::new(&cell.proto, spec.n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let mut rec = TraceRecorder::for_run(&cell.proto, &pop, seed, kernel);
    let sim = Simulator::new(&cell.proto);
    let outcome = match kernel {
        TraceKernel::Naive => {
            sim.run_observed(&mut pop, &mut sched, &cell.criterion, spec.budget, &mut rec)
        }
        TraceKernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, &cell.criterion, spec.budget, &mut rec)
        }
    };
    match outcome {
        Ok(_) | Err(RunError::InteractionLimit { .. }) => {}
        Err(e) => panic!("trace trial failed: {e}"),
    }
    rec.finish(pop.counts())
}

/// Trace one cell: reuse `<stem>.trace` if present (it is content-addressed
/// by the stem, like the result it sits next to), otherwise record trial 0
/// and write it atomically. Either way, decode the trace and export its
/// telemetry series — per-rule firings and chain-lifecycle totals when the
/// cell runs the paper's k-partition protocol.
pub fn trace_cell(spec: &CellSpec, store: &ResultStore) -> Result<CellTrace, String> {
    let path = trace_path(store, spec);
    let (bytes, fresh) = match std::fs::read(&path) {
        Ok(b) => (b, false),
        Err(_) => {
            let b = record_trial0(spec);
            pp_trace::cli::write_atomic(&path, &b)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            (b, true)
        }
    };
    let trace = Trace::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    let reg = pp_telemetry::global();
    pp_trace::export::export_trace_stats(reg, &trace, bytes.len());
    if matches!(spec.protocol, ProtocolId::UniformKPartition { .. }) {
        let diag = pp_trace::classify(&trace).map_err(|e| format!("{}: {e}", path.display()))?;
        pp_trace::export::export_diagnostics(reg, &diag);
    }
    Ok(CellTrace {
        stem: spec.file_stem(),
        path,
        fresh,
        bytes: bytes.len() as u64,
        effective: trace.effective_len(),
    })
}

/// Trace every cell whose file stem matches `glob` (deduplicated —
/// plans can share cells). Returns the traced cells in input order.
pub fn trace_matching(
    cells: &[CellSpec],
    store: &ResultStore,
    glob: &str,
) -> Result<Vec<CellTrace>, String> {
    let mut seen = std::collections::HashSet::new();
    let mut traced = Vec::new();
    for spec in cells {
        let stem = spec.file_stem();
        if glob_match(glob, &stem) && seen.insert(stem) {
            traced.push(trace_cell(spec, store)?);
        }
    }
    Ok(traced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CriterionKind;

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("pp_sweep_trace_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::at(dir)
    }

    fn ukp_spec(kernel: KernelChoice) -> CellSpec {
        CellSpec {
            protocol: ProtocolId::UniformKPartition { k: 3 },
            n: 12,
            trials: 4,
            seed: 41,
            criterion: CriterionKind::Stable,
            budget: 10_000_000,
            mode: CellMode::Summary,
            kernel,
            dynamics: pp_topo::Dynamics::default_dynamics(),
        }
    }

    #[test]
    fn glob_match_covers_star_and_question() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("ukp-*", "ukp-k4-n96-abc"));
        assert!(glob_match("*-n96-*", "ukp-k4-n96-abc"));
        assert!(glob_match("ukp-k?-n12-*", "ukp-k3-n12-0123456789abcdef"));
        assert!(!glob_match("ukp-*", "basic-k4-n96-abc"));
        assert!(!glob_match("ukp", "ukp-k4"));
        assert!(!glob_match("?", ""));
        assert!(glob_match("**", ""));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-b-y"));
    }

    #[test]
    fn trace_matches_stored_trial0_and_verifies() {
        for kernel in [KernelChoice::Naive, KernelChoice::Leap] {
            let store = temp_store(if kernel == KernelChoice::Naive {
                "t0n"
            } else {
                "t0l"
            });
            let spec = ukp_spec(kernel);
            let t = trace_cell(&spec, &store).unwrap();
            assert!(t.fresh);
            assert!(t.path.exists());

            // The trace is the run the store's trial 0 describes.
            let r = crate::exec::run_cell(
                &spec,
                &store,
                &crate::observer::NullObserver,
                &crate::exec::ExecOptions::default(),
            )
            .unwrap()
            .expect_complete();
            let bytes = std::fs::read(&t.path).unwrap();
            let trace = Trace::decode(&bytes).unwrap();
            assert_eq!(Some(trace.last_step()), r.records[0].interactions);

            // And it passes the full bit-identity verification.
            pp_trace::verify_against_live(&trace).unwrap();

            // Re-tracing reuses the file.
            let again = trace_cell(&spec, &store).unwrap();
            assert!(!again.fresh);
            assert_eq!(again.bytes, t.bytes);
            let _ = std::fs::remove_dir_all(store.dir());
        }
    }

    #[test]
    fn dynamics_cells_trace_through_the_dynamics_loop() {
        // Ring (strands, censors at budget) and complete-with-churn
        // (lifecycle events in the stream): both must be recorded by the
        // same agent-based loop the stored trials ran on, not silently
        // re-simulated on the complete-graph kernels.
        for (tag, fragment, lifecycle) in [
            ("ring", "ring;uniform;j0.l0.c0.p0", 0u64),
            ("churn", "complete;uniform;j2.l1.c1.p200", 4u64),
        ] {
            let store = temp_store(&format!("dyn_{tag}"));
            let mut spec = ukp_spec(KernelChoice::Naive);
            spec.budget = 3_000;
            spec.dynamics = pp_topo::Dynamics::parse(fragment).unwrap();
            assert!(!spec.dynamics.is_default());
            let t = trace_cell(&spec, &store).unwrap();
            assert!(t.fresh);

            // The trace describes the dynamics run the store's trial 0
            // holds: re-running the same loop with the trial-0 seed must
            // land on the recorded final counts.
            let cell = spec.materialize();
            let outcome = pp_topo::run_dynamics(
                &cell.proto,
                spec.n as usize,
                &spec.dynamics,
                &cell.criterion,
                spec.budget,
                trial0_seed(&spec),
                &mut pp_engine::observer::NullObserver,
            )
            .unwrap();
            let bytes = std::fs::read(&t.path).unwrap();
            let trace = Trace::decode(&bytes).unwrap();
            assert_eq!(trace.final_counts, outcome.final_counts);

            // And it replays clean — transitions and lifecycle
            // arithmetic checked record by record.
            let summary = trace.replay_checked(&cell.proto).unwrap();
            assert_eq!(summary.lifecycle, lifecycle);
            let _ = std::fs::remove_dir_all(store.dir());
        }
    }

    #[test]
    fn trace_matching_dedupes_and_filters() {
        let store = temp_store("match");
        let spec = ukp_spec(KernelChoice::Leap);
        let cells = vec![spec.clone(), spec.clone()];
        let traced = trace_matching(&cells, &store, "ukp-*").unwrap();
        assert_eq!(traced.len(), 1, "duplicate cells traced once");
        let none = trace_matching(&cells, &store, "basic-*").unwrap();
        assert!(none.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
