//! Sweep plans: named, declarative bundles of cells plus a reporter.
//!
//! A [`Plan`] is what the paper calls an experiment: the figure sweeps,
//! the baselines, the ablation, and the extension experiments each
//! declare their cell grid up front and render their tables/CSVs from
//! the store afterwards. Because rendering is separated from running,
//! figures regenerate incrementally: a plan whose cells are all cached
//! re-renders without simulating anything.

use pp_engine::seeds;
use pp_protocols::kpartition::UniformKPartition;

use crate::spec::{CellMode, CellSpec, CriterionKind, KernelChoice, ProtocolId};
use crate::store::{CellResult, ResultStore};

/// A plan's reporter: renders tables and CSVs from the (complete) store.
pub type Reporter = Box<dyn Fn(&ResultStore) -> std::io::Result<String> + Send + Sync>;

/// A named experiment: banner, cell grid, and reporter.
pub struct Plan {
    /// CLI name (`pp-sweep run <name>`).
    pub name: &'static str,
    /// Banner title (e.g. "Figure 3").
    pub title: &'static str,
    /// Banner description.
    pub description: &'static str,
    /// The cells this plan needs.
    pub cells: Vec<CellSpec>,
    /// Render tables and CSVs from the (complete) store; returns the
    /// console report text, which includes `wrote <path>` lines for
    /// every file written.
    pub report: Reporter,
}

impl Plan {
    /// Total trials across the plan's cells.
    pub fn total_trials(&self) -> u64 {
        self.cells.iter().map(|c| c.trials as u64).sum()
    }
}

/// Sweep-wide knobs, read once from the environment (`PP_TRIALS`,
/// `PP_SEED`) so every cell of a run agrees on them.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Trials per cell.
    pub trials: usize,
    /// Master seed; cell seeds derive from it.
    pub master_seed: u64,
}

impl PlanConfig {
    /// Read `PP_TRIALS` / `PP_SEED` (with the paper defaults).
    pub fn from_env() -> Self {
        PlanConfig {
            trials: pp_analysis::config::trials(),
            master_seed: pp_analysis::config::master_seed(),
        }
    }
}

/// The paper's-protocol cell at `(k, n)`: stable-signature criterion,
/// the protocol's own interaction budget, cell seed
/// `derive_labelled(master, k, n)` — exactly the legacy
/// `kpartition_cell` wiring, so cached sweeps reproduce the old
/// binaries' numbers.
pub fn ukp_cell(k: usize, n: u64, cfg: PlanConfig, mode: CellMode) -> CellSpec {
    let kp = UniformKPartition::new(k);
    CellSpec {
        protocol: ProtocolId::UniformKPartition { k },
        n,
        trials: cfg.trials,
        seed: seeds::derive_labelled(cfg.master_seed, k as u64, n),
        criterion: CriterionKind::Stable,
        budget: kp.interaction_budget(n),
        mode,
        kernel: KernelChoice::auto_for(mode),
        dynamics: pp_topo::Dynamics::default_dynamics(),
    }
}

/// A baseline-comparison cell: any protocol, effectively-unbounded
/// budget (the baselines have no budget formula; the legacy binary used
/// 10^12), full final-configuration capture for imbalance measurement.
pub fn baseline_cell(protocol: ProtocolId, n: u64, cfg: PlanConfig) -> CellSpec {
    CellSpec {
        protocol,
        n,
        trials: cfg.trials,
        seed: seeds::derive_labelled(cfg.master_seed, protocol.k() as u64, n),
        criterion: CriterionKind::Stable,
        budget: 1_000_000_000_000,
        mode: CellMode::Full,
        kernel: KernelChoice::auto_for(CellMode::Full),
        dynamics: pp_topo::Dynamics::default_dynamics(),
    }
}

/// Load a cell the runner has already completed.
///
/// # Panics
/// If the cell is not in the store — reporters run strictly after the
/// runner, so a miss is a bug (or an externally deleted store file).
pub fn must_load(store: &ResultStore, spec: &CellSpec) -> CellResult {
    store.load(spec).unwrap_or_else(|| {
        panic!(
            "cell {} missing from store {} — run the plan before reporting",
            spec.canonical_key(),
            store.dir().display()
        )
    })
}

/// All registered plans, in `run all` order.
pub fn plans(cfg: PlanConfig) -> Vec<Plan> {
    vec![
        crate::plans::fig3::plan(cfg),
        crate::plans::fig4::plan(cfg),
        crate::plans::fig5::plan(cfg),
        crate::plans::fig6::plan(cfg),
        crate::plans::baselines::plan(cfg),
        crate::plans::ablation_d_states::plan(cfg),
        crate::plans::variants::plan(cfg),
        crate::plans::distributions::plan(cfg),
        crate::plans::trajectory::plan(cfg),
        crate::plans::topo::plan(cfg),
    ]
}

/// Find a plan by name.
pub fn find(name: &str, cfg: PlanConfig) -> Option<Plan> {
    plans(cfg).into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlanConfig {
        PlanConfig {
            trials: 3,
            master_seed: 99,
        }
    }

    #[test]
    fn registry_names_are_unique_and_expected() {
        let names: Vec<&str> = plans(cfg()).iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "baselines",
                "ablation_d_states",
                "variants",
                "distributions",
                "trajectory",
                "topo-families",
            ]
        );
        for n in &names {
            assert!(find(n, cfg()).is_some());
        }
        assert!(find("nope", cfg()).is_none());
    }

    #[test]
    fn every_plan_declares_cells() {
        for p in plans(cfg()) {
            assert!(!p.cells.is_empty(), "{} has no cells", p.name);
            assert!(p.total_trials() > 0);
        }
    }

    #[test]
    fn ukp_cell_matches_legacy_wiring() {
        let c = ukp_cell(4, 96, cfg(), CellMode::Summary);
        let kp = UniformKPartition::new(4);
        assert_eq!(c.seed, seeds::derive_labelled(99, 4, 96));
        assert_eq!(c.budget, kp.interaction_budget(96));
        assert_eq!(c.trials, 3);
    }

    #[test]
    fn shared_cells_dedupe_across_plans() {
        // fig3 and fig4 sweep the same (k, n) grid but in different
        // modes, so their cells must NOT collide; fig5/fig3 overlap
        // nowhere (different n grids). Sanity-check hash disjointness.
        use std::collections::HashSet;
        let all = plans(cfg());
        let fig3: HashSet<u64> = all[0].cells.iter().map(|c| c.content_hash()).collect();
        let fig4: HashSet<u64> = all[1].cells.iter().map(|c| c.content_hash()).collect();
        assert!(fig3.is_disjoint(&fig4));
    }
}
