//! The `pp-sweep` CLI: run/resume/status/gc over the experiment plans.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(pp_sweep::cli::main_with_args(&args));
}
