//! Distributions: the full spread of interactions-to-stability for a few
//! representative cells (the paper reports only means).
//!
//! CSV: `distributions.csv`, one row per `(k, n, trial)` (unchanged).
//! Trial counts are forced to at least 100 so the histograms have shape
//! even under a low `PP_TRIALS` smoke setting — matching the legacy
//! binary.

use std::fmt::Write as _;

use pp_analysis::histogram::{sparkline, Histogram};
use pp_analysis::table::{fmt_f64, Table};

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::CellMode;

const CELLS: [(usize, u64); 4] = [(3, 60), (4, 60), (6, 60), (4, 240)];

fn dist_cfg(cfg: PlanConfig) -> PlanConfig {
    PlanConfig {
        trials: cfg.trials.max(100),
        ..cfg
    }
}

/// Build the distributions plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cfg = dist_cfg(cfg);
    let cells: Vec<_> = CELLS
        .iter()
        .map(|&(k, n)| ukp_cell(k, n, cfg, CellMode::Summary))
        .collect();
    Plan {
        name: "distributions",
        title: "Distributions",
        description: "full spread of interactions-to-stability (the paper plots means only)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let mut csv = Table::new(vec!["k", "n", "trial", "interactions"]);
            let mut summary = Table::new(vec![
                "k",
                "n",
                "mean",
                "median",
                "min",
                "max",
                "max/median",
                "shape",
            ]);

            for &(k, n) in &CELLS {
                let cell = must_load(store, &ukp_cell(k, n, cfg, CellMode::Summary));
                let s = cell.summary();
                let interactions = cell.interactions();
                let samples: Vec<f64> = interactions.iter().map(|&x| x as f64).collect();
                let hist = Histogram::fit(&samples, 12);
                let _ = writeln!(out, "### k = {k}, n = {n} ({} trials)\n", samples.len());
                let _ = writeln!(out, "{}", hist.to_ascii(40));
                summary.row(vec![
                    k.to_string(),
                    n.to_string(),
                    fmt_f64(s.mean),
                    fmt_f64(s.median),
                    fmt_f64(s.min),
                    fmt_f64(s.max),
                    format!("{:.1}", s.max / s.median),
                    sparkline(hist.bins()),
                ]);
                for (i, &x) in interactions.iter().enumerate() {
                    csv.row(vec![
                        k.to_string(),
                        n.to_string(),
                        i.to_string(),
                        x.to_string(),
                    ]);
                }
            }

            let _ = writeln!(out, "{}", summary.to_markdown());
            let _ = writeln!(
                out,
                "Right skew throughout: means sit above medians and worst cases run \
                 several times the typical — concurrent chain collisions are the tail."
            );
            let path = pp_analysis::config::results_path("distributions.csv");
            csv.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
