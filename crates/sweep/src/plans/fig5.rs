//! Figure 5: interactions vs `n = 120·n'` for `k ∈ {3,4,5,6}` with
//! `n mod k = 0` (growth superlinear but subexponential).
//!
//! CSV: `fig5.csv`, columns `k,n` + the canonical summary block. (The
//! legacy CSV lacked `min`/`median`/`max`; adopting
//! `Table::SUMMARY_HEADERS` adds them.)

use std::fmt::Write as _;

use pp_analysis::fit;
use pp_analysis::table::{fmt_f64, Table};

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::CellMode;

const KS: [usize; 4] = [3, 4, 5, 6];

fn ns() -> Vec<u64> {
    (1..=8).map(|np| 120 * np).collect()
}

/// Build the Figure 5 plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = KS
        .iter()
        .flat_map(|&k| {
            ns().into_iter()
                .map(move |n| ukp_cell(k, n, cfg, CellMode::Summary))
        })
        .collect();
    Plan {
        name: "fig5",
        title: "Figure 5",
        description: "interactions vs n = 120·n' for k in {3,4,5,6} (n mod k = 0)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let ns = ns();
            let mut csv = Table::new(
                ["k", "n"]
                    .iter()
                    .map(|h| h.to_string())
                    .chain(Table::SUMMARY_HEADERS.iter().map(|h| h.to_string()))
                    .collect::<Vec<_>>(),
            );
            let mut matrix = Table::new(
                std::iter::once("k / n".to_string())
                    .chain(ns.iter().map(|n| n.to_string()))
                    .collect::<Vec<_>>(),
            );
            let mut fits = Table::new(vec!["k", "power-law exponent b", "r^2"]);

            for &k in &KS {
                let mut row = vec![k.to_string()];
                let mut points: Vec<(f64, f64)> = Vec::new();
                for &n in &ns {
                    let cell = must_load(store, &ukp_cell(k, n, cfg, CellMode::Summary));
                    let s = cell.summary();
                    row.push(fmt_f64(s.mean));
                    points.push((n as f64, s.mean));
                    csv.push_summary_row(
                        vec![k.to_string(), n.to_string()],
                        &s,
                        cell.censored(),
                        vec![],
                    );
                }
                matrix.row(row);
                let (b, r2) = fit::power_law_exponent(&points);
                fits.row(vec![k.to_string(), fmt_f64(b), fmt_f64(r2)]);
                let ratios = fit::growth_ratios(&points.iter().map(|p| p.1).collect::<Vec<_>>());
                let _ = writeln!(
                    out,
                    "k = {k}: growth ratios per n-doubling step {:?}",
                    ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
                );
            }

            let _ = writeln!(out, "\n### Mean interactions (rows: k, columns: n)\n");
            let _ = writeln!(out, "{}", matrix.to_markdown());
            let _ = writeln!(
                out,
                "### Power-law fits mean ∝ n^b (superlinear, subexponential expected)\n"
            );
            let _ = writeln!(out, "{}", fits.to_markdown());
            let path = pp_analysis::config::results_path("fig5.csv");
            csv.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
