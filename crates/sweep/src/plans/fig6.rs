//! Figure 6: interactions vs `k` at `n = 960` — exponential in `k`.
//!
//! CSV: `fig6.csv`, columns `k` + the canonical summary block +
//! `log10(mean)`. (The legacy CSV interleaved `log10(mean)` into the
//! middle and lacked `min`/`median`/`max`.)
//!
//! Grid `k ∈ {2,…,12}` by default; `PP_FIG6_KMAX=16` extends it — the
//! knob participates in cell construction, so different settings address
//! different store entries.

use std::fmt::Write as _;

use pp_analysis::fit;
use pp_analysis::table::{fmt_f64, Table};

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::CellMode;

const N: u64 = 960;

/// The k grid: divisors of 960 up to `PP_FIG6_KMAX` (default 12).
pub fn ks() -> Vec<usize> {
    let kmax: usize = std::env::var("PP_FIG6_KMAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    [2usize, 3, 4, 5, 6, 8, 10, 12, 15, 16]
        .into_iter()
        .filter(|&k| k <= kmax)
        .collect()
}

/// Build the Figure 6 plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = ks()
        .into_iter()
        .map(|k| ukp_cell(k, N, cfg, CellMode::Summary))
        .collect();
    Plan {
        name: "fig6",
        title: "Figure 6",
        description: "interactions vs k at n = 960 (log scale)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let mut table = Table::new(
                std::iter::once("k".to_string())
                    .chain(Table::SUMMARY_HEADERS.iter().map(|h| h.to_string()))
                    .chain(std::iter::once("log10(mean)".to_string()))
                    .collect::<Vec<_>>(),
            );
            let mut points: Vec<(f64, f64)> = Vec::new();
            for k in ks() {
                let cell = must_load(store, &ukp_cell(k, N, cfg, CellMode::Summary));
                let s = cell.summary();
                let _ = writeln!(out, "k = {k:2}: mean = {:>14}", fmt_f64(s.mean));
                table.push_summary_row(
                    vec![k.to_string()],
                    &s,
                    cell.censored(),
                    vec![fmt_f64(s.mean.log10())],
                );
                points.push((k as f64, s.mean));
            }

            let _ = writeln!(out, "\n### Mean interactions at n = 960\n");
            let _ = writeln!(out, "{}", table.to_markdown());

            let (c, r2) = fit::exponential_base(&points);
            let _ = writeln!(
                out,
                "semi-log fit: mean ∝ {c:.2}^k (r^2 = {r2:.3}) — exponential in k"
            );
            let ratios = fit::growth_ratios(&points.iter().map(|p| p.1).collect::<Vec<_>>());
            let _ = writeln!(
                out,
                "successive growth ratios: {:?}",
                ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
            );

            let path = pp_analysis::config::results_path("fig6.csv");
            table.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
