//! Figure 4: decomposition of the interaction count into per-grouping
//! increments `NI'_i` plus the remainder tail.
//!
//! CSV: `fig4_k<k>.csv`, columns `k,n,segment,mean,sem` (unchanged from
//! the legacy binary — the segment axis doesn't fit the canonical
//! summary block).

use std::fmt::Write as _;

use pp_analysis::grouping::grouping_breakdown;
use pp_analysis::table::{fmt_f64, Table};

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::CellMode;

const KS: [usize; 3] = [4, 6, 8];

/// Build the Figure 4 plan (the Figure 3 grid, instrumented).
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = KS
        .iter()
        .flat_map(|&k| {
            super::fig3::ns_for(k)
                .into_iter()
                .map(move |n| ukp_cell(k, n, cfg, CellMode::Watched))
        })
        .collect();
    Plan {
        name: "fig4",
        title: "Figure 4",
        description: "interactions per i-th grouping (stacked decomposition)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            for &k in &KS {
                let ku = k as u64;
                let mut csv = Table::new(vec!["k", "n", "segment", "mean", "sem"]);
                let show: Vec<u64> = ((4 * ku + 2)..=(5 * ku + 1)).collect();
                let mut shown =
                    Table::new(vec!["n", "groupings", "NI'_1", "NI'_last", "tail", "total"]);
                for n in super::fig3::ns_for(k) {
                    let cell = must_load(store, &ukp_cell(k, n, cfg, CellMode::Watched));
                    let b = grouping_breakdown(&cell.watched());
                    for (i, s) in b.increments.iter().enumerate() {
                        csv.row(vec![
                            k.to_string(),
                            n.to_string(),
                            format!("NI'_{}", i + 1),
                            fmt_f64(s.mean),
                            fmt_f64(s.sem),
                        ]);
                    }
                    csv.row(vec![
                        k.to_string(),
                        n.to_string(),
                        "tail".to_string(),
                        fmt_f64(b.tail.mean),
                        fmt_f64(b.tail.sem),
                    ]);
                    if show.contains(&n) {
                        shown.row(vec![
                            n.to_string(),
                            b.increments.len().to_string(),
                            fmt_f64(b.increments.first().map_or(0.0, |s| s.mean)),
                            fmt_f64(b.increments.last().map_or(0.0, |s| s.mean)),
                            fmt_f64(b.tail.mean),
                            fmt_f64(b.mean_total()),
                        ]);
                    }
                }
                let _ = writeln!(
                    out,
                    "### k = {k} — one period n = {}..{} (NI'_last dominating near n mod k ∈ {{0,1}})\n",
                    4 * ku + 2,
                    5 * ku + 1
                );
                let _ = writeln!(out, "{}", shown.to_markdown());
                let path = pp_analysis::config::results_path(&format!("fig4_k{k}.csv"));
                csv.write_csv(&path)?;
                let _ = writeln!(out, "wrote {}\n", path.display());
            }
            Ok(out)
        }),
    }
}
