//! Variants: one-sided chain abort vs the paper's rule 8 (both-abort) —
//! same states, same stable configurations, much cheaper in k.
//!
//! CSV: `variants.csv` (columns unchanged from the legacy binary).

use std::fmt::Write as _;

use pp_analysis::fit;
use pp_analysis::table::{fmt_f64, Table};

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::{CellMode, CellSpec, ProtocolId};

const NS: [u64; 2] = [240, 480];
const KS: [usize; 5] = [3, 4, 5, 6, 8];

/// The variant's cell: identical to the paper's (same cell seed, same
/// interaction budget — the legacy binary shared one `TrialConfig`),
/// only the protocol differs.
fn variant_cell(k: usize, n: u64, cfg: PlanConfig) -> CellSpec {
    CellSpec {
        protocol: ProtocolId::OneSidedAbort { k },
        ..ukp_cell(k, n, cfg, CellMode::Summary)
    }
}

/// Build the variants plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let mut cells = Vec::new();
    for &n in &NS {
        for &k in &KS {
            cells.push(ukp_cell(k, n, cfg, CellMode::Summary));
            cells.push(variant_cell(k, n, cfg));
        }
    }
    Plan {
        name: "variants",
        title: "Variants",
        description: "one-sided chain abort vs the paper's rule 8 (both-abort)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let mut table = Table::new(vec!["n", "k", "paper mean", "variant mean", "speedup"]);
            for &n in &NS {
                let mut paper_pts = Vec::new();
                let mut variant_pts = Vec::new();
                for &k in &KS {
                    let paper = must_load(store, &ukp_cell(k, n, cfg, CellMode::Summary))
                        .summary()
                        .mean;
                    let variant = must_load(store, &variant_cell(k, n, cfg)).summary().mean;
                    paper_pts.push((k as f64, paper));
                    variant_pts.push((k as f64, variant));
                    table.row(vec![
                        n.to_string(),
                        k.to_string(),
                        fmt_f64(paper),
                        fmt_f64(variant),
                        format!("{:.2}x", paper / variant),
                    ]);
                }
                let (pb, pr2) = fit::exponential_base(&paper_pts);
                let (vb, vr2) = fit::exponential_base(&variant_pts);
                let _ = writeln!(
                    out,
                    "n = {n}: paper ∝ {pb:.2}^k (r²={pr2:.2}), variant ∝ {vb:.2}^k (r²={vr2:.2})"
                );
            }

            let _ = writeln!(out, "\n{}", table.to_markdown());
            let _ = writeln!(
                out,
                "The variant wins increasingly with k — consistent with §5.2's analysis \
                 that destroyed chains are what makes the paper's protocol exponential. \
                 (Correctness of the variant is model-checked, not proved; see \
                 tests/model_check.rs.)"
            );
            let path = pp_analysis::config::results_path("variants.csv");
            table.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
