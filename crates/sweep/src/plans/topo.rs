//! Topology families: convergence probability and stabilisation-time gap
//! of the paper's protocol off the complete graph, with and without
//! churn.
//!
//! The paper's model (and every proof in it) assumes the complete
//! interaction graph. This plan measures what breaks when that
//! assumption is dropped: each cell runs the k-partition protocol under
//! a non-default [`Dynamics`] — ring, random-regular, power-law — and,
//! in a second band, under a net-zero churn plan on each family. Sparse
//! topologies can strand chain-builders (a chain's members may never
//! meet the partners rules 5–8 need), so trials that exhaust the budget
//! are *censored*, not failures; the honest headline numbers are the
//! convergence rate and, among converged trials only, the mean gap
//! versus the complete graph.
//!
//! CSV: `topo_gap.csv`, one row per `(family, churn)` cell.

use std::fmt::Write as _;

use pp_analysis::table::{fmt_f64, Table};
use pp_engine::seeds;
use pp_protocols::kpartition::UniformKPartition;
use pp_topo::Dynamics;

use crate::plan::{must_load, Plan, PlanConfig};
use crate::spec::{CellMode, CellSpec, CriterionKind, KernelChoice, ProtocolId};

const K: usize = 3;
const N: u64 = 18;

/// `(label, dynamics fragment)` grid: four families, each without and
/// with a net-zero churn plan (2 joins, 1 leave, 1 crash, every 2000
/// interactions). Net-zero keeps the stable signature target at `n`, so
/// the convergence-rate column isolates the *disruption* cost of churn
/// from the population-shift cost.
const GRID: [(&str, &str, &str); 8] = [
    ("complete", "none", "complete;uniform;j0.l0.c0.p0"),
    ("ring", "none", "ring;uniform;j0.l0.c0.p0"),
    ("rr4", "none", "rr:d=4;uniform;j0.l0.c0.p0"),
    ("pl25", "none", "pl:g=25;uniform;j0.l0.c0.p0"),
    ("complete", "j2l1c1", "complete;uniform;j2.l1.c1.p2000"),
    ("ring", "j2l1c1", "ring;uniform;j2.l1.c1.p2000"),
    ("rr4", "j2l1c1", "rr:d=4;uniform;j2.l1.c1.p2000"),
    ("pl25", "j2l1c1", "pl:g=25;uniform;j2.l1.c1.p2000"),
];

/// A topology cell: the paper's protocol at `(K, N)` on a declared
/// dynamics, pinned to the naive kernel (the only kernel defined off the
/// default dynamics; see `CellSpec::validate_dynamics`). The complete
/// no-churn cell deliberately uses an *explicit* default-dynamics spec:
/// it keys identically to a plain v3 cell, exercising the loss-free
/// KEY_VERSION bump on every run of this plan.
fn topo_cell(fragment: &str, cfg: PlanConfig) -> CellSpec {
    let kp = UniformKPartition::new(K);
    let dynamics = Dynamics::parse(fragment)
        .unwrap_or_else(|e| panic!("plan-internal dynamics fragment {fragment:?}: {e}"));
    CellSpec {
        protocol: ProtocolId::UniformKPartition { k: K },
        n: N,
        trials: cfg.trials,
        // Independent of the ukp_cell(k, n) stream: labelled by the
        // dynamics fragment's own hash so every grid cell gets a
        // distinct, stable seed.
        seed: seeds::derive_labelled(
            cfg.master_seed,
            crate::spec::fnv1a64(fragment.as_bytes()),
            N,
        ),
        criterion: CriterionKind::Stable,
        budget: kp.interaction_budget(N),
        mode: CellMode::Summary,
        kernel: KernelChoice::Naive,
        dynamics,
    }
}

/// Build the topology-families plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = GRID
        .iter()
        .map(|&(_, _, frag)| topo_cell(frag, cfg))
        .collect();
    Plan {
        name: "topo-families",
        title: "Topology families",
        description: "convergence probability and stabilisation-time gap off the complete graph",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let mut table = Table::new(vec![
                "family",
                "churn",
                "trials",
                "converged",
                "rate",
                "mean (conv.)",
                "gap vs complete",
            ]);
            let mut csv = Table::new(vec![
                "family",
                "churn",
                "n",
                "trials",
                "converged",
                "convergence_rate",
                "mean_interactions",
                "gap_vs_complete",
            ]);

            // Baseline: mean over converged trials of the complete
            // no-churn cell (always the grid's first entry).
            let base = must_load(store, &topo_cell(GRID[0].2, cfg));
            let base_mean = mean(&base.interactions());

            for &(family, churn, frag) in &GRID {
                let cell = must_load(store, &topo_cell(frag, cfg));
                let ints = cell.interactions();
                let trials = cell.records.len();
                let converged = ints.len();
                let rate = converged as f64 / trials as f64;
                let m = mean(&ints);
                let gap = match (m, base_mean) {
                    (Some(m), Some(b)) if b > 0.0 => Some(m / b),
                    _ => None,
                };
                table.row(vec![
                    family.to_string(),
                    churn.to_string(),
                    trials.to_string(),
                    converged.to_string(),
                    format!("{rate:.2}"),
                    m.map_or("—".into(), fmt_f64),
                    gap.map_or("—".into(), |g| format!("{g:.2}x")),
                ]);
                csv.row(vec![
                    family.to_string(),
                    churn.to_string(),
                    N.to_string(),
                    trials.to_string(),
                    converged.to_string(),
                    format!("{rate:.4}"),
                    m.map_or(String::new(), |m| format!("{m:.1}")),
                    gap.map_or(String::new(), |g| format!("{g:.4}")),
                ]);
            }

            let _ = writeln!(out, "{}", table.to_markdown());
            let _ = writeln!(
                out,
                "Censored trials hit the interaction budget without stabilising — on \
                 sparse families the chain-builder can strand (no enabled pair advances \
                 it), and leave/crash churn can remove a settled agent the partition \
                 cannot replace, so sub-1.00 rates are the expected, honest reading; \
                 the gap column compares converged trials only."
            );
            let path = pp_analysis::config::results_path("topo_gap.csv");
            csv.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}

/// Mean of converged-trial interaction counts, `None` when all censored.
fn mean(ints: &[u64]) -> Option<f64> {
    if ints.is_empty() {
        return None;
    }
    Some(ints.iter().sum::<u64>() as f64 / ints.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cells_are_valid_and_distinct() {
        let cfg = PlanConfig {
            trials: 2,
            master_seed: 7,
        };
        let p = plan(cfg);
        assert_eq!(p.cells.len(), GRID.len());
        let mut hashes: Vec<u64> = p.cells.iter().map(|c| c.content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), GRID.len(), "grid cells collide");
        for c in &p.cells {
            c.validate_dynamics().expect("grid cell invalid");
        }
    }

    #[test]
    fn complete_cell_reuses_legacy_keying() {
        // The complete no-churn grid cell parses to default dynamics and
        // therefore keys as a v3 cell — the loss-free bump in action.
        let cfg = PlanConfig {
            trials: 2,
            master_seed: 7,
        };
        let c = topo_cell(GRID[0].2, cfg);
        assert!(c.dynamics.is_default());
        assert!(c.canonical_key().starts_with("v3|"));
    }
}
