//! Ablation: the §3.2 "basic strategy" (rules 1–7, no D states) vs the
//! full protocol — deadlock rate and imbalance of the silent-but-wrong
//! outcomes.
//!
//! CSV: `ablation_d_states.csv` (columns unchanged from the legacy
//! binary; the deadlock axis doesn't fit the canonical summary block).

use std::fmt::Write as _;

use pp_analysis::table::{fmt_f64, Table};
use pp_engine::population::{CountPopulation, Population};
use pp_engine::seeds;
use pp_protocols::kpartition::ablation::BasicStrategyKPartition;

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::{CellMode, CellSpec, CriterionKind, KernelChoice, ProtocolId};

const CELLS: [(usize, u64); 6] = [(3, 12), (4, 12), (4, 24), (5, 20), (6, 24), (8, 32)];

/// The basic-strategy cell: silent criterion (deadlocks are silent),
/// the legacy binary's 10^9 budget, full capture for imbalance.
fn basic_cell(k: usize, n: u64, cfg: PlanConfig) -> CellSpec {
    CellSpec {
        protocol: ProtocolId::BasicStrategy { k },
        n,
        trials: cfg.trials,
        seed: seeds::derive_labelled(cfg.master_seed, k as u64, n),
        criterion: CriterionKind::Silent,
        budget: 1_000_000_000,
        mode: CellMode::Full,
        kernel: KernelChoice::auto_for(CellMode::Full),
        dynamics: pp_topo::Dynamics::default_dynamics(),
    }
}

/// Build the ablation plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let mut cells = Vec::new();
    for &(k, n) in &CELLS {
        cells.push(basic_cell(k, n, cfg));
        cells.push(ukp_cell(k, n, cfg, CellMode::Summary));
    }
    Plan {
        name: "ablation_d_states",
        title: "Ablation",
        description: "basic strategy (rules 1-7) vs full protocol: deadlock rate and imbalance",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let mut table = Table::new(vec![
                "k",
                "n",
                "deadlock rate",
                "mean imbalance (failed)",
                "max imbalance",
                "mean interactions (basic)",
                "mean interactions (full)",
            ]);
            for &(k, n) in &CELLS {
                let bp = BasicStrategyKPartition::new(k);
                let basic = must_load(store, &basic_cell(k, n, cfg));
                let proto = basic.spec.materialize().proto;
                let outcomes = basic.outcomes();

                let mut deadlocks = 0usize;
                let mut imbalance_sum = 0u64;
                let mut imbalance_max = 0u64;
                let mut interactions_sum = 0u64;
                let mut completed = 0usize;
                for o in &outcomes {
                    if let Some(x) = o.interactions {
                        interactions_sum += x;
                        completed += 1;
                    }
                    let pop = CountPopulation::from_counts(o.final_counts.clone());
                    let sizes = pop.group_sizes(&proto);
                    let imb = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
                    if bp.is_deadlocked(o.final_counts.as_slice()) {
                        deadlocks += 1;
                        imbalance_sum += imb;
                        imbalance_max = imbalance_max.max(imb);
                    } else {
                        assert!(imb <= 1, "non-deadlocked basic run must be uniform");
                    }
                }
                let full = must_load(store, &ukp_cell(k, n, cfg, CellMode::Summary));

                table.row(vec![
                    k.to_string(),
                    n.to_string(),
                    format!("{:.2}", deadlocks as f64 / outcomes.len() as f64),
                    if deadlocks > 0 {
                        fmt_f64(imbalance_sum as f64 / deadlocks as f64)
                    } else {
                        "-".to_string()
                    },
                    imbalance_max.to_string(),
                    if completed > 0 {
                        fmt_f64(interactions_sum as f64 / completed as f64)
                    } else {
                        "-".to_string()
                    },
                    fmt_f64(full.summary().mean),
                ]);
            }

            let _ = writeln!(out, "{}", table.to_markdown());
            let _ = writeln!(
                out,
                "A non-zero deadlock rate confirms §3.2: rules 1-7 alone do not solve uniform \
                 k-partition; the D states (rules 8-10) are what make every globally fair \
                 execution stabilise uniformly."
            );
            let path = pp_analysis::config::results_path("ablation_d_states.csv");
            table.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
