//! Trajectory: the ratcheting of `#g_k` over one sampled execution per
//! `k` — Lemma 4 in motion.
//!
//! CSV: `trajectory.csv`, columns `k,interaction,gk,builders,demolishers,
//! free` (unchanged). Cells are single seeded runs (`trials = 1`) whose
//! scheduler seed is `master ^ k`, matching the legacy binary
//! byte-for-byte; the stored record keeps the raw sampled count vectors
//! so the derived series can be re-rendered without re-running.

use std::fmt::Write as _;

use pp_analysis::table::Table;
use pp_protocols::kpartition::UniformKPartition;

use crate::plan::{must_load, Plan, PlanConfig};
use crate::spec::{CellMode, CellSpec, CriterionKind, KernelChoice, ProtocolId};

const KS: [usize; 3] = [4, 6, 8];
const N: u64 = 240;
const SAMPLE_EVERY: u64 = 256;

fn traj_cell(k: usize, cfg: PlanConfig) -> CellSpec {
    let kp = UniformKPartition::new(k);
    CellSpec {
        protocol: ProtocolId::UniformKPartition { k },
        n: N,
        trials: 1,
        // The legacy binary seeded the scheduler with `seed ^ k` directly
        // (no per-trial derivation); trajectory mode preserves that.
        seed: cfg.master_seed ^ k as u64,
        criterion: CriterionKind::Stable,
        budget: kp.interaction_budget(N),
        mode: CellMode::Trajectory {
            sample_every: SAMPLE_EVERY,
        },
        // Trajectory capture samples every interaction (identities
        // included), which only the naive kernel reports.
        kernel: KernelChoice::Naive,
        dynamics: pp_topo::Dynamics::default_dynamics(),
    }
}

/// Build the trajectory plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = KS.iter().map(|&k| traj_cell(k, cfg)).collect();
    Plan {
        name: "trajectory",
        title: "Trajectory",
        description: "ratcheting of #g_k over one execution (Lemma 4 in motion)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            let mut csv = Table::new(vec![
                "k",
                "interaction",
                "gk",
                "builders",
                "demolishers",
                "free",
            ]);

            for &k in &KS {
                let kp = UniformKPartition::new(k);
                let cell = must_load(store, &traj_cell(k, cfg));
                let rec = &cell.records[0];
                let total = rec.interactions.expect("trajectory run stabilises");
                let samples = rec.samples.as_ref().expect("trajectory-mode record");

                let target = N / k as u64;
                let _ = writeln!(
                    out,
                    "k = {k}: stabilised at {total} interactions; #g_k target {target}"
                );
                let derive = |counts: &[u64]| {
                    let gk = counts[kp.g(k).index()];
                    let builders: u64 = (2..k).map(|i| counts[kp.m(i).index()]).sum();
                    let demols: u64 = (1..k - 1).map(|i| counts[kp.d(i).index()]).sum();
                    let free = counts[kp.initial().index()] + counts[kp.initial_prime().index()];
                    (gk, builders, demols, free)
                };
                // ASCII ratchet: one row per ~1/20th of the run.
                let stride = (samples.len() / 20).max(1);
                for row in samples.iter().step_by(stride) {
                    let (t, counts) = (row[0], &row[1..]);
                    let (gk, builders, demols, free) = derive(counts);
                    let bar = "#".repeat((gk * 40 / target.max(1)) as usize);
                    let _ = writeln!(
                        out,
                        "  {t:>9} |{bar:<40}| gk={gk:<3} m={builders:<3} d={demols:<3} free={free}"
                    );
                }
                for row in samples {
                    let (t, counts) = (row[0], &row[1..]);
                    let (gk, builders, demols, free) = derive(counts);
                    csv.row(vec![
                        k.to_string(),
                        t.to_string(),
                        gk.to_string(),
                        builders.to_string(),
                        demols.to_string(),
                        free.to_string(),
                    ]);
                }
                let _ = writeln!(out);
            }

            let path = pp_analysis::config::results_path("trajectory.csv");
            csv.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
