//! Baselines: the paper's protocol vs composed bipartition (`k = 2^h`)
//! and the approximate-partition stand-in, measured on interactions *and*
//! uniformity (group imbalance of the stable outcome).
//!
//! CSV: `baselines.csv`, columns `protocol,k,n,states` + the canonical
//! summary block + `mean imbalance,max imbalance,every group >= n/2k`.
//! (The legacy CSV reported only the mean; the summary block adds
//! spread.)

use std::fmt::Write as _;

use pp_analysis::table::{fmt_f64, Table};
use pp_engine::population::{CountPopulation, Population};

use crate::plan::{baseline_cell, must_load, Plan, PlanConfig};
use crate::spec::{CellSpec, ProtocolId};
use crate::store::{CellResult, ResultStore};

/// The comparison grid, in report order: `(display name, cell)`.
fn comparison(cfg: PlanConfig) -> Vec<(&'static str, CellSpec)> {
    let mut out = Vec::new();
    // Power-of-two k: paper vs the composed-bipartition strawman (same
    // 3k − 2 states). 96 and 480 split evenly at every level; 99 ≡ 3
    // (mod 4) strands agents at two levels, pushing the composed
    // baseline's imbalance beyond the ±1 the problem demands.
    for (k, n) in [
        (4usize, 96u64),
        (4, 99),
        (4, 480),
        (8, 96),
        (8, 99),
        (8, 480),
    ] {
        out.push((
            "uniform-k-partition (paper)",
            baseline_cell(ProtocolId::UniformKPartition { k }, n, cfg),
        ));
        out.push((
            "composed bipartition (2^h)",
            baseline_cell(
                ProtocolId::ComposedBipartition {
                    h: k.trailing_zeros(),
                },
                n,
                cfg,
            ),
        ));
    }
    // Non-power-of-two k: composition doesn't exist; the approximate
    // baseline (≥ n/(2k) floor) is the only prior-work comparator.
    for (k, n) in [(6usize, 96u64), (6, 480), (5, 100)] {
        out.push((
            "uniform-k-partition (paper)",
            baseline_cell(ProtocolId::UniformKPartition { k }, n, cfg),
        ));
        out.push((
            "approximate (>= n/2k)",
            baseline_cell(ProtocolId::ApproxPartition { k }, n, cfg),
        ));
    }
    out
}

fn push_row(table: &mut Table, name: &str, cell: &CellResult) {
    let spec = &cell.spec;
    let proto = spec.materialize().proto;
    let k = spec.protocol.k() as u64;
    assert_eq!(cell.censored(), 0, "{name}: censored trials");
    let mut sum_imb = 0u64;
    let mut max_imb = 0u64;
    let mut min_group_ok = true;
    let outcomes = cell.outcomes();
    for o in &outcomes {
        let pop = CountPopulation::from_counts(o.final_counts.clone());
        let sizes = pop.group_sizes(&proto);
        let imb = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
        sum_imb += imb;
        max_imb = max_imb.max(imb);
        if sizes.iter().any(|&s| s < spec.n / (2 * k)) {
            min_group_ok = false;
        }
    }
    table.push_summary_row(
        vec![
            name.to_string(),
            k.to_string(),
            spec.n.to_string(),
            proto.num_states().to_string(),
        ],
        &cell.summary(),
        cell.censored(),
        vec![
            fmt_f64(sum_imb as f64 / outcomes.len() as f64),
            max_imb.to_string(),
            if min_group_ok { "yes" } else { "NO" }.to_string(),
        ],
    );
}

/// Build the baselines plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = comparison(cfg).into_iter().map(|(_, c)| c).collect();
    Plan {
        name: "baselines",
        title: "Baselines",
        description: "paper's protocol vs composed bipartition vs approximate partition",
        cells,
        report: Box::new(move |store: &ResultStore| {
            let mut out = String::new();
            let mut table = Table::new(
                ["protocol", "k", "n", "states"]
                    .iter()
                    .map(|h| h.to_string())
                    .chain(Table::SUMMARY_HEADERS.iter().map(|h| h.to_string()))
                    .chain(
                        ["mean imbalance", "max imbalance", "every group >= n/2k"]
                            .iter()
                            .map(|h| h.to_string()),
                    )
                    .collect::<Vec<_>>(),
            );
            for (name, spec) in comparison(cfg) {
                push_row(&mut table, name, &must_load(store, &spec));
            }
            let _ = writeln!(out, "{}", table.to_markdown());
            let _ = writeln!(
                out,
                "Reading: only the paper's protocol keeps max imbalance <= 1; the composed \
                 baseline trades uniformity for (sometimes) fewer interactions, and the \
                 approximate baseline only promises the n/(2k) floor."
            );
            let path = pp_analysis::config::results_path("baselines.csv");
            table.write_csv(&path)?;
            let _ = writeln!(out, "wrote {}", path.display());
            Ok(out)
        }),
    }
}
