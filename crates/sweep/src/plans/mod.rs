//! The registered experiment plans — one module per legacy binary.
//!
//! Each module exposes `plan(cfg) -> Plan` declaring its cell grid and a
//! reporter that rebuilds the binary's console output and CSVs from the
//! store. Cell wiring (seeds, budgets, criteria) matches the legacy
//! binaries exactly, so cached sweeps reproduce their numbers bit for
//! bit; a few CSVs gained columns by adopting the canonical
//! [`Table::SUMMARY_HEADERS`](pp_analysis::table::Table::SUMMARY_HEADERS)
//! block (noted per module).

pub mod ablation_d_states;
pub mod baselines;
pub mod distributions;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod topo;
pub mod trajectory;
pub mod variants;
