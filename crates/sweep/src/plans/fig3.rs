//! Figure 3: mean interactions vs `n` for `k ∈ {4, 6, 8}` — the sawtooth
//! with period `k` driven by `n mod k`.
//!
//! CSV: `fig3_k<k>.csv`, columns `k,n,n_mod_k` + the canonical summary
//! block (same columns the legacy binary wrote).

use std::fmt::Write as _;

use pp_analysis::table::Table;

use crate::plan::{must_load, ukp_cell, Plan, PlanConfig};
use crate::spec::CellMode;

const KS: [usize; 3] = [4, 6, 8];

/// The full `n` grid for one `k` (consecutive, to expose the sawtooth).
pub fn ns_for(k: usize) -> Vec<u64> {
    ((k as u64 + 2)..=96).collect()
}

/// Build the Figure 3 plan.
pub fn plan(cfg: PlanConfig) -> Plan {
    let cells: Vec<_> = KS
        .iter()
        .flat_map(|&k| {
            ns_for(k)
                .into_iter()
                .map(move |n| ukp_cell(k, n, cfg, CellMode::Summary))
        })
        .collect();
    Plan {
        name: "fig3",
        title: "Figure 3",
        description: "interactions vs n for k in {4, 6, 8} (sawtooth with period k)",
        cells,
        report: Box::new(move |store| {
            let mut out = String::new();
            for &k in &KS {
                let mut table = Table::new(
                    ["k", "n", "n mod k"]
                        .iter()
                        .map(|h| h.to_string())
                        .chain(Table::SUMMARY_HEADERS.iter().map(|h| h.to_string()))
                        .collect::<Vec<_>>(),
                );
                for n in ns_for(k) {
                    let cell = must_load(store, &ukp_cell(k, n, cfg, CellMode::Summary));
                    table.push_summary_row(
                        vec![k.to_string(), n.to_string(), (n % k as u64).to_string()],
                        &cell.summary(),
                        cell.censored(),
                        vec![],
                    );
                }
                let _ = writeln!(out, "### k = {k}\n");
                let _ = writeln!(out, "{}", table.to_markdown());
                let path = pp_analysis::config::results_path(&format!("fig3_k{k}.csv"));
                table.write_csv(&path)?;
                let _ = writeln!(out, "wrote {}\n", path.display());
            }
            Ok(out)
        }),
    }
}
