//! Content-addressed result store, generic over [`StoreBackend`]s.
//!
//! A completed cell is addressed by the [content
//! hash](crate::spec::CellSpec::content_hash) of its spec; re-running a
//! plan whose cells are all stored is a pure cache hit: the runner never
//! simulates, and reporters regenerate figures from the stored trial
//! records. *Where* the records live is now pluggable (see
//! [`crate::backend`]):
//!
//! * [`FsBackend`](crate::backend::FsBackend) — one JSON file per cell
//!   under `<results>/store/`, the historical layout, bit-for-bit
//!   compatible with every store written before the backend split;
//! * [`MemBackend`](crate::backend::MemBackend) — a process-local map,
//!   for tests and ephemeral serving;
//! * [`LogBackend`](crate::backend::LogBackend) — a single append-only
//!   journal file with an in-memory index and periodic compaction,
//!   sized for millions of small cells (the `pp-serve` cache tier).
//!
//! [`ResultStore`] is the handle the rest of the crate (and `pp-serve`)
//! passes around: a thin, cloneable wrapper over an `Arc<dyn
//! StoreBackend>` that also hosts the invariant checks every backend
//! must honour (complete, trial-sorted record sets on save; key
//! verification on load).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::backend::{
    BackendStats, FsBackend, GcOutcome, JournalSink, LogBackend, MemBackend, StoreBackend,
};
use crate::journal::JournalState;
use crate::json::Value;
use crate::spec::CellSpec;

/// One trial's persisted outcome. Which optional fields are present
/// depends on the cell's [`CellMode`](crate::spec::CellMode); `Summary`
/// cells store only `trial` + `interactions`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialRecord {
    /// Trial index within the cell (seed = `derive(cell_seed, trial)`).
    pub trial: u64,
    /// Interactions to stability; `None` if the trial hit the budget.
    pub interactions: Option<u64>,
    /// Watched-state increment times (`Watched` mode).
    pub completions: Option<Vec<u64>>,
    /// Final configuration (`Full` mode).
    pub final_counts: Option<Vec<u64>>,
    /// Sampled trajectory: each row is `[interaction, count_0, …]`
    /// (`Trajectory` mode).
    pub samples: Option<Vec<Vec<u64>>>,
}

impl TrialRecord {
    /// A summary-mode record.
    pub fn summary(trial: u64, interactions: Option<u64>) -> Self {
        TrialRecord {
            trial,
            interactions,
            completions: None,
            final_counts: None,
            samples: None,
        }
    }

    /// Encode as a JSON object (optional fields omitted when absent,
    /// keeping summary journals one short line per trial).
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(&'static str, Value)> = vec![
            ("trial", Value::U64(self.trial)),
            ("interactions", Value::opt_u64(self.interactions)),
        ];
        if let Some(c) = &self.completions {
            pairs.push(("completions", Value::u64_arr(c.iter().copied())));
        }
        if let Some(f) = &self.final_counts {
            pairs.push(("final_counts", Value::u64_arr(f.iter().copied())));
        }
        if let Some(s) = &self.samples {
            pairs.push((
                "samples",
                Value::Arr(
                    s.iter()
                        .map(|row| Value::u64_arr(row.iter().copied()))
                        .collect(),
                ),
            ));
        }
        Value::obj(pairs)
    }

    /// Decode from a JSON object; `None` if the shape is wrong (treated
    /// by callers as corruption).
    pub fn from_json(v: &Value) -> Option<TrialRecord> {
        let trial = v.get("trial")?.as_u64()?;
        let interactions = match v.get("interactions")? {
            Value::Null => None,
            other => Some(other.as_u64()?),
        };
        let u64_vec =
            |val: &Value| -> Option<Vec<u64>> { val.as_arr()?.iter().map(Value::as_u64).collect() };
        let completions = match v.get("completions") {
            Some(val) => Some(u64_vec(val)?),
            None => None,
        };
        let final_counts = match v.get("final_counts") {
            Some(val) => Some(u64_vec(val)?),
            None => None,
        };
        let samples = match v.get("samples") {
            Some(val) => Some(
                val.as_arr()?
                    .iter()
                    .map(u64_vec)
                    .collect::<Option<Vec<_>>>()?,
            ),
            None => None,
        };
        Some(TrialRecord {
            trial,
            interactions,
            completions,
            final_counts,
            samples,
        })
    }
}

/// A completed cell: its spec plus one record per trial, sorted by trial
/// index.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The spec that produced these records.
    pub spec: CellSpec,
    /// One record per trial, sorted by `trial`, complete (`len == trials`).
    pub records: Vec<TrialRecord>,
}

impl CellResult {
    /// Interactions of completed trials, in trial order — the shape
    /// [`TrialBatch`](pp_analysis::runner::TrialBatch) exposes.
    pub fn interactions(&self) -> Vec<u64> {
        self.records.iter().filter_map(|r| r.interactions).collect()
    }

    /// Number of censored trials.
    pub fn censored(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.interactions.is_none())
            .count()
    }

    /// Summary statistics over completed trials.
    ///
    /// # Panics
    /// If every trial was censored.
    pub fn summary(&self) -> pp_analysis::stats::Summary {
        pp_analysis::stats::Summary::of_u64(&self.interactions())
    }

    /// Reconstruct the watched-trial view (Figure 4 instrumentation).
    ///
    /// # Panics
    /// If any record lacks completions (i.e. the cell was not `Watched`).
    pub fn watched(&self) -> Vec<pp_analysis::runner::WatchedTrial> {
        self.records
            .iter()
            .map(|r| pp_analysis::runner::WatchedTrial {
                total: r.interactions,
                completions: r.completions.clone().expect("watched-mode record"),
            })
            .collect()
    }

    /// Reconstruct the full-outcome view (imbalance measurements).
    ///
    /// # Panics
    /// If any record lacks final counts (i.e. the cell was not `Full`).
    pub fn outcomes(&self) -> Vec<pp_analysis::runner::TrialOutcome> {
        self.records
            .iter()
            .map(|r| pp_analysis::runner::TrialOutcome {
                interactions: r.interactions,
                final_counts: r.final_counts.clone().expect("full-mode record"),
            })
            .collect()
    }
}

/// Encode a completed cell as the canonical store document. Every
/// backend persists exactly these bytes (the `FsBackend` as a file, the
/// `LogBackend` as one log line), which is what keeps stored cells
/// byte-portable between backends.
pub fn encode_cell_doc(spec: &CellSpec, records: &[TrialRecord]) -> String {
    Value::obj([
        ("key", Value::Str(spec.canonical_key())),
        (
            "trials",
            Value::Arr(records.iter().map(TrialRecord::to_json).collect()),
        ),
    ])
    .encode()
}

/// Decode and verify a stored cell document against the requesting spec.
/// `None` on any mismatch — wrong key (hash collision or stale
/// `KEY_VERSION`), wrong trial count, unsorted records, or plain
/// corruption — which callers treat as a cache miss.
pub fn decode_cell_doc(spec: &CellSpec, text: &str) -> Option<Vec<TrialRecord>> {
    let v = Value::parse(text).ok()?;
    if v.get("key")?.as_str()? != spec.canonical_key() {
        return None;
    }
    let records: Vec<TrialRecord> = v
        .get("trials")?
        .as_arr()?
        .iter()
        .map(TrialRecord::from_json)
        .collect::<Option<Vec<_>>>()?;
    if records.len() != spec.trials || records.iter().enumerate().any(|(i, r)| r.trial != i as u64)
    {
        return None;
    }
    Some(records)
}

/// Handle to a result store: a cloneable reference to one
/// [`StoreBackend`].
#[derive(Clone, Debug)]
pub struct ResultStore {
    backend: Arc<dyn StoreBackend>,
}

impl ResultStore {
    /// File-backed store rooted at the given directory (created lazily on
    /// save) — the historical layout.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultStore::with_backend(Arc::new(FsBackend::at(dir)))
    }

    /// Ephemeral in-memory store (tests, `pp-serve --backend mem`).
    pub fn in_memory() -> Self {
        ResultStore::with_backend(Arc::new(MemBackend::new()))
    }

    /// Compacting append-only log store at the given log-file path.
    pub fn log_at(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        Ok(ResultStore::with_backend(Arc::new(LogBackend::open(path)?)))
    }

    /// Wrap an explicit backend.
    pub fn with_backend(backend: Arc<dyn StoreBackend>) -> Self {
        ResultStore { backend }
    }

    /// The default store: `<results>/store`, where `<results>` follows
    /// [`pp_analysis::config::results_dir`] (including the
    /// `PP_RESULTS_DIR` override).
    pub fn default_location() -> Self {
        ResultStore::at(pp_analysis::config::results_dir().join("store"))
    }

    /// The store selected by `PP_STORE_BACKEND` (`fs` — the default —,
    /// `mem`, or `log`), rooted under the results directory. `log` stores
    /// live in `<results>/store.log`, next to (not inside) the file
    /// store, so the two backends never alias.
    pub fn from_env() -> std::io::Result<Self> {
        match std::env::var("PP_STORE_BACKEND").as_deref() {
            Ok("mem") => Ok(ResultStore::in_memory()),
            Ok("log") => ResultStore::log_at(pp_analysis::config::results_dir().join("store.log")),
            Ok("fs") | Ok("") | Err(_) => Ok(ResultStore::default_location()),
            Ok(other) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown PP_STORE_BACKEND '{other}' (expected fs, mem, or log)"),
            )),
        }
    }

    /// The backend's short kind tag (`fs`, `mem`, `log`).
    pub fn kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// Human-readable location for console output.
    pub fn location(&self) -> String {
        self.backend.location()
    }

    /// The store directory, when the backend is directory-backed
    /// (`None` for `mem` and `log`). Traces and the default metrics
    /// export land here when present.
    pub fn fs_dir(&self) -> Option<&Path> {
        self.backend.fs_dir()
    }

    /// The store directory.
    ///
    /// # Panics
    /// If the backend is not directory-backed; use [`Self::fs_dir`] in
    /// backend-generic code.
    pub fn dir(&self) -> &Path {
        self.fs_dir()
            .expect("ResultStore::dir on a non-directory backend")
    }

    /// Path of a cell's completed-result file (directory-backed stores).
    ///
    /// # Panics
    /// If the backend is not directory-backed.
    pub fn result_path(&self, spec: &CellSpec) -> PathBuf {
        self.dir().join(format!("{}.json", spec.file_stem()))
    }

    /// Path of a cell's in-progress journal (directory-backed stores).
    ///
    /// # Panics
    /// If the backend is not directory-backed.
    pub fn journal_path(&self, spec: &CellSpec) -> PathBuf {
        self.dir().join(format!("{}.jsonl", spec.file_stem()))
    }

    /// Load a completed cell, if stored. Returns `None` on a cache miss
    /// *or* on a corrupt/mismatched entry (the runner then recomputes and
    /// overwrites it).
    pub fn load(&self, spec: &CellSpec) -> Option<CellResult> {
        self.backend.load(spec)
    }

    /// Atomically save a completed cell and drop its journal.
    ///
    /// # Panics
    /// If `records` is not a complete, trial-sorted set for the spec.
    pub fn save(&self, spec: &CellSpec, records: Vec<TrialRecord>) -> std::io::Result<CellResult> {
        assert_eq!(records.len(), spec.trials, "incomplete cell");
        assert!(
            records.iter().enumerate().all(|(i, r)| r.trial == i as u64),
            "records must be sorted by trial index"
        );
        self.backend.save(spec, records)
    }

    /// Recover a cell's in-progress journal (empty state if none).
    pub fn journal_state(&self, spec: &CellSpec) -> JournalState {
        self.backend.journal_state(spec)
    }

    /// Open an append sink for a cell's journal.
    pub fn journal_sink(&self, spec: &CellSpec) -> std::io::Result<Box<dyn JournalSink>> {
        self.backend.journal_sink(spec)
    }

    /// Whether the cell has an in-progress journal.
    pub fn has_journal(&self, spec: &CellSpec) -> bool {
        self.backend.has_journal(spec)
    }

    /// Garbage-collect: drop everything not addressed by `live_stems`
    /// (cell [file stems](CellSpec::file_stem)). File stores delete dead
    /// files; the log store drops dead index entries and compacts; the
    /// memory store forgets dead cells.
    pub fn gc(&self, live_stems: &std::collections::HashSet<String>) -> std::io::Result<GcOutcome> {
        self.backend.gc(live_stems)
    }

    /// Cheap backend statistics (cell count, byte usage, live/dead
    /// split) for `pp-sweep status` and the `pp-serve` `/stats`
    /// endpoint.
    pub fn stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Flush any buffered state to durable storage (graceful-shutdown
    /// hook; a no-op for backends that write through).
    pub fn flush(&self) -> std::io::Result<()> {
        self.backend.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellMode, CriterionKind, KernelChoice, ProtocolId};

    fn spec(trials: usize) -> CellSpec {
        CellSpec {
            protocol: ProtocolId::UniformKPartition { k: 3 },
            n: 12,
            trials,
            seed: 7,
            criterion: CriterionKind::Stable,
            budget: 1_000_000,
            mode: CellMode::Summary,
            kernel: KernelChoice::Leap,
            dynamics: pp_topo::Dynamics::default_dynamics(),
        }
    }

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("pp_sweep_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::at(dir)
    }

    #[test]
    fn record_roundtrips_all_modes() {
        let records = [
            TrialRecord::summary(0, Some(42)),
            TrialRecord::summary(1, None),
            TrialRecord {
                trial: 2,
                interactions: Some(9),
                completions: Some(vec![1, 5, 9]),
                final_counts: Some(vec![0, 4, 4, 4]),
                samples: Some(vec![vec![0, 12, 0], vec![256, 3, 9]]),
            },
        ];
        for r in &records {
            assert_eq!(TrialRecord::from_json(&r.to_json()).as_ref(), Some(r));
        }
    }

    #[test]
    fn save_load_roundtrip_and_miss_on_other_spec() {
        let store = temp_store("roundtrip");
        let s = spec(3);
        assert!(store.load(&s).is_none());
        let records = vec![
            TrialRecord::summary(0, Some(10)),
            TrialRecord::summary(1, None),
            TrialRecord::summary(2, Some(30)),
        ];
        store.save(&s, records.clone()).unwrap();
        let loaded = store.load(&s).unwrap();
        assert_eq!(loaded.records, records);
        assert_eq!(loaded.interactions(), vec![10, 30]);
        assert_eq!(loaded.censored(), 1);
        // A different spec (different hash) misses.
        assert!(store.load(&spec(4)).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_or_mismatched_file_is_a_miss() {
        let store = temp_store("corrupt");
        let s = spec(1);
        store
            .save(&s, vec![TrialRecord::summary(0, Some(5))])
            .unwrap();
        // Truncate the stored file: must read as a miss, not a panic.
        let path = store.result_path(&s);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.load(&s).is_none());
        // Key mismatch (file swapped in from another cell) is a miss too.
        let other = spec(2);
        std::fs::write(store.result_path(&other), text).unwrap();
        assert!(store.load(&other).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    #[should_panic(expected = "incomplete cell")]
    fn save_rejects_incomplete_cells() {
        let store = temp_store("incomplete");
        let _ = store.save(&spec(2), vec![TrialRecord::summary(0, Some(1))]);
    }

    #[test]
    fn from_env_rejects_unknown_backends() {
        // Uses the parse helper indirectly: an unknown name must error
        // rather than silently falling back to fs. (Env mutation is
        // avoided — other tests read PP_* concurrently — so exercise the
        // match arm through a scoped process would be overkill; instead
        // assert the known names construct.)
        assert_eq!(ResultStore::in_memory().kind(), "mem");
        assert_eq!(temp_store("env").kind(), "fs");
    }
}
