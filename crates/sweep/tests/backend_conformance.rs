//! Backend conformance: every [`StoreBackend`] honours the same
//! contract the historical file store defined — put/get round-trips,
//! journal recovery, gc, stats — plus the pinned content-hash check
//! that keeps today's on-disk store layouts valid forever.

use std::collections::HashSet;
use std::path::PathBuf;

use pp_sweep::exec::{run_cell, ExecOptions};
use pp_sweep::observer::NullObserver;
use pp_sweep::spec::{CellMode, CellSpec, CriterionKind, KernelChoice, ProtocolId};
use pp_sweep::store::{ResultStore, TrialRecord};

fn spec(seed: u64) -> CellSpec {
    CellSpec {
        protocol: ProtocolId::UniformKPartition { k: 3 },
        n: 16,
        trials: 3,
        seed,
        criterion: CriterionKind::Stable,
        budget: 10_000_000,
        mode: CellMode::Summary,
        kernel: KernelChoice::Leap,
        dynamics: pp_topo::Dynamics::default_dynamics(),
    }
}

fn records_for(s: &CellSpec) -> Vec<TrialRecord> {
    (0..s.trials as u64)
        .map(|t| TrialRecord::summary(t, Some(1000 + t)))
        .collect()
}

/// One fresh store per backend kind, with the temp paths to clean up.
fn all_backends(tag: &str) -> Vec<(ResultStore, Vec<PathBuf>)> {
    let pid = std::process::id();
    let fs_dir = std::env::temp_dir().join(format!("pp_conf_fs_{tag}_{pid}"));
    let _ = std::fs::remove_dir_all(&fs_dir);
    let log_path = std::env::temp_dir().join(format!("pp_conf_log_{tag}_{pid}.log"));
    let _ = std::fs::remove_file(&log_path);
    vec![
        (ResultStore::in_memory(), vec![]),
        (ResultStore::at(fs_dir.clone()), vec![fs_dir]),
        (
            ResultStore::log_at(log_path.clone()).unwrap(),
            vec![log_path],
        ),
    ]
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_dir_all(p);
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn file_stems_and_content_hashes_are_pinned() {
    // These stems are the store's on-disk contract: existing result
    // directories were written under them, so any change to the
    // canonical key, the hash function, or the stem format silently
    // orphans every cached cell. Values captured from the current
    // implementation and pinned here bit-for-bit.
    let fig_cell = CellSpec {
        protocol: ProtocolId::UniformKPartition { k: 3 },
        n: 40,
        trials: 100,
        seed: 12345,
        criterion: CriterionKind::Stable,
        budget: 50_000_000,
        mode: CellMode::Summary,
        kernel: KernelChoice::Leap,
        dynamics: pp_topo::Dynamics::default_dynamics(),
    };
    assert_eq!(fig_cell.file_stem(), "ukp-k3-n40-761460d4e2f1bf4f");
    assert_eq!(
        fig_cell.canonical_key(),
        "v3|ukp:k=3|n=40|trials=100|seed=12345|crit=stable|budget=50000000|mode=summary|kernel=leap"
    );
    assert_eq!(fig_cell.content_hash(), 0x761460d4e2f1bf4f);

    let basic = CellSpec {
        protocol: ProtocolId::BasicStrategy { k: 4 },
        n: 96,
        ..fig_cell.clone()
    };
    assert_eq!(basic.file_stem(), "basic-k4-n96-be81c8c88411aa45");

    let small = CellSpec {
        protocol: ProtocolId::UniformKPartition { k: 2 },
        n: 16,
        trials: 3,
        seed: 7,
        budget: 1_000_000,
        ..fig_cell
    };
    assert_eq!(small.file_stem(), "ukp-k2-n16-d09df707bd965577");
}

#[test]
fn fs_backend_layout_is_bit_stable() {
    // The fs backend must keep writing the historical layout: one
    // `<stem>.json` per cell whose content is the canonical cell doc.
    let dir = std::env::temp_dir().join(format!("pp_conf_layout_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::at(dir.clone());
    let s = spec(7);
    let recs = records_for(&s);
    store.save(&s, recs.clone()).unwrap();

    let path = dir.join(format!("{}.json", s.file_stem()));
    let text = std::fs::read_to_string(&path).expect("cell file at historical path");
    assert_eq!(text, pp_sweep::store::encode_cell_doc(&s, &recs));
    assert!(text.contains(&s.canonical_key()));
    cleanup(&[dir]);
}

#[test]
fn save_load_round_trips_on_every_backend() {
    for (store, paths) in all_backends("roundtrip") {
        let s = spec(11);
        assert!(
            store.load(&s).is_none(),
            "{}: empty store hit",
            store.kind()
        );
        let recs = records_for(&s);
        let saved = store.save(&s, recs.clone()).unwrap();
        assert_eq!(saved.records, recs);
        let loaded = store
            .load(&s)
            .unwrap_or_else(|| panic!("{}: lost cell", store.kind()));
        assert_eq!(loaded.records, recs, "{}: records differ", store.kind());
        assert_eq!(loaded.spec, s);
        // A different spec misses.
        assert!(store.load(&spec(12)).is_none());
        cleanup(&paths);
    }
}

#[test]
fn journal_lifecycle_on_every_backend() {
    for (store, paths) in all_backends("journal") {
        let kind = store.kind();
        let s = spec(21);
        assert!(!store.has_journal(&s), "{kind}: phantom journal");
        assert_eq!(store.journal_state(&s).records.len(), 0);

        let sink = store.journal_sink(&s).unwrap();
        let recs = records_for(&s);
        sink.append(&recs[0]).unwrap();
        sink.append(&recs[1]).unwrap();
        // Duplicate append of trial 0: first occurrence wins.
        let dup = TrialRecord::summary(0, Some(999_999));
        sink.append(&dup).unwrap();
        drop(sink);

        assert!(store.has_journal(&s), "{kind}: journal missing");
        let st = store.journal_state(&s);
        assert_eq!(st.records.len(), 2, "{kind}: wrong recovery count");
        assert_eq!(st.records[&0], recs[0], "{kind}: duplicate overwrote");
        assert_eq!(st.records[&1], recs[1]);

        // Promotion to a finished cell retires the journal.
        store.save(&s, recs.clone()).unwrap();
        assert!(!store.has_journal(&s), "{kind}: journal survived save");
        assert_eq!(store.load(&s).unwrap().records, recs);
        cleanup(&paths);
    }
}

#[test]
fn resume_after_interrupt_is_bit_identical_on_every_backend() {
    // Kill mid-cell, resume from the journal, and compare against an
    // uninterrupted run in a fresh store: the determinism contract the
    // fs backend has always had, now required of every backend.
    for (store, paths) in all_backends("resume") {
        let kind = store.kind();
        let s = spec(31);
        let interrupted = run_cell(
            &s,
            &store,
            &NullObserver,
            &ExecOptions {
                kill_after: Some(1),
            },
        )
        .unwrap();
        assert!(
            matches!(
                interrupted,
                pp_sweep::exec::CellOutcome::Interrupted { journaled: 1 }
            ),
            "{kind}: expected interruption"
        );
        assert!(store.has_journal(&s), "{kind}: no journal after kill");

        let resumed = run_cell(&s, &store, &NullObserver, &ExecOptions::default())
            .unwrap()
            .expect_complete();

        let fresh_store = ResultStore::in_memory();
        let fresh = run_cell(&s, &fresh_store, &NullObserver, &ExecOptions::default())
            .unwrap()
            .expect_complete();
        assert_eq!(resumed.records, fresh.records, "{kind}: resume diverged");
        assert!(!store.has_journal(&s), "{kind}: journal not retired");
        cleanup(&paths);
    }
}

#[test]
fn gc_keeps_live_cells_and_reports_removals() {
    for (store, paths) in all_backends("gc") {
        let kind = store.kind();
        let live = spec(41);
        let dead = spec(42);
        store.save(&live, records_for(&live)).unwrap();
        store.save(&dead, records_for(&dead)).unwrap();
        // An orphan journal (no plan references it) is collectable too.
        let orphan = spec(43);
        let sink = store.journal_sink(&orphan).unwrap();
        sink.append(&records_for(&orphan)[0]).unwrap();
        drop(sink);

        let live_stems: HashSet<String> = [live.file_stem()].into_iter().collect();
        let out = store.gc(&live_stems).unwrap();
        assert!(
            out.removed.iter().any(|r| r.contains(&dead.file_stem())),
            "{kind}: dead cell not removed: {:?}",
            out.removed
        );
        assert!(store.load(&live).is_some(), "{kind}: live cell collected");
        assert!(store.load(&dead).is_none(), "{kind}: dead cell survived");
        assert!(
            !store.has_journal(&orphan),
            "{kind}: orphan journal survived"
        );
        cleanup(&paths);
    }
}

#[test]
fn stats_count_cells_journals_and_bytes() {
    for (store, paths) in all_backends("stats") {
        let kind = store.kind();
        let s1 = spec(51);
        let s2 = spec(52);
        store.save(&s1, records_for(&s1)).unwrap();
        store.save(&s2, records_for(&s2)).unwrap();
        let sink = store.journal_sink(&spec(53)).unwrap();
        sink.append(&records_for(&spec(53))[0]).unwrap();
        drop(sink);

        let st = store.stats();
        assert_eq!(st.cells, 2, "{kind}: cell count");
        assert_eq!(st.journals, 1, "{kind}: journal count");
        assert!(st.bytes > 0, "{kind}: zero bytes");
        assert!(st.live_bytes <= st.bytes, "{kind}: live > total");
        let line = st.summary();
        assert!(line.contains("2 cells"), "{kind}: summary {line:?}");
        cleanup(&paths);
    }
}

#[test]
fn cell_docs_are_portable_across_backends() {
    // A cell saved through one backend re-encodes to the same canonical
    // document everywhere — backends differ in framing, not content.
    let s = spec(61);
    let recs = records_for(&s);
    let doc = pp_sweep::store::encode_cell_doc(&s, &recs);
    for (store, paths) in all_backends("portable") {
        store.save(&s, recs.clone()).unwrap();
        let loaded = store.load(&s).unwrap();
        assert_eq!(
            pp_sweep::store::encode_cell_doc(&loaded.spec, &loaded.records),
            doc,
            "{}: canonical doc drifted",
            store.kind()
        );
        cleanup(&paths);
    }
}

// ---------------------------------------------------------------------
// Log-backend specifics: crash recovery and compaction.
// ---------------------------------------------------------------------

use pp_sweep::backend::LogBackend;
use std::sync::Arc;

fn temp_log(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("pp_conf_logx_{tag}_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn log_reopen_recovers_cells_and_truncates_torn_tail() {
    let path = temp_log("torn");
    let s = spec(71);
    let recs = records_for(&s);
    {
        let store = ResultStore::log_at(path.clone()).unwrap();
        store.save(&s, recs.clone()).unwrap();
    }
    let clean_len = std::fs::metadata(&path).unwrap().len();

    // Crash mid-append: a torn (newline-less) half line at the tail.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"{\"t\":\"cell\",\"key\":\"v3|half").unwrap();
    drop(f);
    assert!(std::fs::metadata(&path).unwrap().len() > clean_len);

    let reopened = ResultStore::log_at(path.clone()).unwrap();
    assert_eq!(
        reopened.load(&s).expect("cell survives torn tail").records,
        recs
    );
    // The torn bytes were truncated away on recovery.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
    cleanup(&[path]);
}

#[test]
fn log_journal_survives_reopen_and_resume_matches_fresh() {
    let path = temp_log("resume");
    let s = spec(72);
    {
        let store = ResultStore::log_at(path.clone()).unwrap();
        let out = run_cell(
            &s,
            &store,
            &NullObserver,
            &ExecOptions {
                kill_after: Some(2),
            },
        )
        .unwrap();
        assert!(matches!(
            out,
            pp_sweep::exec::CellOutcome::Interrupted { journaled: 2 }
        ));
        store.flush().unwrap();
    }

    // A fresh process over the same file sees the journaled trials and
    // completes the cell bit-identically to an uninterrupted run.
    let store = ResultStore::log_at(path.clone()).unwrap();
    assert_eq!(store.journal_state(&s).records.len(), 2);
    let resumed = run_cell(&s, &store, &NullObserver, &ExecOptions::default())
        .unwrap()
        .expect_complete();
    let fresh = run_cell(
        &s,
        &ResultStore::in_memory(),
        &NullObserver,
        &ExecOptions::default(),
    )
    .unwrap()
    .expect_complete();
    assert_eq!(resumed.records, fresh.records);
    cleanup(&[path]);
}

#[test]
fn log_compaction_reclaims_dead_bytes_and_keeps_live_cells() {
    let path = temp_log("compact");
    // Tiny threshold: a handful of superseded saves must trigger it.
    let backend = Arc::new(LogBackend::open_with_threshold(path.clone(), 64).unwrap());
    let store = ResultStore::with_backend(backend.clone());

    let cells: Vec<CellSpec> = (80..84).map(spec).collect();
    for c in &cells {
        store.save(c, records_for(c)).unwrap();
    }
    // Re-save every cell several times: each save supersedes a line.
    for round in 0..5 {
        for c in &cells {
            store.save(c, records_for(c)).unwrap();
        }
        let _ = round;
    }
    assert!(
        backend.compactions() >= 1,
        "no compaction after {} dead saves (stats: {})",
        5 * cells.len(),
        store.stats().summary()
    );
    // Compaction preserved every live cell.
    for c in &cells {
        assert_eq!(store.load(c).unwrap().records, records_for(c));
    }
    // And the file holds only live lines (plus nothing dead).
    let st = store.stats();
    assert_eq!(st.cells, cells.len() as u64);
    assert_eq!(
        st.dead_bytes,
        0,
        "compaction left dead bytes: {}",
        st.summary()
    );

    // The compacted file reopens cleanly.
    drop(store);
    drop(backend);
    let reopened = ResultStore::log_at(path.clone()).unwrap();
    for c in &cells {
        assert_eq!(reopened.load(c).unwrap().records, records_for(c));
    }
    cleanup(&[path]);
}

#[test]
fn log_gc_compacts_instead_of_deleting_files() {
    // `gc` on the log backend is compaction: the journal file itself
    // stays (one file is the whole store), but dead cells' bytes are
    // reclaimed immediately.
    let path = temp_log("gc");
    let store = ResultStore::log_at(path.clone()).unwrap();
    let live = spec(90);
    let dead = spec(91);
    store.save(&live, records_for(&live)).unwrap();
    store.save(&dead, records_for(&dead)).unwrap();
    let before = std::fs::metadata(&path).unwrap().len();

    let live_stems: HashSet<String> = [live.file_stem()].into_iter().collect();
    let out = store.gc(&live_stems).unwrap();
    assert_eq!(out.kept, 1);
    assert!(path.exists(), "gc must not delete the log file");
    let after = std::fs::metadata(&path).unwrap().len();
    assert!(
        after < before,
        "gc did not reclaim bytes ({before} -> {after})"
    );
    assert!(store.load(&live).is_some());
    assert!(store.load(&dead).is_none());
    cleanup(&[path]);
}
