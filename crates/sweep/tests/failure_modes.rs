//! Failure-mode guarantees of the sweep subsystem, pinned as tests:
//!
//! * **resume equals fresh** — kill a cell after an arbitrary number of
//!   trials (even repeatedly), resume, and the stored result — and any
//!   CSV rendered from it — is bit-identical to an uninterrupted run;
//! * **journal corruption recovery** — torn tails and garbage regions in
//!   a journal lose at most the corrupt suffix's trials, never the cell;
//! * **content-hash stability** — the store address of a spec is a fixed
//!   function of its canonical key, stable across processes and
//!   toolchains (hardcoded expected value).

use proptest::prelude::*;

use pp_sweep::exec::{run_cell, CellOutcome, ExecOptions};
use pp_sweep::observer::NullObserver;
use pp_sweep::spec::{CellMode, CellSpec, CriterionKind, KernelChoice, ProtocolId};
use pp_sweep::store::ResultStore;

const TRIALS: usize = 7;

fn small_cell(seed: u64, mode: CellMode) -> CellSpec {
    CellSpec {
        protocol: ProtocolId::UniformKPartition { k: 3 },
        n: 12,
        trials: TRIALS,
        seed,
        criterion: CriterionKind::Stable,
        budget: 10_000_000,
        mode,
        kernel: KernelChoice::Leap,
        dynamics: pp_topo::Dynamics::default_dynamics(),
    }
}

fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!(
        "pp_sweep_failure_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::at(dir)
}

fn complete(spec: &CellSpec, store: &ResultStore) -> pp_sweep::store::CellResult {
    run_cell(spec, store, &NullObserver, &ExecOptions::default())
        .unwrap()
        .expect_complete()
}

/// Render a cell the way the figure reporters do, for byte comparison.
fn render_csv(cell: &pp_sweep::store::CellResult) -> String {
    let mut t = pp_analysis::table::Table::new(
        std::iter::once("n".to_string())
            .chain(
                pp_analysis::table::Table::SUMMARY_HEADERS
                    .iter()
                    .map(|h| h.to_string()),
            )
            .collect::<Vec<_>>(),
    );
    t.push_summary_row(
        vec![cell.spec.n.to_string()],
        &cell.summary(),
        cell.censored(),
        vec![],
    );
    t.to_csv()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill after `kill1` trials, resume and kill again after `kill2`
    /// more, then run to completion: the stored bytes and the rendered
    /// CSV equal an uninterrupted run's, for every kill point and seed.
    #[test]
    fn resume_equals_fresh(seed in 1u64..5000, kill1 in 0usize..TRIALS, kill2 in 0usize..TRIALS) {
        let spec = small_cell(seed, CellMode::Summary);

        let store_fresh = temp_store("fresh");
        let fresh = complete(&spec, &store_fresh);

        let store_resumed = temp_store("resumed");
        for kill in [kill1, kill2] {
            let out = run_cell(
                &spec,
                &store_resumed,
                &NullObserver,
                &ExecOptions { kill_after: Some(kill) },
            )
            .unwrap();
            if let CellOutcome::Complete(_) = out {
                // Both kill points already covered every trial; fine.
                break;
            }
        }
        let resumed = complete(&spec, &store_resumed);

        prop_assert_eq!(&fresh.records, &resumed.records);
        prop_assert_eq!(
            std::fs::read(store_fresh.result_path(&spec)).unwrap(),
            std::fs::read(store_resumed.result_path(&spec)).unwrap(),
            "stored cell files must be bit-identical"
        );
        prop_assert_eq!(render_csv(&fresh), render_csv(&resumed));

        let _ = std::fs::remove_dir_all(store_fresh.dir());
        let _ = std::fs::remove_dir_all(store_resumed.dir());
    }

    /// Truncate the journal at an arbitrary byte after an interrupted
    /// run (a torn final write): recovery drops at most the torn suffix
    /// and the resumed cell still matches a fresh one exactly.
    #[test]
    fn truncated_journal_recovers(seed in 1u64..5000, kill in 1usize..TRIALS, cut in 1usize..200) {
        let spec = small_cell(seed, CellMode::Summary);

        let store_fresh = temp_store("tfresh");
        let fresh = complete(&spec, &store_fresh);

        let store_cut = temp_store("tcut");
        run_cell(
            &spec,
            &store_cut,
            &NullObserver,
            &ExecOptions { kill_after: Some(kill) },
        )
        .unwrap();
        let jpath = store_cut.journal_path(&spec);
        let bytes = std::fs::read(&jpath).unwrap();
        prop_assert!(!bytes.is_empty());
        // Chop the journal at an arbitrary byte offset from the end.
        let keep = bytes.len().saturating_sub(cut % bytes.len());
        std::fs::write(&jpath, &bytes[..keep]).unwrap();

        let resumed = complete(&spec, &store_cut);
        prop_assert_eq!(&fresh.records, &resumed.records);

        let _ = std::fs::remove_dir_all(store_fresh.dir());
        let _ = std::fs::remove_dir_all(store_cut.dir());
    }
}

/// A garbage region *inside* the journal (not just a torn tail) must not
/// poison recovery: everything before it is kept, everything after is
/// re-run, and the result still matches a fresh run.
#[test]
fn corrupted_journal_middle_recovers() {
    let spec = small_cell(77, CellMode::Summary);

    let store_fresh = temp_store("cfresh");
    let fresh = complete(&spec, &store_fresh);

    let store_bad = temp_store("cbad");
    run_cell(
        &spec,
        &store_bad,
        &NullObserver,
        &ExecOptions {
            kill_after: Some(4),
        },
    )
    .unwrap();
    let jpath = store_bad.journal_path(&spec);
    let text = std::fs::read_to_string(&jpath).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    lines.insert(2, "{\"trial\": 999, \"interac");
    std::fs::write(&jpath, lines.join("\n") + "\n").unwrap();

    let resumed = complete(&spec, &store_bad);
    assert_eq!(fresh.records, resumed.records);

    let _ = std::fs::remove_dir_all(store_fresh.dir());
    let _ = std::fs::remove_dir_all(store_bad.dir());
}

/// The content hash is a pure, stable function of the canonical key.
/// The expected value is hardcoded: if this test fails, the key format
/// or the hash changed, which silently orphans every existing store —
/// bump `KEY_VERSION` instead of letting addresses drift.
#[test]
fn content_hash_is_stable_across_processes() {
    let spec = CellSpec {
        protocol: ProtocolId::UniformKPartition { k: 4 },
        n: 96,
        trials: 100,
        seed: 12345,
        criterion: CriterionKind::Stable,
        budget: 1_000_000,
        mode: CellMode::Summary,
        kernel: KernelChoice::Leap,
        dynamics: pp_topo::Dynamics::default_dynamics(),
    };
    assert_eq!(
        spec.canonical_key(),
        "v3|ukp:k=4|n=96|trials=100|seed=12345|crit=stable|budget=1000000|mode=summary|kernel=leap"
    );
    assert_eq!(spec.content_hash(), 0xd8d8_21c3_3843_a521);
    assert_eq!(spec.file_stem(), "ukp-k4-n96-d8d821c33843a521");
}

/// Watched-mode cells (richer records) resume identically too — the
/// journal format round-trips every capture mode.
#[test]
fn watched_mode_resume_equals_fresh() {
    let spec = small_cell(31, CellMode::Watched);

    let store_fresh = temp_store("wfresh");
    let fresh = complete(&spec, &store_fresh);

    let store_resumed = temp_store("wresumed");
    run_cell(
        &spec,
        &store_resumed,
        &NullObserver,
        &ExecOptions {
            kill_after: Some(3),
        },
    )
    .unwrap();
    let resumed = complete(&spec, &store_resumed);

    assert_eq!(fresh.records, resumed.records);
    assert_eq!(
        std::fs::read(store_fresh.result_path(&spec)).unwrap(),
        std::fs::read(store_resumed.result_path(&spec)).unwrap()
    );

    let _ = std::fs::remove_dir_all(store_fresh.dir());
    let _ = std::fs::remove_dir_all(store_resumed.dir());
}
