//! Property tests re-proving the paper's Lemma 1 inductive step: every
//! single transition of Algorithm 1 preserves the invariant
//! `#g_x = Σ_{p>x} #m_p + Σ_{q≥x} #d_q + #g_k` — checked not just along
//! executions but from *arbitrary* points on the invariant surface
//! (a strictly stronger statement than run-sampling can give).

use pp_engine::protocol::StateId;
use pp_protocols::kpartition::UniformKPartition;
use proptest::prelude::*;

/// Generate an arbitrary configuration on the Lemma 1 surface: choose the
/// free agents, chain-builder counts, demolisher counts, and `#g_k`
/// freely; the invariant then *determines* `#g_1..#g_{k−1}`.
fn lemma1_config(kp: UniformKPartition, seed: u64) -> Vec<u64> {
    let k = kp.k();
    let mut counts = vec![0u64; kp.num_states()];
    let mut z = seed | 1;
    let mut next = move |m: u64| {
        z ^= z << 13;
        z ^= z >> 7;
        z ^= z << 17;
        z % m
    };
    counts[kp.initial().index()] = next(4);
    counts[kp.initial_prime().index()] = next(4);
    let gk = next(3);
    counts[kp.g(k).index()] = gk;
    if k >= 3 {
        for i in 2..=k - 1 {
            counts[kp.m(i).index()] = next(3);
        }
        for i in 1..=k - 2 {
            counts[kp.d(i).index()] = next(3);
        }
    }
    // Determined part: #g_x = Σ_{p>x} #m_p + Σ_{q≥x} #d_q + #g_k.
    for x in 1..k {
        let mut v = gk;
        if k >= 3 {
            for p in (x + 1)..=(k - 1) {
                if p >= 2 {
                    v += counts[kp.m(p).index()];
                }
            }
            for q in x..=(k - 2) {
                if q >= 1 {
                    v += counts[kp.d(q).index()];
                }
            }
        }
        counts[kp.g(x).index()] = v;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1 inductive step: from any invariant-satisfying
    /// configuration, every enabled transition lands back on the
    /// invariant surface.
    #[test]
    fn every_rule_preserves_lemma1(k in 3usize..10, seed in any::<u64>()) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let counts = lemma1_config(kp, seed);
        prop_assert!(kp.lemma1_holds(&counts), "generator broke the surface");
        for pi in 0..proto.num_states() {
            for qi in 0..proto.num_states() {
                let need_p = 1 + u64::from(pi == qi);
                if counts[pi] < need_p.min(counts[pi].max(1)) || counts[pi] == 0 {
                    continue;
                }
                if counts[qi] < if pi == qi { 2 } else { 1 } {
                    continue;
                }
                let (p, q) = (StateId(pi as u16), StateId(qi as u16));
                let (p2, q2) = proto.delta(p, q);
                if (p2, q2) == (p, q) {
                    continue;
                }
                let mut next = counts.clone();
                next[pi] -= 1;
                next[qi] -= 1;
                next[p2.index()] += 1;
                next[q2.index()] += 1;
                prop_assert!(
                    kp.lemma1_holds(&next),
                    "k={k}: rule ({}, {}) -> ({}, {}) broke Lemma 1\nbefore: {:?}\nafter: {:?}",
                    proto.state_name(p), proto.state_name(q),
                    proto.state_name(p2), proto.state_name(q2),
                    counts, next
                );
            }
        }
    }

    /// #g_k is monotone: no transition decreases the count of g_k — the
    /// ratchet behind Lemma 4 ("once an agent enters g_k, one set of
    /// agents never goes back").
    #[test]
    fn gk_count_is_monotone(k in 2usize..10) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let gk = kp.g(k);
        for p in proto.states() {
            for q in proto.states() {
                let (p2, q2) = proto.delta(p, q);
                let before = u64::from(p == gk) + u64::from(q == gk);
                let after = u64::from(p2 == gk) + u64::from(q2 == gk);
                prop_assert!(after >= before,
                    "rule ({}, {}) -> ({}, {}) consumed a g_k",
                    proto.state_name(p), proto.state_name(q),
                    proto.state_name(p2), proto.state_name(q2));
            }
        }
    }

    /// Settled agents in G are immovable except by a matching demolisher:
    /// the only rules that change a g_i agent's state are rule 9
    /// ((d_i, g_i) with 2 ≤ i ≤ k−2) and rule 10 ((d_1, g_1)).
    #[test]
    fn g_agents_only_move_via_matching_d(k in 3usize..10) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        for i in 1..=k {
            let gi = kp.g(i);
            for p in proto.states() {
                // gi as the second participant.
                let (_, q2) = proto.delta(p, gi);
                if q2 != gi {
                    prop_assert!(i <= k - 2, "g_{i} moved but has no d_{i}");
                    prop_assert_eq!(p, kp.d(i), "g_{} moved by non-matching state", i);
                }
                // gi as the first participant.
                let (p2, _) = proto.delta(gi, p);
                if p2 != gi {
                    prop_assert!(i <= k - 2);
                    prop_assert_eq!(p, kp.d(i));
                }
            }
        }
    }

    /// Free agents never jump straight into a high group: a free agent's
    /// successor state is in I ∪ {g_i matching the partner's chain
    /// position} — concretely, from (ini, m_i) it must become exactly
    /// g_i, and from (ini, ini') exactly g1/m2.
    #[test]
    fn recruitment_targets_are_exact(k in 3usize..10) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        for i in 2..=k - 1 {
            for x in [kp.initial(), kp.initial_prime()] {
                let (fx, fm) = proto.delta(x, kp.m(i));
                prop_assert_eq!(fx, kp.g(i));
                if i <= k - 2 {
                    prop_assert_eq!(fm, kp.m(i + 1));
                } else {
                    prop_assert_eq!(fm, kp.g(k));
                }
            }
        }
    }

    /// The stable signature's group sizes match `expected_group_sizes`
    /// for every (k, n): internal consistency of the two Lemma 6 views.
    #[test]
    fn signature_and_expected_sizes_agree(k in 2usize..10, n in 3u64..200) {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        // Construct the canonical stable configuration and check both.
        let q = n / k as u64;
        let r = (n % k as u64) as usize;
        let mut counts = vec![0u64; kp.num_states()];
        for x in 1..=k {
            counts[kp.g(x).index()] = if (x as u64) < (r as u64).max(1) { q + 1 } else { q };
        }
        if r == 1 {
            counts[kp.initial().index()] = 1;
        } else if r >= 2 {
            counts[kp.m(r).index()] = 1;
        }
        prop_assert!(kp.stable_signature(n).matches(&counts));
        let pop = pp_engine::population::CountPopulation::from_counts(counts);
        use pp_engine::population::Population;
        prop_assert_eq!(pop.group_sizes(&proto), kp.expected_group_sizes(n));
        prop_assert!(kp.lemma1_holds(pop.counts()));
    }
}
