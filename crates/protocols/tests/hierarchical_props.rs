//! Property tests for the recursive-bipartition protocols: the subtree
//! balance invariant, state-count identities, and fold coverage.

use pp_engine::population::{CountPopulation, Population};
use pp_engine::protocol::StateId;
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::Simulator;
use pp_engine::stability::Never;
use pp_protocols::hierarchical::HierarchicalPartition;
use proptest::prelude::*;

/// Number of agents committed to the subtree rooted at `(level, prefix)`:
/// unsettled members of descendant cohorts plus settled leaves below.
fn subtree_population(
    hp: &HierarchicalPartition,
    counts: &[u64],
    level: u32,
    prefix: usize,
) -> u64 {
    let h = hp.levels();
    let mut total = 0;
    // Descendant cohorts (including (level, prefix) itself).
    for l in level..=h {
        let shift = l - level;
        let base = prefix << shift;
        for p in base..base + (1usize << shift) {
            for sub in 0..2 {
                total += counts[hp.unsettled(l, p, sub).index()];
            }
        }
    }
    // Leaves below.
    let shift = h - level + 1;
    let base = prefix << shift;
    for j in base..base + (1usize << shift) {
        total += counts[hp.leaf(j).index()];
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Subtree balance: every settle sends exactly one agent to each
    /// child subtree and agents never leave a subtree, so at *any* point
    /// of *any* execution the two children of a cohort hold equally many
    /// committed agents — up to the agents still unsettled at the parent
    /// level or above.
    ///
    /// Precisely: for every internal node `(level, prefix)` with children
    /// `c0 = (level+1, 2·prefix)`, `c1 = (level+1, 2·prefix+1)`,
    /// `|subtree(c0)| == |subtree(c1)|` always.
    #[test]
    fn children_subtrees_stay_balanced(
        h in 2u32..4,
        n in 4u64..40,
        steps in 0u64..4000,
        seed in any::<u64>(),
    ) {
        let hp = HierarchicalPartition::composed(h);
        let proto = hp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        Simulator::new(&proto).run_fixed(
            &mut pop,
            &mut sched,
            steps,
            &mut pp_engine::observer::NullObserver,
        );
        for level in 1..h {
            for prefix in 0..(1usize << (level - 1)) {
                let left = subtree_population(&hp, pop.counts(), level + 1, 2 * prefix);
                let right = subtree_population(&hp, pop.counts(), level + 1, 2 * prefix + 1);
                prop_assert_eq!(
                    left, right,
                    "subtree imbalance under ({}, {}) after {} steps",
                    level, prefix, steps
                );
            }
        }
        // Conservation: the root subtree is the whole population.
        prop_assert_eq!(subtree_population(&hp, pop.counts(), 1, 0), n);
    }

    /// State-count identity 3·2^h − 2 = 3k − 2 at k = 2^h, and decode is
    /// a bijection over the state space.
    #[test]
    fn state_space_shape(h in 1u32..6) {
        let hp = HierarchicalPartition::composed(h);
        prop_assert_eq!(hp.num_states(), 3 * (1usize << h) - 2);
        let mut seen_unsettled = 0;
        let mut seen_leaves = 0;
        for i in 0..hp.num_states() {
            match hp.decode(StateId(i as u16)) {
                Ok((l, p, s)) => {
                    prop_assert_eq!(hp.unsettled(l, p, s), StateId(i as u16));
                    seen_unsettled += 1;
                }
                Err(j) => {
                    prop_assert_eq!(hp.leaf(j), StateId(i as u16));
                    seen_leaves += 1;
                }
            }
        }
        prop_assert_eq!(seen_leaves, 1usize << h);
        prop_assert_eq!(seen_unsettled, 2 * (1usize << h) - 2);
    }

    /// The approx fold covers every group 1..=k and distributes leaves as
    /// evenly as possible (⌊2^h/k⌋ or ⌈2^h/k⌉ leaves per group).
    #[test]
    fn approx_fold_is_balanced(k in 2usize..33) {
        let hp = HierarchicalPartition::approx(k);
        let proto = hp.compile();
        let leaves = hp.num_leaves();
        let mut per_group = vec![0usize; k];
        for j in 0..leaves {
            prop_assert!(hp.decode(hp.leaf(j)).is_err(), "leaf decodes as leaf");
            per_group[proto.group_of(hp.leaf(j)).number() - 1] += 1;
        }
        let lo = leaves / k;
        let hi = leaves.div_ceil(k);
        for (g, &c) in per_group.iter().enumerate() {
            prop_assert!(c == lo || c == hi, "group {} has {} leaves", g + 1, c);
            prop_assert!(c >= 1);
        }
    }

    /// Running the protocol never creates agents out of thin air and the
    /// stability criterion is monotone along executions once reached
    /// (run further with Never, recheck the criterion still holds).
    #[test]
    fn stability_is_absorbing(h in 1u32..3, n in 4u64..24, seed in any::<u64>()) {
        use pp_engine::stability::StabilityCriterion;
        let hp = HierarchicalPartition::composed(h);
        let proto = hp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let crit = hp.stability();
        let res = Simulator::new(&proto)
            .run(&mut pop, &mut sched, &crit, 100_000_000);
        prop_assert!(res.is_ok());
        // Keep going: stability must persist.
        let _ = Simulator::new(&proto).run(&mut pop, &mut sched, &Never, 2000);
        prop_assert!(crit.is_stable(&proto, pop.counts()));
        prop_assert_eq!(pop.counts().iter().sum::<u64>(), n);
    }
}
