//! R-generalized (ratio) partition — the extension of Umino, Kitamura,
//! and Izumi (BDA 2018) that the paper's related-work section mentions:
//! divide the population into `k` groups whose sizes follow a given ratio
//! `R = (r₁, …, r_k)`.
//!
//! ## Construction
//!
//! Run the paper's uniform `s`-partition protocol with `s = Σ rᵢ` *slots*
//! and re-label the output map: slot `j` belongs to group `i` where `i` is
//! the cumulative-ratio bucket containing `j` (slots `1..=r₁` → group 1,
//! the next `r₂` slots → group 2, …). Because the slot partition is
//! uniform (each slot gets `⌊n/s⌋` or `⌈n/s⌉` agents), group `i` receives
//! between `rᵢ·⌊n/s⌋` and `rᵢ·⌈n/s⌉` agents — sizes proportional to `R`
//! with per-group deviation at most `rᵢ`. State count is `3s − 2 =
//! 3·Σrᵢ − 2`.
//!
//! The chain/unwind dynamics, stable signature, and Lemma 1 invariant are
//! all inherited unchanged from [`UniformKPartition`]; only the `f` map
//! differs.

use crate::kpartition::UniformKPartition;
use pp_engine::protocol::{CompiledProtocol, GroupId, StateId};
use pp_engine::stability::Signature;

/// Ratio-partition protocol for a ratio vector `R`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatioPartition {
    ratios: Vec<u32>,
    /// The underlying uniform Σr-partition.
    slots: UniformKPartition,
    /// `slot_group[j]` = 1-based group of slot `j + 1`.
    slot_group: Vec<u16>,
}

impl RatioPartition {
    /// Protocol dividing the population in ratio `ratios` (all entries
    /// ≥ 1, at least two entries, `Σ ratios ≥ 2`).
    pub fn new(ratios: Vec<u32>) -> Self {
        assert!(ratios.len() >= 2, "a ratio partition needs >= 2 groups");
        assert!(ratios.iter().all(|&r| r >= 1), "ratio entries must be >= 1");
        let s: u32 = ratios.iter().sum();
        assert!(s >= 2, "total ratio weight must be >= 2");
        let mut slot_group = Vec::with_capacity(s as usize);
        for (gi, &r) in ratios.iter().enumerate() {
            for _ in 0..r {
                slot_group.push((gi + 1) as u16);
            }
        }
        RatioPartition {
            slots: UniformKPartition::new(s as usize),
            ratios,
            slot_group,
        }
    }

    /// The ratio vector `R`.
    pub fn ratios(&self) -> &[u32] {
        &self.ratios
    }

    /// Number of groups `k = |R|`.
    pub fn num_groups(&self) -> usize {
        self.ratios.len()
    }

    /// Total slot count `s = Σ rᵢ`.
    pub fn num_slots(&self) -> usize {
        self.slots.k()
    }

    /// The underlying uniform slot-partition handle (state accessors,
    /// Lemma 1, etc. operate at slot granularity).
    pub fn slots(&self) -> &UniformKPartition {
        &self.slots
    }

    /// Group of slot `j` (1-based slot and group).
    pub fn group_of_slot(&self, j: usize) -> GroupId {
        GroupId(self.slot_group[j - 1])
    }

    /// Build and compile the protocol: the uniform `s`-partition table
    /// with the folded output map.
    pub fn compile(&self) -> CompiledProtocol {
        let s = self.num_slots();
        let mut spec = self.relabelled_spec();
        let _ = s;
        spec.set_initial(self.slots.initial());
        spec.compile()
            .expect("ratio partition spec is internally consistent")
    }

    fn relabelled_spec(&self) -> pp_engine::spec::ProtocolSpec {
        // Rebuild the k-partition spec with the folded group labels.
        // Layout must match `UniformKPartition`'s accessors exactly.
        let s = self.num_slots();
        let kp = &self.slots;
        let mut spec =
            pp_engine::spec::ProtocolSpec::new(format!("ratio-partition-{:?}", self.ratios));
        let fold = |slot: usize| self.slot_group[slot - 1];
        let ini = spec.add_state("initial", 1);
        let inip = spec.add_state("initial'", 1);
        for i in 1..=s {
            spec.add_state(format!("g{i}"), fold(i));
        }
        if s >= 3 {
            for i in 2..=s - 1 {
                spec.add_state(format!("m{i}"), fold(i));
            }
            for i in 1..=s - 2 {
                spec.add_state(format!("d{i}"), 1);
            }
        }
        spec.set_initial(ini);
        // Copy the rules from the slot-level protocol verbatim: the rule
        // structure depends only on the state layout, which is shared.
        let slot_proto = kp.compile();
        for (p, q, p2, q2) in slot_proto.non_identity_rules() {
            spec.add_rule(p, q, p2, q2);
        }
        let _ = (ini, inip);
        spec
    }

    /// Stable signature — identical to the slot-level protocol's.
    pub fn stable_signature(&self, n: u64) -> Signature {
        self.slots.stable_signature(n)
    }

    /// Expected group sizes at stability: fold the slot-level sizes.
    pub fn expected_group_sizes(&self, n: u64) -> Vec<u64> {
        let slot_sizes = self.slots.expected_group_sizes(n);
        let mut out = vec![0u64; self.num_groups()];
        for (j, &sz) in slot_sizes.iter().enumerate() {
            out[(self.slot_group[j] - 1) as usize] += sz;
        }
        out
    }

    /// Per-group deviation bound: group `i` differs from the ideal
    /// `n·rᵢ/s` by less than `rᵢ`.
    pub fn deviation_bound(&self, i: usize) -> u64 {
        u64::from(self.ratios[i - 1])
    }

    /// Slot-level state id `g_j` (useful with the engine's trace tools).
    pub fn g(&self, j: usize) -> StateId {
        self.slots.g(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;

    #[test]
    fn slot_folding_layout() {
        let rp = RatioPartition::new(vec![1, 2, 3]);
        assert_eq!(rp.num_slots(), 6);
        assert_eq!(rp.num_groups(), 3);
        assert_eq!(rp.group_of_slot(1).number(), 1);
        assert_eq!(rp.group_of_slot(2).number(), 2);
        assert_eq!(rp.group_of_slot(3).number(), 2);
        assert_eq!(rp.group_of_slot(4).number(), 3);
        assert_eq!(rp.group_of_slot(6).number(), 3);
    }

    #[test]
    fn compiled_ratio_protocol_is_symmetric_with_3s_minus_2_states() {
        let rp = RatioPartition::new(vec![2, 1]);
        let p = rp.compile();
        assert!(p.is_symmetric());
        assert_eq!(p.num_states(), 3 * 3 - 2);
        assert_eq!(p.num_groups(), 2);
    }

    #[test]
    fn stabilises_to_ratio() {
        // Ratio 1:2 over n = 18: expect sizes {6, 12}.
        let rp = RatioPartition::new(vec![1, 2]);
        let p = rp.compile();
        let mut pop = CountPopulation::new(&p, 18);
        let mut sched = UniformRandomScheduler::from_seed(21);
        let sig = rp.stable_signature(18);
        Simulator::new(&p)
            .run(
                &mut pop,
                &mut sched,
                &sig,
                rp.slots().interaction_budget(18),
            )
            .unwrap();
        assert_eq!(pop.group_sizes(&p), vec![6, 12]);
        assert_eq!(rp.expected_group_sizes(18), vec![6, 12]);
    }

    #[test]
    fn non_divisible_population_respects_deviation_bound() {
        let rp = RatioPartition::new(vec![2, 3]);
        let p = rp.compile();
        let n = 23u64; // 23 = 4·5 + 3 slots of remainder
        let mut pop = CountPopulation::new(&p, n);
        let mut sched = UniformRandomScheduler::from_seed(8);
        let sig = rp.stable_signature(n);
        Simulator::new(&p)
            .run(&mut pop, &mut sched, &sig, rp.slots().interaction_budget(n))
            .unwrap();
        let sizes = pop.group_sizes(&p);
        assert_eq!(sizes.iter().sum::<u64>(), n);
        assert_eq!(sizes, rp.expected_group_sizes(n));
        let s = rp.num_slots() as f64;
        for (i, &sz) in sizes.iter().enumerate() {
            let ideal = n as f64 * rp.ratios()[i] as f64 / s;
            assert!(
                (sz as f64 - ideal).abs() < rp.deviation_bound(i + 1) as f64 + 1e-9,
                "group {}: {sz} vs ideal {ideal}",
                i + 1
            );
        }
    }

    #[test]
    fn uniform_ratio_equals_kpartition_sizes() {
        let rp = RatioPartition::new(vec![1, 1, 1]);
        let kp = UniformKPartition::new(3);
        for n in [9u64, 10, 11] {
            assert_eq!(rp.expected_group_sizes(n), kp.expected_group_sizes(n));
        }
    }

    #[test]
    #[should_panic(expected = ">= 2 groups")]
    fn single_group_rejected() {
        RatioPartition::new(vec![5]);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_ratio_rejected() {
        RatioPartition::new(vec![1, 0]);
    }
}
