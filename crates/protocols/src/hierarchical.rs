//! Recursive-bipartition protocols: the `k = 2^h` composition and the
//! approximate k-partition baseline.
//!
//! ## The composition the paper's introduction discusses
//!
//! "By repeating the uniform bipartition protocol `h` times, we can
//! construct a uniform k-partition protocol for `k = 2^h`" (§1.1). This
//! module implements that composition directly as a flat protocol: an
//! agent's state records the binary *prefix* it has committed to so far
//! and a `initial/initial'` flag for the bipartition it is currently
//! running among agents with the same prefix. Settling in level `ℓ`'s
//! bipartition appends one bit and enters level `ℓ + 1`; settling at level
//! `h` fixes the agent's leaf (= group).
//!
//! Interestingly, the state count is `2 + 4 + … + 2^h + 2^h = 3·2^h − 2 =
//! 3k − 2` — identical to the paper's protocol at `k = 2^h`.
//!
//! **Uniformity caveat (measured, not hidden):** the naive composition is
//! *not* exactly uniform. A cohort of odd size strands one agent mid-level
//! (its bipartition partner never arrives), and stranded agents pile up on
//! the leftmost leaf of their subtree, so leaf sizes can differ by up to
//! `h` rather than 1. When `n` is divisible by `2^h` every split is even
//! and the partition is exact. The `baselines` experiment quantifies this
//! deviation against the paper's protocol — which is precisely the
//! paper's point that the bipartition strategy "is not easily extended to
//! the general k-partition case".
//!
//! ## The approximate baseline (substitution for Delporte-Gallet et al.)
//!
//! The paper's only general-`k` comparator guarantees each group at least
//! `n/(2k)` agents (with `k(k+3)/2` states). The original transition table
//! is not reproduced in the paper, so — per the substitution policy in
//! DESIGN.md — [`HierarchicalPartition::approx`] provides a baseline with
//! the *same interface and guarantee*: run the recursive bipartition with
//! `h = ⌈log₂ k⌉` levels and fold leaf `j` onto group `(j mod k) + 1`.
//! Each group receives `⌊2^h / k⌋ ≥ 1` leaves of `≈ n/2^h > n/(2k)`
//! agents each, so the `n/(2k)` bound holds for `n ≫ h·2^h` (stranded
//! agents cost at most `h` per leaf). State count: `3·2^h − 2 < 6k`,
//! comfortably within the `k(k+3)/2` budget for `k ≥ 9`.

use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::StabilityCriterion;

/// A recursive-bipartition partition protocol with `h` levels and a
/// configurable leaf → group map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchicalPartition {
    h: u32,
    /// `leaf_groups[j]` is the 1-based group of leaf `j` (`2^h` entries).
    leaf_groups: Vec<u16>,
}

impl HierarchicalPartition {
    /// The `k = 2^h` composition: leaf `j` is group `j + 1`.
    ///
    /// # Panics
    /// If `h = 0` (no partition) or `h > 8` (state count `3·2^h − 2`
    /// explodes; the paper's comparison range is `k ≤ 16`).
    pub fn composed(h: u32) -> Self {
        assert!((1..=8).contains(&h), "h must be in 1..=8");
        let leaves = 1usize << h;
        HierarchicalPartition {
            h,
            leaf_groups: (0..leaves).map(|j| (j + 1) as u16).collect(),
        }
    }

    /// Approximate k-partition: `h = ⌈log₂ k⌉` levels, leaf `j` folded
    /// onto group `(j mod k) + 1`. Guarantees each group ≥ `n/(2k)` for
    /// large `n` (see module docs).
    pub fn approx(k: usize) -> Self {
        assert!((2..=256).contains(&k), "k must be in 2..=256");
        let h = (usize::BITS - (k - 1).leading_zeros()).max(1);
        let leaves = 1usize << h;
        HierarchicalPartition {
            h,
            leaf_groups: (0..leaves).map(|j| (j % k + 1) as u16).collect(),
        }
    }

    /// Number of levels `h`.
    pub fn levels(&self) -> u32 {
        self.h
    }

    /// Number of leaves `2^h`.
    pub fn num_leaves(&self) -> usize {
        1 << self.h
    }

    /// Number of groups (max of the leaf map).
    pub fn num_groups(&self) -> usize {
        *self.leaf_groups.iter().max().unwrap() as usize
    }

    /// `|Q| = 3·2^h − 2`.
    pub fn num_states(&self) -> usize {
        3 * self.num_leaves() - 2
    }

    /// Unsettled state `u(level, prefix, sub)`: the agent has committed to
    /// `prefix` (`level − 1` bits) and is running level `level`'s
    /// bipartition with flag `sub ∈ {0, 1}`.
    pub fn unsettled(&self, level: u32, prefix: usize, sub: usize) -> StateId {
        assert!((1..=self.h).contains(&level));
        assert!(prefix < (1 << (level - 1)));
        assert!(sub < 2);
        // Level ℓ's block starts at 2^ℓ − 2.
        let off = (1usize << level) - 2;
        StateId((off + 2 * prefix + sub) as u16)
    }

    /// Settled leaf state `leaf(j)`, `j ∈ 0..2^h`.
    pub fn leaf(&self, j: usize) -> StateId {
        assert!(j < self.num_leaves());
        StateId((2 * self.num_leaves() - 2 + j) as u16)
    }

    /// Decompose a state: `Ok((level, prefix, sub))` for unsettled states,
    /// `Err(leaf_index)` for leaves.
    pub fn decode(&self, s: StateId) -> Result<(u32, usize, usize), usize> {
        let i = s.index();
        let unsettled_total = 2 * self.num_leaves() - 2;
        if i < unsettled_total {
            // Level is the ℓ with 2^ℓ − 2 ≤ i < 2^{ℓ+1} − 2.
            let level = usize::BITS - (i + 2).leading_zeros() - 1;
            let off = (1usize << level) - 2;
            Ok((level, (i - off) / 2, (i - off) % 2))
        } else {
            Err(i - unsettled_total)
        }
    }

    /// Group (1-based) of the leftmost leaf under the subtree of
    /// `(level, prefix)` — the provisional group of an unsettled agent.
    fn provisional_group(&self, level: u32, prefix: usize) -> u16 {
        let leftmost = prefix << (self.h - level + 1);
        self.leaf_groups[leftmost]
    }

    /// Build the protocol description.
    pub fn spec(&self) -> ProtocolSpec {
        let h = self.h;
        let mut spec = ProtocolSpec::new(format!(
            "hierarchical-partition-h{h}-k{}",
            self.num_groups()
        ));
        // States in layout order: unsettled by level, then leaves.
        for level in 1..=h {
            for prefix in 0..(1usize << (level - 1)) {
                for sub in 0..2 {
                    let s = spec.add_state(
                        format!("u{level}.{prefix}.{}", if sub == 0 { "i" } else { "i'" }),
                        self.provisional_group(level, prefix),
                    );
                    debug_assert_eq!(s, self.unsettled(level, prefix, sub));
                }
            }
        }
        for j in 0..self.num_leaves() {
            let s = spec.add_state(format!("leaf{j}"), self.leaf_groups[j]);
            debug_assert_eq!(s, self.leaf(j));
        }
        spec.set_initial(self.unsettled(1, 0, 0));

        // Settle results for cohort (level, prefix).
        let settle = |level: u32, prefix: usize| -> (StateId, StateId) {
            if level == h {
                (self.leaf(2 * prefix), self.leaf(2 * prefix + 1))
            } else {
                (
                    self.unsettled(level + 1, 2 * prefix, 0),
                    self.unsettled(level + 1, 2 * prefix + 1, 0),
                )
            }
        };

        // Within-cohort rules: flip together on equal flags, settle on
        // opposite flags.
        for level in 1..=h {
            for prefix in 0..(1usize << (level - 1)) {
                let u0 = self.unsettled(level, prefix, 0);
                let u1 = self.unsettled(level, prefix, 1);
                spec.add_rule(u0, u0, u1, u1);
                spec.add_rule(u1, u1, u0, u0);
                let (l, r) = settle(level, prefix);
                spec.add_rule_symmetric(u0, u1, l, r);
            }
        }

        // Cross-cohort rules: any unsettled agent flips its flag when it
        // meets an agent outside its cohort (the analogue of the paper's
        // rules 3–4, giving global fairness traction to co-locate opposite
        // flags).
        let all_states: Vec<StateId> = (0..self.num_states() as u16).map(StateId).collect();
        for level in 1..=h {
            for prefix in 0..(1usize << (level - 1)) {
                for sub in 0..2 {
                    let u = self.unsettled(level, prefix, sub);
                    let flipped = self.unsettled(level, prefix, 1 - sub);
                    for &other in &all_states {
                        // Skip within-cohort pairs (handled above).
                        if other == u || other == self.unsettled(level, prefix, 1 - sub) {
                            continue;
                        }
                        // The partner keeps its state — unless it is itself
                        // unsettled, in which case its own rule instance
                        // flips it; emitting the joint rule from the
                        // lower-indexed side only avoids conflicts.
                        match self.decode(other) {
                            Ok((ol, op, os)) if (ol, op) != (level, prefix) => {
                                if u < other {
                                    let oflipped = self.unsettled(ol, op, 1 - os);
                                    spec.add_rule_symmetric(u, other, flipped, oflipped);
                                }
                            }
                            Ok(_) => {}
                            Err(_) => {
                                spec.add_rule_symmetric(u, other, flipped, other);
                            }
                        }
                    }
                }
            }
        }
        spec
    }

    /// Compile into the engine's dense-table form.
    pub fn compile(&self) -> CompiledProtocol {
        let p = self
            .spec()
            .compile()
            .expect("hierarchical spec is internally consistent");
        debug_assert!(p.is_symmetric());
        debug_assert_eq!(p.num_states(), self.num_states());
        p
    }

    /// The exact stability criterion: a configuration is stable iff every
    /// cohort `(level, prefix)` holds at most one unsettled agent.
    ///
    /// *Why exact:* cohorts only gain members when the parent cohort
    /// settles a pair, which itself requires two agents in the parent
    /// cohort; so if every cohort has ≤ 1 member, no settle is reachable
    /// anywhere and group assignments are frozen (only flag flips remain,
    /// which preserve the provisional group). Conversely a cohort with two
    /// agents can always reach a settle under global fairness, changing a
    /// group.
    pub fn stability(&self) -> HierarchicalStable {
        HierarchicalStable {
            proto: self.clone(),
        }
    }

    /// Upper bound on `max − min` group size at stability: one stranded
    /// agent per cohort on a root-to-leaf path, all mapped to the same
    /// leftmost leaf.
    pub fn max_imbalance(&self) -> u64 {
        u64::from(self.h) + 1
    }
}

/// Stability criterion for [`HierarchicalPartition`] (see
/// [`HierarchicalPartition::stability`]).
#[derive(Clone, Debug)]
pub struct HierarchicalStable {
    proto: HierarchicalPartition,
}

impl StabilityCriterion for HierarchicalStable {
    fn is_stable(&self, _proto: &pp_engine::protocol::CompiledProtocol, counts: &[u64]) -> bool {
        let h = self.proto.h;
        for level in 1..=h {
            for prefix in 0..(1usize << (level - 1)) {
                let c = counts[self.proto.unsettled(level, prefix, 0).index()]
                    + counts[self.proto.unsettled(level, prefix, 1).index()];
                if c > 1 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;

    #[test]
    fn state_count_matches_3k_minus_2_for_composed() {
        for h in 1..=4 {
            let p = HierarchicalPartition::composed(h);
            assert_eq!(p.num_states(), 3 * (1 << h) - 2);
            assert_eq!(p.compile().num_states(), p.num_states());
        }
    }

    #[test]
    fn decode_roundtrips() {
        let hp = HierarchicalPartition::composed(3);
        for level in 1..=3 {
            for prefix in 0..(1usize << (level - 1)) {
                for sub in 0..2 {
                    let s = hp.unsettled(level, prefix, sub);
                    assert_eq!(hp.decode(s), Ok((level, prefix, sub)));
                }
            }
        }
        for j in 0..8 {
            assert_eq!(hp.decode(hp.leaf(j)), Err(j));
        }
    }

    #[test]
    fn compiled_protocol_is_symmetric() {
        for h in 1..=3 {
            assert!(HierarchicalPartition::composed(h).compile().is_symmetric());
        }
        assert!(HierarchicalPartition::approx(5).compile().is_symmetric());
    }

    #[test]
    fn h1_behaves_like_bipartition() {
        let hp = HierarchicalPartition::composed(1);
        let p = hp.compile();
        assert_eq!(p.num_states(), 4);
        let mut pop = CountPopulation::new(&p, 10);
        let mut sched = UniformRandomScheduler::from_seed(3);
        Simulator::new(&p)
            .run(&mut pop, &mut sched, &hp.stability(), 10_000_000)
            .unwrap();
        assert_eq!(pop.group_sizes(&p), vec![5, 5]);
    }

    #[test]
    fn exact_partition_when_n_divisible_by_2h() {
        // Even splits at every level: the composition is exactly uniform.
        for h in [2u32, 3] {
            let hp = HierarchicalPartition::composed(h);
            let p = hp.compile();
            let k = 1u64 << h;
            for seed in 0..3 {
                let n = 8 * k;
                let mut pop = CountPopulation::new(&p, n);
                let mut sched = UniformRandomScheduler::from_seed(seed);
                Simulator::new(&p)
                    .run(&mut pop, &mut sched, &hp.stability(), 1_000_000_000)
                    .unwrap();
                assert_eq!(
                    pop.group_sizes(&p),
                    vec![8u64; k as usize],
                    "h={h} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn imbalance_bounded_but_can_exceed_one() {
        // The paper's point: naive composition is not (±1)-uniform. With n
        // not divisible by 2^h, stranded agents accumulate; imbalance stays
        // within h + 1 but exceeds 1 for some seeds.
        let hp = HierarchicalPartition::composed(2);
        let p = hp.compile();
        let mut saw_violation = false;
        for seed in 0..20 {
            let n = 7u64; // odd cohorts at every level
            let mut pop = CountPopulation::new(&p, n);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run(&mut pop, &mut sched, &hp.stability(), 100_000_000)
                .unwrap();
            let sizes = pop.group_sizes(&p);
            assert_eq!(sizes.iter().sum::<u64>(), n);
            let mx = *sizes.iter().max().unwrap();
            let mn = *sizes.iter().min().unwrap();
            assert!(mx - mn <= hp.max_imbalance(), "{sizes:?}");
            if mx - mn > 1 {
                saw_violation = true;
            }
        }
        assert!(
            saw_violation,
            "expected some seed to break ±1 uniformity at n = 7, k = 4"
        );
    }

    #[test]
    fn approx_fold_covers_all_groups() {
        let hp = HierarchicalPartition::approx(5);
        assert_eq!(hp.num_groups(), 5);
        assert_eq!(hp.num_leaves(), 8);
        let p = hp.compile();
        // n large relative to k: every group must get at least n/(2k).
        let n = 400u64;
        let mut pop = CountPopulation::new(&p, n);
        let mut sched = UniformRandomScheduler::from_seed(11);
        Simulator::new(&p)
            .run(&mut pop, &mut sched, &hp.stability(), 1_000_000_000)
            .unwrap();
        let sizes = pop.group_sizes(&p);
        assert_eq!(sizes.iter().sum::<u64>(), n);
        for (g, &s) in sizes.iter().enumerate() {
            assert!(
                s >= n / (2 * 5),
                "group {} has {s} < n/(2k) = {}",
                g + 1,
                n / 10
            );
        }
    }

    #[test]
    fn approx_power_of_two_equals_composed() {
        let a = HierarchicalPartition::approx(4);
        let c = HierarchicalPartition::composed(2);
        assert_eq!(a, c);
    }

    #[test]
    fn stability_criterion_rejects_two_agent_cohorts() {
        let hp = HierarchicalPartition::composed(2);
        let p = hp.compile();
        let mut counts = vec![0u64; p.num_states()];
        counts[hp.unsettled(2, 1, 0).index()] = 1;
        counts[hp.unsettled(2, 1, 1).index()] = 1; // two in one cohort
        counts[hp.leaf(0).index()] = 2;
        assert!(!hp.stability().is_stable(&p, &counts));
        counts[hp.unsettled(2, 1, 1).index()] = 0;
        assert!(hp.stability().is_stable(&p, &counts));
    }
}
