//! # pp-protocols — protocol implementations
//!
//! The protocols reproduced or built for the paper *"A Population Protocol
//! for Uniform k-partition under Global Fairness"* (Yasumi et al., IJNC
//! 2019), plus classic textbook protocols exercising the engine:
//!
//! * [`kpartition`] — **the paper's contribution**: the symmetric
//!   `3k − 2`-state uniform k-partition protocol (Algorithm 1), its stable
//!   configuration characterisation (Lemmas 4–6), the Lemma 1 invariant,
//!   and the rules-1–7 "basic strategy" ablation of §3.2.
//! * [`bipartition`] — the 4-state uniform bipartition protocol of Yasumi
//!   et al. (OPODIS 2017), which the paper's protocol specialises to at
//!   `k = 2`.
//! * [`hierarchical`] — recursive bipartition protocols: the `k = 2^h`
//!   composition the paper's introduction discusses, and the approximate
//!   k-partition baseline in the spirit of Delporte-Gallet et al. (2006)
//!   (every group at least `n/(2k)` agents for large `n`).
//! * [`ratio`] — the R-generalized (ratio) partition extension the paper's
//!   related-work section mentions (Umino et al., BDA 2018), built by slot
//!   folding over the uniform Σrᵢ-partition protocol.
//! * [`classics`] — epidemic, leader election, and 3-state approximate
//!   majority; engine demonstrations and related-work context (§1.2).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod bipartition;
pub mod classics;
pub mod hierarchical;
pub mod kpartition;
pub mod ratio;

pub use kpartition::UniformKPartition;
