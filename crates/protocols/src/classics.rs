//! Classic population protocols from the paper's related-work landscape
//! (§1.2): epidemic/one-way broadcast, leader election, and the 3-state
//! approximate majority of Angluin, Aspnes, and Eisenstat (2008).
//!
//! These are not part of the paper's contribution; they exercise the
//! engine's generality (including *asymmetric* protocols, which the
//! k-partition paper excludes from its own design space but which the
//! engine supports) and serve as documented, tested examples of building
//! protocols against [`pp_engine::spec::ProtocolSpec`].

use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::spec::ProtocolSpec;

/// One-way epidemic: `(I, S) → (I, I)`. Group 1 = susceptible, group 2 =
/// infected. Stabilises (silently) with everyone infected once at least
/// one agent starts infected.
pub fn epidemic() -> CompiledProtocol {
    let mut spec = ProtocolSpec::new("epidemic");
    let s = spec.add_state("S", 1);
    let i = spec.add_state("I", 2);
    spec.set_initial(s);
    spec.add_rule_symmetric(i, s, i, i);
    spec.compile().expect("epidemic spec is consistent")
}

/// Classic 2-state leader election: `(L, L) → (L, F)`. All agents start
/// as leaders; pairwise duels leave exactly one. **Asymmetric** — two
/// equal states map to different states — so it lies outside the class of
/// protocols the paper considers, and serves as the engine's asymmetric
/// test vehicle.
pub fn leader_election() -> CompiledProtocol {
    let mut spec = ProtocolSpec::new("leader-election");
    let l = spec.add_state("L", 1);
    let f = spec.add_state("F", 2);
    spec.set_initial(l);
    spec.add_rule(l, l, l, f);
    spec.compile().expect("leader election spec is consistent")
}

/// States of [`approximate_majority`], for callers that seed populations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MajorityStates {
    /// Supporter of opinion X (group 1).
    pub x: StateId,
    /// Supporter of opinion Y (group 2).
    pub y: StateId,
    /// Undecided (group 3).
    pub blank: StateId,
}

/// The 3-state approximate majority protocol (Angluin–Aspnes–Eisenstat):
///
/// ```text
/// (x, y) → (x, b)    (y, x) → (y, b)
/// (x, b) → (x, x)    (y, b) → (y, y)
/// ```
///
/// With a clear initial majority it converges (w.h.p. under the uniform
/// random scheduler) to a consensus on the majority opinion. Initial state
/// is `b` (callers seed `x`/`y` counts explicitly).
pub fn approximate_majority() -> (CompiledProtocol, MajorityStates) {
    let mut spec = ProtocolSpec::new("approximate-majority");
    let x = spec.add_state("x", 1);
    let y = spec.add_state("y", 2);
    let b = spec.add_state("b", 3);
    spec.set_initial(b);
    spec.add_rule(x, y, x, b);
    spec.add_rule(y, x, y, b);
    spec.add_rule(x, b, x, x);
    spec.add_rule(b, x, x, x);
    spec.add_rule(y, b, y, y);
    spec.add_rule(b, y, y, y);
    let proto = spec.compile().expect("majority spec is consistent");
    (proto, MajorityStates { x, y, blank: b })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;
    use pp_engine::stability::Silent;

    #[test]
    fn epidemic_infects_everyone() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 40);
        pop.set_count(s, 39);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(1);
        Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 1_000_000)
            .unwrap();
        assert_eq!(pop.count(i), 40);
    }

    #[test]
    fn leader_election_leaves_exactly_one_leader() {
        let p = leader_election();
        assert!(!p.is_symmetric());
        let l = p.state_by_name("L").unwrap();
        let mut pop = CountPopulation::new(&p, 100);
        let mut sched = UniformRandomScheduler::from_seed(2);
        Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 10_000_000)
            .unwrap();
        assert_eq!(pop.count(l), 1);
    }

    #[test]
    fn approximate_majority_converges_to_clear_majority() {
        let (p, st) = approximate_majority();
        let mut wins = 0;
        for seed in 0..10 {
            let mut pop = CountPopulation::new(&p, 300);
            pop.set_count(st.blank, 0);
            pop.set_count(st.x, 200);
            pop.set_count(st.y, 100);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run(&mut pop, &mut sched, &Silent, 100_000_000)
                .unwrap();
            // Consensus: only one opinion remains (blanks absorbed).
            let x = pop.count(st.x);
            let y = pop.count(st.y);
            assert!(x == 300 || y == 300, "no consensus: x={x} y={y}");
            if x == 300 {
                wins += 1;
            }
        }
        // 2:1 majority on n = 300: X should essentially always win.
        assert!(wins >= 9, "majority won only {wins}/10 trials");
    }

    #[test]
    fn majority_blank_tie_still_reaches_consensus() {
        let (p, st) = approximate_majority();
        let mut pop = CountPopulation::new(&p, 100);
        pop.set_count(st.blank, 98);
        pop.set_count(st.x, 1);
        pop.set_count(st.y, 1);
        let mut sched = UniformRandomScheduler::from_seed(77);
        Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 100_000_000)
            .unwrap();
        assert!(pop.count(st.x) == 100 || pop.count(st.y) == 100);
    }
}
