//! A one-sided-abort variant of the protocol — an exploration of the
//! paper's third open question ("is there a protocol whose time
//! complexity is polynomial in n and k?").
//!
//! The paper's §5.2 identifies chain collisions as the source of the
//! exponential-in-k cost: a chain must recruit `k − 2` free agents
//! *without meeting another chain-builder*, and rule 8 destroys **both**
//! chains on contact. This variant keeps rule 8 only on the symmetric
//! diagonal (where symmetry forces it) and otherwise sacrifices only the
//! *shorter* chain:
//!
//! ```text
//!  8a. (m_i, m_j) -> (m_i, d_{j−1})      i > j   (shorter chain aborts)
//!  8b. (m_i, m_i) -> (d_{i−1}, d_{i−1})          (tie: both abort)
//! ```
//!
//! All other rules are unchanged, so the state count stays `3k − 2` and
//! the protocol stays symmetric (8a pairs are distinct states; 8b keeps
//! the diagonal symmetric). The Lemma 1 invariant survives: 8a removes
//! one `m_j` and adds one `d_{j−1}`, which contribute to exactly the same
//! residuals `x ≤ j − 1`.
//!
//! Correctness is *not* proved in the paper (it is our extension); the
//! test suite model-checks it exhaustively for small `(k, n)` — every
//! terminal SCC is a correct frozen partition — and the `variants`
//! experiment measures the speedup, which grows with `k` exactly where
//! the paper's Figure 6 hurts.

use crate::kpartition::UniformKPartition;
use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::Signature;

/// The one-sided-abort variant. Shares the state layout, output map,
/// stable signature, and Lemma 1 machinery with [`UniformKPartition`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OneSidedAbortKPartition {
    base: UniformKPartition,
}

impl OneSidedAbortKPartition {
    /// Variant protocol for `k ≥ 3` groups (for `k = 2` there are no
    /// chains and the variant coincides with the paper's protocol).
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "the one-sided-abort variant needs k >= 3");
        OneSidedAbortKPartition {
            base: UniformKPartition::new(k),
        }
    }

    /// The shared state layout and helpers (accessors `g`, `m`, `d`,
    /// `lemma1_holds`, `expected_group_sizes`, …).
    pub fn base(&self) -> &UniformKPartition {
        &self.base
    }

    /// Number of groups `k`.
    pub fn k(&self) -> usize {
        self.base.k()
    }

    /// Build the variant's rules: the paper's spec with rule 8 replaced.
    pub fn spec(&self) -> ProtocolSpec {
        let k = self.base.k();
        let kp = &self.base;
        // Start from the paper's full spec and *overwrite* the off-diagonal
        // rule-8 entries. ProtocolSpec rejects conflicting duplicates, so
        // rebuild from the rule list instead: copy every compiled rule
        // except off-diagonal (m, m) pairs, then add 8a.
        let paper = kp.compile();
        let mut spec = ProtocolSpec::new(format!("one-sided-abort-{k}-partition"));
        let mut names: Vec<String> = Vec::new();
        for s in paper.states() {
            names.push(paper.state_name(s).to_string());
            spec.add_state(paper.state_name(s), paper.group_of(s).0);
        }
        spec.set_initial(paper.initial_state());
        let m_index = |s: StateId| kp.m_index(s);
        for (p, q, p2, q2) in paper.non_identity_rules() {
            match (m_index(p), m_index(q)) {
                (Some(i), Some(j)) if i != j => {
                    // Replace with one-sided abort: the larger survives.
                    if i > j {
                        spec.add_rule(p, q, p, kp.d(j - 1));
                    } else {
                        spec.add_rule(p, q, kp.d(i - 1), q);
                    }
                }
                _ => spec.add_rule(p, q, p2, q2),
            }
        }
        spec
    }

    /// Compile the variant.
    pub fn compile(&self) -> CompiledProtocol {
        let p = self
            .spec()
            .compile()
            .expect("variant spec is internally consistent");
        debug_assert!(p.is_symmetric());
        debug_assert_eq!(p.num_states(), self.base.num_states());
        p
    }

    /// Stable signature — identical to the paper's protocol (Lemmas 4–6
    /// hold unchanged: the variant's reachable set is a subset of
    /// configurations satisfying the same invariant with the same
    /// terminal structure, as the model-check tests confirm).
    pub fn stable_signature(&self, n: u64) -> Signature {
        self.base.stable_signature(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;

    #[test]
    fn variant_rule8_is_one_sided() {
        let v = OneSidedAbortKPartition::new(5);
        let p = v.compile();
        let kp = v.base();
        // Off-diagonal: larger chain survives.
        assert_eq!(p.delta(kp.m(4), kp.m(2)), (kp.m(4), kp.d(1)));
        assert_eq!(p.delta(kp.m(2), kp.m(4)), (kp.d(1), kp.m(4)));
        // Diagonal: both abort (symmetry requires it).
        assert_eq!(p.delta(kp.m(3), kp.m(3)), (kp.d(2), kp.d(2)));
        // Everything else matches the paper.
        let paper = kp.compile();
        assert_eq!(
            p.delta(kp.initial(), kp.m(2)),
            paper.delta(kp.initial(), kp.m(2))
        );
        assert_eq!(p.delta(kp.d(1), kp.g(1)), paper.delta(kp.d(1), kp.g(1)));
        assert!(p.is_symmetric());
        assert_eq!(p.num_states(), 3 * 5 - 2);
    }

    #[test]
    fn variant_stabilises_to_uniform_partition() {
        for (k, n) in [(3usize, 10u64), (4, 14), (5, 17), (6, 24)] {
            let v = OneSidedAbortKPartition::new(k);
            let p = v.compile();
            for seed in 0..4 {
                let mut pop = CountPopulation::new(&p, n);
                let mut sched = UniformRandomScheduler::from_seed(seed);
                Simulator::new(&p)
                    .run(
                        &mut pop,
                        &mut sched,
                        &v.stable_signature(n),
                        v.base().interaction_budget(n),
                    )
                    .unwrap_or_else(|e| panic!("k={k} n={n} seed={seed}: {e}"));
                assert_eq!(
                    pop.group_sizes(&p),
                    v.base().expected_group_sizes(n),
                    "k={k} n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn variant_preserves_lemma1_along_runs() {
        let v = OneSidedAbortKPartition::new(4);
        let p = v.compile();
        let kp = *v.base();
        struct Check {
            kp: UniformKPartition,
            ok: bool,
        }
        impl pp_engine::observer::Observer for Check {
            fn on_interaction(
                &mut self,
                _s: u64,
                _p: pp_engine::protocol::StateId,
                _q: pp_engine::protocol::StateId,
                _p2: pp_engine::protocol::StateId,
                _q2: pp_engine::protocol::StateId,
                counts: &[u64],
            ) {
                if !self.kp.lemma1_holds(counts) {
                    self.ok = false;
                }
            }
        }
        let mut chk = Check { kp, ok: true };
        let mut pop = CountPopulation::new(&p, 19);
        let mut sched = UniformRandomScheduler::from_seed(9);
        Simulator::new(&p)
            .run_observed(
                &mut pop,
                &mut sched,
                &v.stable_signature(19),
                kp.interaction_budget(19),
                &mut chk,
            )
            .unwrap();
        assert!(chk.ok, "Lemma 1 violated by the variant");
    }
}
