//! The uniform k-partition protocol of Yasumi et al. (Algorithm 1).
//!
//! ## The protocol
//!
//! State set `Q = I ∪ G ∪ M ∪ D` with
//!
//! * `I = {initial, initial'}` — *free* agents (all agents start in
//!   `initial`),
//! * `G = {g1, …, gk}` — settled members of groups `1..k`,
//! * `M = {m2, …, m(k−1)}` — an `m_i` agent is building a *chain*: it has
//!   already recruited agents into `g1..g(i−1)` and will settle the next
//!   free agent it meets into `g_i`,
//! * `D = {d1, …, d(k−2)}` — a `d_i` agent is *unwinding* an aborted
//!   chain: it will send one agent from each of `g_i, g(i−1), …, g1` back
//!   to `initial`, then return to `initial` itself.
//!
//! Output map `f`: `f(g_i) = f(m_i) = i`, `f(initial) = f(initial') =
//! f(d_i) = 1`. Transition rules (numbered as in the paper):
//!
//! ```text
//!  1. (initial , initial ) -> (initial', initial')
//!  2. (initial', initial') -> (initial , initial )
//!  3. (d_i, ini) -> (d_i, ini̅)                      d_i ∈ D, ini ∈ I
//!  4. (g_i, ini) -> (g_i, ini̅)                      g_i ∈ G, ini ∈ I
//!  5. (initial, initial') -> (g1, m2)                [-> (g1, g2) for k = 2]
//!  6. (ini, m_i) -> (g_i, m_{i+1})                   2 ≤ i ≤ k−2
//!  7. (ini, m_{k−1}) -> (g_{k−1}, g_k)
//!  8. (m_i, m_j) -> (d_{i−1}, d_{j−1})               2 ≤ i, j ≤ k−1
//!  9. (d_i, g_i) -> (d_{i−1}, initial)               2 ≤ i ≤ k−2
//! 10. (d_1, g_1) -> (initial, initial)
//! ```
//!
//! where `ini̅` flips `initial ↔ initial'`. Every pair not listed is a null
//! interaction. The protocol is symmetric (rule 1, 2 and the diagonal of
//! rule 8 send equal states to equal states) and uses `|Q| = 3k − 2`
//! states, which is asymptotically optimal.
//!
//! ## Why rules 8–10 (the `D` states) are needed
//!
//! With rules 1–7 alone, up to `⌈n/k⌉` chains can start concurrently and
//! strand the population: every free agent gets absorbed into some partial
//! chain and no chain can ever finish (§3.2). Rule 8 lets two colliding
//! chain-builders abort; the resulting `d` agents refund exactly the agents
//! their chains had settled, restoring the invariant of
//! [`UniformKPartition::lemma1_residual`].
//! The [`ablation`] module exposes the rules-1–7 protocol so this failure
//! is measurable.
//!
//! ## Stable configurations (Lemmas 4–6)
//!
//! Writing `q = ⌊n/k⌋` and `r = n mod k`, every execution stabilises at:
//! `#g_x = q + 1` for `x < r`, `#g_x = q` for `x ≥ r`, plus — if `r = 1` —
//! one agent free in `I`, or — if `r ≥ 2` — one agent in `m_r`. Group
//! sizes are `q + 1` for groups `1..r` and `q` for the rest
//! ([`UniformKPartition::expected_group_sizes`]). [`UniformKPartition::
//! stable_signature`] encodes this as an exact count predicate, which the
//! simulator checks in O(|Q|) after each effective interaction.

pub mod ablation;
pub mod variant;

use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::Signature;

/// Builder/handle for the paper's uniform k-partition protocol.
///
/// Cheap to construct and copy; [`Self::compile`] produces the dense-table
/// protocol the engine runs.
///
/// ```
/// use pp_engine::population::{CountPopulation, Population};
/// use pp_engine::scheduler::UniformRandomScheduler;
/// use pp_engine::simulator::Simulator;
/// use pp_protocols::kpartition::UniformKPartition;
///
/// let kp = UniformKPartition::new(3);
/// let proto = kp.compile();
/// assert_eq!(proto.num_states(), 7); // 3k − 2
///
/// let mut pop = CountPopulation::new(&proto, 17);
/// let mut sched = UniformRandomScheduler::from_seed(1);
/// Simulator::new(&proto)
///     .run(&mut pop, &mut sched, &kp.stable_signature(17), 1_000_000)
///     .unwrap();
/// // 17 = 3·5 + 2: groups of 6, 6, 5.
/// assert_eq!(pop.group_sizes(&proto), vec![6, 6, 5]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformKPartition {
    k: usize,
}

impl UniformKPartition {
    /// Protocol for `k ≥ 2` groups.
    ///
    /// # Panics
    /// If `k < 2` (a 1-partition is trivial and the paper requires
    /// `k ≥ 2`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "uniform k-partition requires k >= 2");
        assert!(k <= u16::MAX as usize / 4, "k too large for StateId space");
        UniformKPartition { k }
    }

    /// The number of groups `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `|Q| = 3k − 2`.
    pub fn num_states(&self) -> usize {
        3 * self.k - 2
    }

    /// The designated initial state `initial`.
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// The symmetry-breaking partner state `initial'`.
    pub fn initial_prime(&self) -> StateId {
        StateId(1)
    }

    /// Settled-group state `g_i`, `1 ≤ i ≤ k`.
    pub fn g(&self, i: usize) -> StateId {
        assert!((1..=self.k).contains(&i), "g_{i} out of range");
        StateId((2 + i - 1) as u16)
    }

    /// Chain-builder state `m_i`, `2 ≤ i ≤ k − 1` (exists only for
    /// `k ≥ 3`).
    pub fn m(&self, i: usize) -> StateId {
        assert!(
            self.k >= 3 && (2..=self.k - 1).contains(&i),
            "m_{i} out of range for k = {}",
            self.k
        );
        StateId((2 + self.k + i - 2) as u16)
    }

    /// Chain-unwinder state `d_i`, `1 ≤ i ≤ k − 2` (exists only for
    /// `k ≥ 3`).
    pub fn d(&self, i: usize) -> StateId {
        assert!(
            self.k >= 3 && (1..=self.k - 2).contains(&i),
            "d_{i} out of range for k = {}",
            self.k
        );
        StateId((2 + self.k + (self.k - 2) + i - 1) as u16)
    }

    /// Whether `s` is a free state (`initial` or `initial'`).
    pub fn is_free(&self, s: StateId) -> bool {
        s.index() < 2
    }

    /// If `s = g_i`, returns `i`.
    pub fn g_index(&self, s: StateId) -> Option<usize> {
        let i = s.index();
        (2..2 + self.k).contains(&i).then(|| i - 1)
    }

    /// If `s = m_i`, returns `i`.
    pub fn m_index(&self, s: StateId) -> Option<usize> {
        if self.k < 3 {
            return None;
        }
        let base = 2 + self.k;
        let i = s.index();
        (base..base + self.k - 2).contains(&i).then(|| i - base + 2)
    }

    /// If `s = d_i`, returns `i`.
    pub fn d_index(&self, s: StateId) -> Option<usize> {
        if self.k < 3 {
            return None;
        }
        let base = 2 + self.k + (self.k - 2);
        let i = s.index();
        (base..base + self.k - 2).contains(&i).then(|| i - base + 1)
    }

    /// Build the protocol description (states, `f`, all ten rules).
    pub fn spec(&self) -> ProtocolSpec {
        let k = self.k;
        let mut spec = ProtocolSpec::new(format!("uniform-{k}-partition"));

        // States, in the fixed layout the accessors assume.
        let ini = spec.add_state("initial", 1);
        let inip = spec.add_state("initial'", 1);
        debug_assert_eq!(ini, self.initial());
        debug_assert_eq!(inip, self.initial_prime());
        for i in 1..=k {
            let s = spec.add_state(format!("g{i}"), i as u16);
            debug_assert_eq!(s, self.g(i));
        }
        if k >= 3 {
            for i in 2..=k - 1 {
                let s = spec.add_state(format!("m{i}"), i as u16);
                debug_assert_eq!(s, self.m(i));
            }
            for i in 1..=k - 2 {
                let s = spec.add_state(format!("d{i}"), 1);
                debug_assert_eq!(s, self.d(i));
            }
        }
        spec.set_initial(ini);

        let flip = |s: StateId| if s == ini { inip } else { ini };

        // Rule 1 and 2: same-state free agents flip together.
        spec.add_rule_labelled(ini, ini, inip, inip, "r1");
        spec.add_rule_labelled(inip, inip, ini, ini, "r2");

        // Rule 5: the only symmetry-broken creation point.
        if k == 2 {
            // For k = 2 the chain is trivial: settle both agents at once.
            // This is exactly the 4-state bipartition protocol of [25].
            spec.add_rule_symmetric_labelled(ini, inip, self.g(1), self.g(2), "r5");
        } else {
            spec.add_rule_symmetric_labelled(ini, inip, self.g(1), self.m(2), "r5");
        }

        // Rules 3 and 4: d/g agents flip free agents (the mechanism that,
        // under global fairness, eventually co-locates an `initial` with an
        // `initial'` so rule 5 can fire).
        for x in [ini, inip] {
            for i in 1..=k {
                spec.add_rule_symmetric_labelled(self.g(i), x, self.g(i), flip(x), "r3");
            }
            if k >= 3 {
                for i in 1..=k - 2 {
                    spec.add_rule_symmetric_labelled(self.d(i), x, self.d(i), flip(x), "r4");
                }
            }
        }

        if k >= 3 {
            // Rule 6: the chain recruits a free agent into g_i and advances.
            for i in 2..=k.saturating_sub(2) {
                for x in [ini, inip] {
                    spec.add_rule_symmetric_labelled(x, self.m(i), self.g(i), self.m(i + 1), "r6");
                }
            }
            // Rule 7: the chain completes; the builder settles into g_k.
            for x in [ini, inip] {
                spec.add_rule_symmetric_labelled(x, self.m(k - 1), self.g(k - 1), self.g(k), "r7");
            }
            // Rule 8: two chains collide and both abort.
            for i in 2..=k - 1 {
                for j in 2..=k - 1 {
                    spec.add_rule_labelled(
                        self.m(i),
                        self.m(j),
                        self.d(i - 1),
                        self.d(j - 1),
                        "r8",
                    );
                }
            }
            // Rules 9 and 10: unwinding refunds one settled agent per level.
            for i in 2..=k.saturating_sub(2) {
                spec.add_rule_symmetric_labelled(self.d(i), self.g(i), self.d(i - 1), ini, "r9");
            }
            spec.add_rule_symmetric_labelled(self.d(1), self.g(1), ini, ini, "r10");
        }

        spec
    }

    /// Compile into the engine's dense-table form.
    ///
    /// # Panics
    /// Never for valid `k`; the spec is internally consistent by
    /// construction and compilation is infallible for it.
    pub fn compile(&self) -> CompiledProtocol {
        let proto = self
            .spec()
            .compile()
            .expect("uniform k-partition spec is internally consistent");
        debug_assert!(proto.is_symmetric());
        debug_assert_eq!(proto.num_states(), self.num_states());
        debug_assert_eq!(proto.num_groups(), self.k);
        proto
    }

    /// Group sizes of the stable configuration for population size `n`:
    /// groups `1..=(n mod k)` hold `⌊n/k⌋ + 1` agents, the rest `⌊n/k⌋`
    /// (Lemma 6 plus the output map: the leftover `m_r` agent counts
    /// toward group `r`, and the leftover free agent toward group 1).
    pub fn expected_group_sizes(&self, n: u64) -> Vec<u64> {
        let k = self.k as u64;
        let q = n / k;
        let r = n % k;
        (1..=k).map(|x| if x <= r { q + 1 } else { q }).collect()
    }

    /// The stable-configuration signature of Lemmas 4–6 for population
    /// size `n`, usable as the simulator's stopping criterion.
    ///
    /// The signature fixes every state count except, when `n mod k = 1`,
    /// the split of the lone free agent between `initial` and `initial'`
    /// (it keeps flipping by rules 3–4; both states map to group 1).
    ///
    /// Note the paper assumes `n ≥ 3`: for `n = 2` a symmetric protocol
    /// cannot separate the two agents and the signature, while well
    /// defined, is unreachable.
    pub fn stable_signature(&self, n: u64) -> Signature {
        let k = self.k as u64;
        let q = n / k;
        let r = n % k;
        let s = self.num_states();
        let mut fixed: Vec<Option<u64>> = vec![Some(0); s];
        for x in 1..=self.k {
            let want = if (x as u64) < r.max(1) { q + 1 } else { q };
            fixed[self.g(x).index()] = Some(want);
        }
        // Free agents: none, except exactly one (in either `initial` or
        // `initial'`) when r = 1.
        if r == 1 {
            fixed[self.initial().index()] = None;
            fixed[self.initial_prime().index()] = None;
            Signature::new(fixed, vec![(vec![self.initial(), self.initial_prime()], 1)])
        } else {
            if r >= 2 {
                fixed[self.m(r as usize).index()] = Some(1);
            }
            Signature::new(fixed, vec![])
        }
    }

    /// The Lemma 1 residual at configuration `counts`:
    ///
    /// `residual(x) = Σ_{p > x} #m_p + Σ_{q ≥ x} #d_q + #g_k − #g_x`
    ///
    /// Lemma 1 states `residual(x) = 0` for every `x` in every reachable
    /// configuration. Returns the vector of residuals (index 0 = `x = 1`);
    /// all-zero means the invariant holds. Tests and the model checker use
    /// this; it is also a useful corruption detector for fault-injection
    /// studies.
    pub fn lemma1_residual(&self, counts: &[u64]) -> Vec<i64> {
        assert_eq!(counts.len(), self.num_states());
        let k = self.k;
        let gk = counts[self.g(k).index()] as i64;
        (1..=k)
            .map(|x| {
                let mut rhs = gk;
                if k >= 3 {
                    for p in (x + 1)..=(k - 1) {
                        if p >= 2 {
                            rhs += counts[self.m(p).index()] as i64;
                        }
                    }
                    for q in x..=(k - 2) {
                        if q >= 1 {
                            rhs += counts[self.d(q).index()] as i64;
                        }
                    }
                }
                rhs - counts[self.g(x).index()] as i64
            })
            .collect()
    }

    /// Whether Lemma 1 holds at `counts`.
    pub fn lemma1_holds(&self, counts: &[u64]) -> bool {
        self.lemma1_residual(counts).iter().all(|&r| r == 0)
    }

    /// A safe interaction budget for simulations: generous enough that a
    /// run hitting it indicates a bug rather than bad luck. Empirically the
    /// mean stabilisation time grows exponentially in `k` and mildly
    /// superlinearly in `n`; this bound stays ≥ 1000× the observed mean in
    /// the paper's parameter ranges.
    pub fn interaction_budget(&self, n: u64) -> u64 {
        let k = self.k as u64;
        // ~ n^2 · 4^k, saturating.
        n.saturating_mul(n)
            .saturating_mul(1u64.checked_shl((2 * k).min(40) as u32).unwrap_or(u64::MAX))
            .max(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;
    use pp_engine::stability::{GroupClosure, StabilityCriterion};

    #[test]
    fn state_count_is_3k_minus_2() {
        for k in 2..=12 {
            let p = UniformKPartition::new(k).compile();
            assert_eq!(p.num_states(), 3 * k - 2, "k = {k}");
        }
    }

    #[test]
    fn protocol_is_symmetric_and_deterministic() {
        for k in 2..=10 {
            let p = UniformKPartition::new(k).compile();
            assert!(p.is_symmetric(), "k = {k}");
        }
    }

    /// All ten Algorithm 1 rules carry labels, every non-identity pair
    /// attributes to one of them, and spot checks land on the right rule.
    #[test]
    fn all_ten_rules_are_labelled() {
        for k in 3..=8 {
            let kp = UniformKPartition::new(k);
            let p = kp.compile();
            let mut names: Vec<&str> = p.rule_names().iter().map(|s| s.as_str()).collect();
            names.sort_unstable();
            let mut expect = vec!["r1", "r10", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"];
            // k = 3 has no m_i with 2 <= i <= k-2, so rule 6 (and the
            // matching r9 demolition level) never appears.
            if k == 3 {
                expect.retain(|n| *n != "r6" && *n != "r9");
            }
            assert_eq!(names, expect, "k = {k}");
            for (q1, q2, _, _) in p.non_identity_rules() {
                assert!(p.rule_of(q1, q2).is_some(), "unlabelled pair at k = {k}");
            }
            let ini = kp.initial();
            let inip = kp.initial_prime();
            let rule = |p2, q2| p.rule_name(p.rule_of(p2, q2).unwrap());
            assert_eq!(rule(ini, ini), "r1");
            assert_eq!(rule(inip, inip), "r2");
            assert_eq!(rule(kp.g(1), ini), "r3");
            assert_eq!(rule(kp.d(1), inip), "r4");
            assert_eq!(rule(ini, inip), "r5");
            assert_eq!(rule(inip, ini), "r5");
            assert_eq!(rule(ini, kp.m(k - 1)), "r7");
            assert_eq!(rule(kp.m(2), kp.m(k - 1)), "r8");
            assert_eq!(rule(kp.d(1), kp.g(1)), "r10");
        }
        // k = 2 degenerates to the bipartition protocol: r1, r2, r3, r5.
        let p = UniformKPartition::new(2).compile();
        let mut names: Vec<&str> = p.rule_names().iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["r1", "r2", "r3", "r5"]);
    }

    #[test]
    fn state_layout_roundtrips() {
        let kp = UniformKPartition::new(5);
        let p = kp.compile();
        assert_eq!(p.state_name(kp.initial()), "initial");
        assert_eq!(p.state_name(kp.initial_prime()), "initial'");
        for i in 1..=5 {
            assert_eq!(p.state_name(kp.g(i)), format!("g{i}"));
            assert_eq!(kp.g_index(kp.g(i)), Some(i));
        }
        for i in 2..=4 {
            assert_eq!(p.state_name(kp.m(i)), format!("m{i}"));
            assert_eq!(kp.m_index(kp.m(i)), Some(i));
        }
        for i in 1..=3 {
            assert_eq!(p.state_name(kp.d(i)), format!("d{i}"));
            assert_eq!(kp.d_index(kp.d(i)), Some(i));
        }
        assert_eq!(kp.m_index(kp.g(3)), None);
        assert_eq!(kp.d_index(kp.initial()), None);
        assert!(kp.is_free(kp.initial()) && kp.is_free(kp.initial_prime()));
        assert!(!kp.is_free(kp.g(1)));
    }

    #[test]
    fn group_map_matches_paper() {
        let kp = UniformKPartition::new(6);
        let p = kp.compile();
        assert_eq!(p.group_of(kp.initial()).number(), 1);
        assert_eq!(p.group_of(kp.initial_prime()).number(), 1);
        for i in 1..=6 {
            assert_eq!(p.group_of(kp.g(i)).number(), i);
        }
        for i in 2..=5 {
            assert_eq!(p.group_of(kp.m(i)).number(), i);
        }
        for i in 1..=4 {
            assert_eq!(p.group_of(kp.d(i)).number(), 1);
        }
    }

    #[test]
    fn all_ten_rules_present_for_k4() {
        let kp = UniformKPartition::new(4);
        let p = kp.compile();
        let ini = kp.initial();
        let inip = kp.initial_prime();
        // Rule 1, 2.
        assert_eq!(p.delta(ini, ini), (inip, inip));
        assert_eq!(p.delta(inip, inip), (ini, ini));
        // Rule 3.
        assert_eq!(p.delta(kp.d(1), ini), (kp.d(1), inip));
        assert_eq!(p.delta(inip, kp.d(2)), (ini, kp.d(2)));
        // Rule 4.
        assert_eq!(p.delta(kp.g(3), ini), (kp.g(3), inip));
        assert_eq!(p.delta(inip, kp.g(1)), (ini, kp.g(1)));
        // Rule 5.
        assert_eq!(p.delta(ini, inip), (kp.g(1), kp.m(2)));
        assert_eq!(p.delta(inip, ini), (kp.m(2), kp.g(1)));
        // Rule 6 (i = 2 = k − 2).
        assert_eq!(p.delta(ini, kp.m(2)), (kp.g(2), kp.m(3)));
        assert_eq!(p.delta(inip, kp.m(2)), (kp.g(2), kp.m(3)));
        // Rule 7.
        assert_eq!(p.delta(ini, kp.m(3)), (kp.g(3), kp.g(4)));
        assert_eq!(p.delta(kp.m(3), inip), (kp.g(4), kp.g(3)));
        // Rule 8, including the symmetric diagonal.
        assert_eq!(p.delta(kp.m(2), kp.m(3)), (kp.d(1), kp.d(2)));
        assert_eq!(p.delta(kp.m(3), kp.m(3)), (kp.d(2), kp.d(2)));
        // Rule 9.
        assert_eq!(p.delta(kp.d(2), kp.g(2)), (kp.d(1), ini));
        // Rule 10.
        assert_eq!(p.delta(kp.d(1), kp.g(1)), (ini, ini));
        // Null examples: settled agents never change.
        assert!(p.is_identity(kp.g(1), kp.g(2)));
        assert!(p.is_identity(kp.g(4), kp.m(2)));
        assert!(p.is_identity(kp.d(1), kp.d(2)));
        assert!(p.is_identity(kp.d(1), kp.g(2)));
    }

    #[test]
    fn k2_specialises_to_bipartition() {
        let kp = UniformKPartition::new(2);
        let p = kp.compile();
        assert_eq!(p.num_states(), 4);
        assert_eq!(
            p.delta(kp.initial(), kp.initial_prime()),
            (kp.g(1), kp.g(2))
        );
    }

    #[test]
    fn expected_group_sizes_balanced() {
        let kp = UniformKPartition::new(4);
        assert_eq!(kp.expected_group_sizes(12), vec![3, 3, 3, 3]);
        assert_eq!(kp.expected_group_sizes(13), vec![4, 3, 3, 3]);
        assert_eq!(kp.expected_group_sizes(14), vec![4, 4, 3, 3]);
        assert_eq!(kp.expected_group_sizes(15), vec![4, 4, 4, 3]);
        for n in 3..40 {
            let sizes = kp.expected_group_sizes(n);
            assert_eq!(sizes.iter().sum::<u64>(), n);
            let mx = *sizes.iter().max().unwrap();
            let mn = *sizes.iter().min().unwrap();
            assert!(mx - mn <= 1);
        }
    }

    /// End-to-end: random executions stabilise to the exact signature and
    /// the resulting group sizes are uniform. (Small n, several k, a few
    /// seeds; the heavyweight sweeps live in the bench harness.)
    #[test]
    fn stabilises_to_uniform_partition() {
        for k in [2usize, 3, 4, 5] {
            let kp = UniformKPartition::new(k);
            let p = kp.compile();
            for n in [3u64, 7, 12, 20] {
                if n < 3 {
                    continue;
                }
                for seed in 0..3 {
                    let mut pop = CountPopulation::new(&p, n);
                    let mut sched =
                        UniformRandomScheduler::from_seed((k as u64) << 32 | n << 8 | seed);
                    let sig = kp.stable_signature(n);
                    let res = Simulator::new(&p)
                        .run(&mut pop, &mut sched, &sig, kp.interaction_budget(n))
                        .unwrap();
                    assert!(res.interactions > 0);
                    assert_eq!(
                        pop.group_sizes(&p),
                        kp.expected_group_sizes(n),
                        "k={k} n={n} seed={seed}"
                    );
                    assert!(kp.lemma1_holds(pop.counts()));
                }
            }
        }
    }

    /// The protocol-specific signature must agree with the generic (sound
    /// and complete) group-closure criterion at the stable configuration.
    #[test]
    fn signature_agrees_with_group_closure_at_stability() {
        for (k, n) in [(3usize, 10u64), (4, 13), (5, 11), (2, 9)] {
            let kp = UniformKPartition::new(k);
            let p = kp.compile();
            let mut pop = CountPopulation::new(&p, n);
            let mut sched = UniformRandomScheduler::from_seed(99);
            let sig = kp.stable_signature(n);
            Simulator::new(&p)
                .run(&mut pop, &mut sched, &sig, kp.interaction_budget(n))
                .unwrap();
            assert!(
                GroupClosure::default().is_stable(&p, pop.counts()),
                "k={k} n={n}"
            );
        }
    }

    /// Conversely, group-closure must not fire *before* the signature: run
    /// with GroupClosure as the stopping criterion and check the final
    /// configuration satisfies the signature.
    #[test]
    fn group_closure_stops_exactly_at_signature() {
        for (k, n) in [(3usize, 9u64), (4, 10), (3, 7)] {
            let kp = UniformKPartition::new(k);
            let p = kp.compile();
            let mut pop = CountPopulation::new(&p, n);
            let mut sched = UniformRandomScheduler::from_seed(7);
            Simulator::new(&p)
                .run(
                    &mut pop,
                    &mut sched,
                    &GroupClosure::default(),
                    kp.interaction_budget(n),
                )
                .unwrap();
            assert!(
                kp.stable_signature(n).matches(pop.counts()),
                "k={k} n={n}: stopped at {:?}",
                pop.counts()
            );
        }
    }

    #[test]
    fn lemma1_residual_detects_corruption() {
        let kp = UniformKPartition::new(4);
        let p = kp.compile();
        let mut counts = vec![0u64; p.num_states()];
        counts[kp.initial().index()] = 5;
        assert!(kp.lemma1_holds(&counts)); // initial configuration
        counts[kp.g(1).index()] = 1;
        counts[kp.m(2).index()] = 1; // consistent partial chain
        assert!(kp.lemma1_holds(&counts));
        counts[kp.g(3).index()] = 1; // g3 with no builder: corrupt
        assert!(!kp.lemma1_holds(&counts));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k1_rejected() {
        UniformKPartition::new(1);
    }

    #[test]
    fn signature_shapes_by_remainder() {
        let kp = UniformKPartition::new(4);
        // r = 0: exact, no free agents.
        let sig = kp.stable_signature(8);
        let mut counts = vec![0u64; kp.num_states()];
        for i in 1..=4 {
            counts[kp.g(i).index()] = 2;
        }
        assert!(sig.matches(&counts));
        // r = 1: one free agent, either flavour.
        let sig = kp.stable_signature(9);
        counts[kp.initial().index()] = 1;
        assert!(sig.matches(&counts));
        counts[kp.initial().index()] = 0;
        counts[kp.initial_prime().index()] = 1;
        assert!(sig.matches(&counts));
        counts[kp.initial().index()] = 1; // two free agents: no
        assert!(!sig.matches(&counts));
        // r = 2: an m2 agent, no free agents.
        let sig = kp.stable_signature(10);
        let mut counts = vec![0u64; kp.num_states()];
        counts[kp.g(1).index()] = 3;
        for i in 2..=4 {
            counts[kp.g(i).index()] = 2;
        }
        counts[kp.m(2).index()] = 1;
        assert!(sig.matches(&counts));
    }
}
