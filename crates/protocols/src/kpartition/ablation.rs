//! The "basic strategy" ablation: Algorithm 1 with rules 1–7 only.
//!
//! §3.2 of the paper motivates the `D` states with a failure scenario:
//! without rules 8–10, several chain-builder (`m`) agents can start
//! concurrently and between them absorb every free agent, leaving partial
//! chains that can never complete. The resulting configuration is *silent*
//! — no rule applies — but not a uniform k-partition: low-numbered groups
//! (`g1, g2, …`) are overfull and high-numbered groups are empty.
//!
//! [`BasicStrategyKPartition`] implements exactly that truncated rule set
//! (on the state set `I ∪ G ∪ M`, `2k` states) so the failure is
//! measurable. The experiment harness (`ablation_d_states`) reports, per
//! `(n, k)`, how often random executions end in a deadlocked non-uniform
//! configuration, and the worst group imbalance observed — the
//! quantitative counterpart of the paper's Figure 2 narrative.

use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::spec::ProtocolSpec;

/// Algorithm 1 truncated to rules 1–7 (no chain abort/unwind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasicStrategyKPartition {
    k: usize,
}

impl BasicStrategyKPartition {
    /// Basic strategy for `k ≥ 3` groups. (For `k = 2` the basic strategy
    /// and the full protocol coincide; use
    /// [`crate::kpartition::UniformKPartition`].)
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "the basic-strategy ablation is defined for k >= 3");
        BasicStrategyKPartition { k }
    }

    /// Number of groups `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `|Q| = 2k` (the full protocol's `3k − 2` minus the `k − 2` states
    /// of `D`).
    pub fn num_states(&self) -> usize {
        2 * self.k
    }

    /// The designated initial state.
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// The `initial'` state.
    pub fn initial_prime(&self) -> StateId {
        StateId(1)
    }

    /// Settled-group state `g_i`, `1 ≤ i ≤ k`.
    pub fn g(&self, i: usize) -> StateId {
        assert!((1..=self.k).contains(&i));
        StateId((2 + i - 1) as u16)
    }

    /// Chain-builder state `m_i`, `2 ≤ i ≤ k − 1`.
    pub fn m(&self, i: usize) -> StateId {
        assert!((2..=self.k - 1).contains(&i));
        StateId((2 + self.k + i - 2) as u16)
    }

    /// Build the truncated protocol description.
    pub fn spec(&self) -> ProtocolSpec {
        let k = self.k;
        let mut spec = ProtocolSpec::new(format!("basic-strategy-{k}-partition"));
        let ini = spec.add_state("initial", 1);
        let inip = spec.add_state("initial'", 1);
        for i in 1..=k {
            spec.add_state(format!("g{i}"), i as u16);
        }
        for i in 2..=k - 1 {
            spec.add_state(format!("m{i}"), i as u16);
        }
        spec.set_initial(ini);
        let flip = |s: StateId| if s == ini { inip } else { ini };

        spec.add_rule(ini, ini, inip, inip);
        spec.add_rule(inip, inip, ini, ini);
        spec.add_rule_symmetric(ini, inip, self.g(1), self.m(2));
        for x in [ini, inip] {
            for i in 1..=k {
                spec.add_rule_symmetric(self.g(i), x, self.g(i), flip(x));
            }
        }
        for i in 2..=k.saturating_sub(2) {
            for x in [ini, inip] {
                spec.add_rule_symmetric(x, self.m(i), self.g(i), self.m(i + 1));
            }
        }
        for x in [ini, inip] {
            spec.add_rule_symmetric(x, self.m(k - 1), self.g(k - 1), self.g(k));
        }
        // Rules 8–10 deliberately absent: (m_i, m_j) is a null interaction.
        spec
    }

    /// Compile into the engine's dense-table form.
    pub fn compile(&self) -> CompiledProtocol {
        let p = self
            .spec()
            .compile()
            .expect("basic-strategy spec is internally consistent");
        debug_assert!(p.is_symmetric());
        debug_assert_eq!(p.num_states(), self.num_states());
        p
    }

    /// Whether `counts` is a *deadlocked* configuration: at least one
    /// chain-builder remains but no free agents, so no rule can ever fire
    /// again (the failure mode of §3.2).
    pub fn is_deadlocked(&self, counts: &[u64]) -> bool {
        let free: u64 = counts[self.initial().index()] + counts[self.initial_prime().index()];
        let builders: u64 = (2..=self.k - 1).map(|i| counts[self.m(i).index()]).sum();
        free == 0 && builders > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::{GreedyPriorityScheduler, UniformRandomScheduler};
    use pp_engine::simulator::Simulator;
    use pp_engine::stability::{Silent, StabilityCriterion};

    #[test]
    fn m_collision_is_null() {
        let bp = BasicStrategyKPartition::new(4);
        let p = bp.compile();
        assert!(p.is_identity(bp.m(2), bp.m(3)));
        assert!(p.is_identity(bp.m(2), bp.m(2)));
    }

    /// Deterministically reproduce §3.2's failure (n = 12, k = 4): four
    /// chains start, each recruits two agents, and the population
    /// deadlocks at g1×4 g2×4 m3×4.
    #[test]
    fn adversarial_schedule_deadlocks() {
        let bp = BasicStrategyKPartition::new(4);
        let p = bp.compile();
        let mut pop = CountPopulation::new(&p, 12);
        // Priority: start chains first (rule 5 via flips), then feed each
        // chain exactly up to m3 — encoded as "prefer interactions that
        // advance the lowest chain"; a greedy schedule that always performs
        // some enabled non-null interaction suffices here because with this
        // priority order chains are created before being fed.
        let ini = bp.initial();
        let inip = bp.initial_prime();
        let m2 = bp.m(2);
        let m3 = bp.m(3);
        let mut sched = GreedyPriorityScheduler::new(
            move |a: StateId, b: StateId| {
                // Highest: create new chains. Then advance m2 -> m3.
                if (a, b) == (ini, inip) || (a, b) == (inip, ini) {
                    3
                } else if (a == m2 && (b == ini || b == inip))
                    || (b == m2 && (a == ini || a == inip))
                {
                    2
                } else if (a, b) == (ini, ini) || (a, b) == (inip, inip) {
                    1
                } else {
                    0
                }
            },
            1,
        );
        let res = Simulator::new(&p).run(&mut pop, &mut sched, &Silent, 10_000);
        assert!(res.is_ok(), "greedy schedule should reach a silent sink");
        assert!(bp.is_deadlocked(pop.counts()));
        assert_eq!(pop.count(bp.g(1)), 4);
        assert_eq!(pop.count(bp.g(2)), 4);
        assert_eq!(pop.count(m3), 4);
        assert_eq!(pop.count(bp.g(4)), 0);
        // Non-uniform: group 4 is empty while group 1 has 4 agents.
        let sizes = pop.group_sizes(&p);
        assert_eq!(sizes, vec![4, 4, 4, 0]);
    }

    /// Under the uniform random scheduler the basic strategy always ends
    /// in a silent configuration — sometimes uniform, sometimes
    /// deadlocked. Either way it terminates, and when it deadlocks group
    /// sizes are imbalanced by more than 1.
    #[test]
    fn random_runs_end_silent_and_sometimes_fail() {
        let bp = BasicStrategyKPartition::new(4);
        let p = bp.compile();
        let mut deadlocks = 0;
        let trials = 40;
        for seed in 0..trials {
            let mut pop = CountPopulation::new(&p, 12);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run(&mut pop, &mut sched, &Silent, 100_000_000)
                .expect("basic strategy always reaches a silent configuration");
            if bp.is_deadlocked(pop.counts()) {
                deadlocks += 1;
                let sizes = pop.group_sizes(&p);
                let mx = *sizes.iter().max().unwrap();
                let mn = *sizes.iter().min().unwrap();
                assert!(mx - mn > 1, "deadlock but balanced? {sizes:?}");
            } else {
                assert_eq!(pop.group_sizes(&p), vec![3, 3, 3, 3]);
            }
        }
        // With n = 12, k = 4 deadlocks are common; at least one in 40
        // seeded trials is a safe deterministic expectation.
        assert!(
            deadlocks > 0,
            "expected at least one deadlock in {trials} trials"
        );
    }

    #[test]
    fn silent_check_matches_deadlock_predicate() {
        let bp = BasicStrategyKPartition::new(5);
        let p = bp.compile();
        // g1 g2 m3 ×3 with no free agents: silent and deadlocked.
        let mut counts = vec![0u64; p.num_states()];
        counts[bp.g(1).index()] = 3;
        counts[bp.g(2).index()] = 3;
        counts[bp.m(3).index()] = 3;
        assert!(Silent.is_stable(&p, &counts));
        assert!(bp.is_deadlocked(&counts));
        // Add one free agent: no longer silent (rule 6 applies).
        counts[bp.initial().index()] = 1;
        assert!(!Silent.is_stable(&p, &counts));
        assert!(!bp.is_deadlocked(&counts));
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn k2_rejected() {
        BasicStrategyKPartition::new(2);
    }
}
