//! The 4-state uniform bipartition protocol (Yasumi et al., OPODIS 2017).
//!
//! The paper's prior work: a symmetric protocol with designated initial
//! states that divides the population into two groups of equal size (±1)
//! under global fairness, using four states — proved there to be both
//! necessary and sufficient for symmetric protocols. The mechanism is the
//! pairing trick the k-partition paper's introduction describes: whenever
//! an `initial` agent meets an `initial'` agent, the two settle into
//! *different* groups simultaneously, so group sizes stay equal by
//! construction. (This is precisely why the construction does not extend
//! beyond `k = 2`: a single interaction involves only two agents and
//! cannot populate `k > 2` groups at once — the motivation for the
//! k-partition protocol's chain mechanism.)
//!
//! The paper states that its Algorithm 1 instantiated at `k = 2` *is* this
//! protocol; `tests::matches_kpartition_at_k2` verifies the transition
//! tables agree state-for-state.

use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::Signature;

/// The 4-state uniform bipartition protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniformBipartition;

impl UniformBipartition {
    /// The protocol handle.
    pub fn new() -> Self {
        UniformBipartition
    }

    /// The designated initial state.
    pub fn initial(&self) -> StateId {
        StateId(0)
    }

    /// The `initial'` state.
    pub fn initial_prime(&self) -> StateId {
        StateId(1)
    }

    /// Settled member of group 1.
    pub fn one(&self) -> StateId {
        StateId(2)
    }

    /// Settled member of group 2.
    pub fn two(&self) -> StateId {
        StateId(3)
    }

    /// Build the protocol description.
    pub fn spec(&self) -> ProtocolSpec {
        let mut spec = ProtocolSpec::new("uniform-bipartition");
        let ini = spec.add_state("initial", 1);
        let inip = spec.add_state("initial'", 1);
        let one = spec.add_state("g1", 1);
        let two = spec.add_state("g2", 2);
        spec.set_initial(ini);
        let flip = |s: StateId| if s == ini { inip } else { ini };
        spec.add_rule(ini, ini, inip, inip);
        spec.add_rule(inip, inip, ini, ini);
        spec.add_rule_symmetric(ini, inip, one, two);
        for x in [ini, inip] {
            for g in [one, two] {
                spec.add_rule_symmetric(g, x, g, flip(x));
            }
        }
        spec
    }

    /// Compile into the engine's dense-table form.
    pub fn compile(&self) -> CompiledProtocol {
        self.spec()
            .compile()
            .expect("bipartition spec is internally consistent")
    }

    /// Stable-configuration signature for population size `n`: `⌊n/2⌋`
    /// agents in each group, plus one perpetually flipping free agent when
    /// `n` is odd.
    pub fn stable_signature(&self, n: u64) -> Signature {
        let q = n / 2;
        if n % 2 == 0 {
            Signature::exact(vec![0, 0, q, q])
        } else {
            Signature::new(
                vec![None, None, Some(q), Some(q)],
                vec![(vec![self.initial(), self.initial_prime()], 1)],
            )
        }
    }

    /// Group sizes at stability: `⌈n/2⌉` and `⌊n/2⌋`.
    pub fn expected_group_sizes(&self, n: u64) -> Vec<u64> {
        vec![n - n / 2, n / 2]
    }
}

/// A 3-state **asymmetric** bipartition protocol — what giving up
/// symmetry buys.
///
/// The paper restricts itself to symmetric protocols, where two agents in
/// the same state must leave an interaction in the same state; that is
/// why `initial'` exists (4 states total, proved optimal for the
/// symmetric class in Yasumi et al. 2017). Dropping the restriction, one
/// interaction can split a same-state pair directly:
///
/// ```text
/// (initial, initial) -> (g1, g2)
/// ```
///
/// Three states, trivially correct (every pair of free agents settles
/// one-to-each-group; an odd population leaves one free agent, counted in
/// group 1) — demonstrating that the symmetry requirement costs exactly
/// one state at `k = 2`. The engine supports asymmetric protocols, and
/// the model checker verifies this one in the test suite.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsymmetricBipartition;

impl AsymmetricBipartition {
    /// The protocol handle.
    pub fn new() -> Self {
        AsymmetricBipartition
    }

    /// Build and compile the 3-state protocol.
    pub fn compile(&self) -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("asymmetric-bipartition");
        let ini = spec.add_state("initial", 1);
        let one = spec.add_state("g1", 1);
        let two = spec.add_state("g2", 2);
        spec.set_initial(ini);
        spec.add_rule(ini, ini, one, two);
        spec.compile()
            .expect("asymmetric bipartition spec is internally consistent")
    }

    /// Stable signature: all agents settled, plus the odd leftover.
    pub fn stable_signature(&self, n: u64) -> Signature {
        let q = n / 2;
        Signature::exact(vec![n % 2, q, q])
    }

    /// Group sizes at stability: `⌈n/2⌉` and `⌊n/2⌋`.
    pub fn expected_group_sizes(&self, n: u64) -> Vec<u64> {
        vec![n - n / 2, n / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpartition::UniformKPartition;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;

    #[test]
    fn matches_kpartition_at_k2() {
        let bi = UniformBipartition::new().compile();
        let k2 = UniformKPartition::new(2).compile();
        assert_eq!(bi.num_states(), k2.num_states());
        for p in bi.states() {
            assert_eq!(bi.state_name(p), k2.state_name(p));
            assert_eq!(bi.group_of(p), k2.group_of(p));
            for q in bi.states() {
                assert_eq!(
                    bi.delta(p, q),
                    k2.delta(p, q),
                    "tables differ at ({}, {})",
                    bi.state_name(p),
                    bi.state_name(q)
                );
            }
        }
    }

    #[test]
    fn four_states_symmetric() {
        let p = UniformBipartition::new().compile();
        assert_eq!(p.num_states(), 4);
        assert!(p.is_symmetric());
    }

    #[test]
    fn bipartitions_even_and_odd_populations() {
        let bi = UniformBipartition::new();
        let p = bi.compile();
        for n in [4u64, 9, 16, 31] {
            let mut pop = CountPopulation::new(&p, n);
            let mut sched = UniformRandomScheduler::from_seed(n);
            let sig = bi.stable_signature(n);
            Simulator::new(&p)
                .run(&mut pop, &mut sched, &sig, 100_000_000)
                .unwrap();
            assert_eq!(pop.group_sizes(&p), bi.expected_group_sizes(n), "n = {n}");
        }
    }

    #[test]
    fn asymmetric_three_states_suffice() {
        let ab = AsymmetricBipartition::new();
        let p = ab.compile();
        assert_eq!(p.num_states(), 3);
        assert!(!p.is_symmetric());
        for n in [2u64, 4, 9, 30] {
            let mut pop = CountPopulation::new(&p, n);
            let mut sched = UniformRandomScheduler::from_seed(n);
            Simulator::new(&p)
                .run(&mut pop, &mut sched, &ab.stable_signature(n), 10_000_000)
                .unwrap();
            assert_eq!(pop.group_sizes(&p), ab.expected_group_sizes(n), "n = {n}");
        }
    }

    #[test]
    fn asymmetric_solves_n2_where_symmetric_cannot() {
        // The symmetric impossibility at n = 2 (two agents in lockstep)
        // vanishes once asymmetric transitions are allowed.
        let ab = AsymmetricBipartition::new();
        let p = ab.compile();
        let mut pop = CountPopulation::new(&p, 2);
        let mut sched = UniformRandomScheduler::from_seed(1);
        let res = Simulator::new(&p)
            .run(&mut pop, &mut sched, &ab.stable_signature(2), 1000)
            .unwrap();
        assert_eq!(res.interactions, 1);
        assert_eq!(pop.group_sizes(&p), vec![1, 1]);
    }

    #[test]
    fn n2_cannot_bipartition() {
        // Two agents in a symmetric protocol evolve in lockstep: the
        // signature is unreachable (the paper's reason for assuming n ≥ 3).
        let bi = UniformBipartition::new();
        let p = bi.compile();
        let mut pop = CountPopulation::new(&p, 2);
        let mut sched = UniformRandomScheduler::from_seed(5);
        let sig = bi.stable_signature(2);
        let res = Simulator::new(&p).run(&mut pop, &mut sched, &sig, 10_000);
        assert!(res.is_err());
        // Still flipping in lockstep: both agents share one state.
        let counts = pop.counts();
        assert!(counts[0] == 2 || counts[1] == 2, "{counts:?}");
    }
}
