//! Stabilisation-time *distributions* (the paper reports only means).
//!
//! For a few representative cells, prints the full histogram of
//! interactions-to-stability across trials, plus summary quantiles. The
//! distributions are right-skewed — a run that spawns many concurrent
//! chains pays for every rule-8 collision and unwind — which is why the
//! paper's mean curves are noticeably above the medians reported here.
//!
//! Output: `results/distributions.csv` with one row per (k, n, trial).

use pp_analysis::experiments::kpartition_cell;
use pp_analysis::histogram::{sparkline, Histogram};
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;

fn main() {
    common::banner(
        "Distributions",
        "full spread of interactions-to-stability (the paper plots means only)",
    );
    let trials = common::trials().max(100);
    let seed = common::master_seed();

    let mut csv = Table::new(vec!["k", "n", "trial", "interactions"]);
    let mut summary = Table::new(vec![
        "k", "n", "mean", "median", "min", "max", "max/median", "shape",
    ]);

    for (k, n) in [(3usize, 60u64), (4, 60), (6, 60), (4, 240)] {
        let cell = kpartition_cell(k, n, trials, seed);
        let s = cell.summary();
        let samples: Vec<f64> = cell.batch.interactions.iter().map(|&x| x as f64).collect();
        let hist = Histogram::fit(&samples, 12);
        println!("### k = {k}, n = {n} ({} trials)\n", samples.len());
        println!("{}", hist.to_ascii(40));
        summary.row(vec![
            k.to_string(),
            n.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.median),
            fmt_f64(s.min),
            fmt_f64(s.max),
            format!("{:.1}", s.max / s.median),
            sparkline(hist.bins()),
        ]);
        for (i, &x) in cell.batch.interactions.iter().enumerate() {
            csv.row(vec![
                k.to_string(),
                n.to_string(),
                i.to_string(),
                x.to_string(),
            ]);
        }
    }

    println!("{}", summary.to_markdown());
    println!(
        "Right skew throughout: means sit above medians and worst cases run \
         several times the typical — concurrent chain collisions are the tail."
    );
    let path = common::results_path("distributions.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
