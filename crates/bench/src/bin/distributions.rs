//! Stabilisation-time distributions: the full spread behind the paper's
//! mean curves (right-skewed by concurrent chain collisions).
//!
//! Thin wrapper over the `distributions` sweep plan
//! (`pp_sweep::plans::distributions`): equivalent to `pp-sweep run
//! distributions`, so runs are cached, resumable, and parallel across
//! cells. See that module for the cell grid and CSV schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("distributions");
}
