//! Convergence trajectories: how `#g_k` (completed groupings) ratchets up
//! over an execution — the dynamic behind Lemma 4 and the paper's
//! Figure 4 decomposition, viewed as a time series.
//!
//! For each k we run one seeded execution at n = 240, sample the
//! configuration periodically, and print an ASCII profile of `#g_k`
//! (monotone, by Lemma 4 / the `gk_count_is_monotone` property) together
//! with the count of in-flight chain builders (m-states) and demolishers
//! (d-states). The CSV contains the full sampled series.
//!
//! Output: `results/trajectory.csv` with columns
//! `k,interaction,gk,builders,demolishers,free`.

use pp_analysis::table::Table;
use pp_bench::common;
use pp_engine::observer::TrajectorySampler;
use pp_engine::population::CountPopulation;
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::Simulator;
use pp_protocols::kpartition::UniformKPartition;

fn main() {
    common::banner(
        "Trajectory",
        "ratcheting of #g_k over one execution (Lemma 4 in motion)",
    );
    let seed = common::master_seed();
    let n = 240u64;

    let mut csv = Table::new(vec![
        "k",
        "interaction",
        "gk",
        "builders",
        "demolishers",
        "free",
    ]);

    for k in [4usize, 6, 8] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed ^ k as u64);
        let mut sampler = TrajectorySampler::every(256);
        let run = Simulator::new(&proto)
            .run_observed(
                &mut pop,
                &mut sched,
                &kp.stable_signature(n),
                kp.interaction_budget(n),
                &mut sampler,
            )
            .expect("stabilises");

        let target = n / k as u64;
        println!(
            "k = {k}: stabilised at {} interactions; #g_k target {target}",
            run.interactions
        );
        // ASCII ratchet: one row per ~1/20th of the run.
        let samples = sampler.samples();
        let stride = (samples.len() / 20).max(1);
        for (t, counts) in samples.iter().step_by(stride) {
            let gk = counts[kp.g(k).index()];
            let builders: u64 = (2..k).map(|i| counts[kp.m(i).index()]).sum();
            let demols: u64 = (1..k - 1).map(|i| counts[kp.d(i).index()]).sum();
            let free =
                counts[kp.initial().index()] + counts[kp.initial_prime().index()];
            let bar = "#".repeat((gk * 40 / target.max(1)) as usize);
            println!("  {t:>9} |{bar:<40}| gk={gk:<3} m={builders:<3} d={demols:<3} free={free}");
        }
        for (t, counts) in samples {
            let gk = counts[kp.g(k).index()];
            let builders: u64 = (2..k).map(|i| counts[kp.m(i).index()]).sum();
            let demols: u64 = (1..k - 1).map(|i| counts[kp.d(i).index()]).sum();
            let free =
                counts[kp.initial().index()] + counts[kp.initial_prime().index()];
            csv.row(vec![
                k.to_string(),
                t.to_string(),
                gk.to_string(),
                builders.to_string(),
                demols.to_string(),
                free.to_string(),
            ]);
        }
        println!();
    }

    let path = common::results_path("trajectory.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
