//! Convergence trajectories: the ratcheting of `#g_k` over one sampled
//! execution per `k` — Lemma 4 in motion.
//!
//! Thin wrapper over the `trajectory` sweep plan
//! (`pp_sweep::plans::trajectory`): equivalent to `pp-sweep run
//! trajectory`, so the sampled runs are cached and the ASCII/CSV output
//! re-renders from the store. See that module for the cell wiring and CSV
//! schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("trajectory");
}
