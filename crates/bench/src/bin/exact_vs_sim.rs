//! Cross-validation: exact expected stabilisation times (Markov-chain
//! first-step analysis on the full configuration graph) against the
//! simulation harness's sample means, on instances small enough to solve
//! exactly.
//!
//! This is the strongest possible check of the reproduction pipeline: if
//! the simulator's sampling, transition table, or stability criterion
//! were off by anything, sample means would drift from the solved
//! expectation. Agreement is asserted at 4 standard errors.
//!
//! Output: markdown table + `results/exact_vs_sim.csv`.

#![forbid(unsafe_code)]

use pp_analysis::experiments::kpartition_cell;
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;
use pp_protocols::kpartition::UniformKPartition;
use pp_verify::hitting::{hitting_moments, SolverOptions};
use pp_verify::ConfigGraph;

fn main() {
    common::banner(
        "Exact vs simulated",
        "Markov-chain expectations vs sample means (paper's metric, solved exactly)",
    );
    let trials = common::trials().max(100);
    let seed = common::master_seed();

    let mut table = Table::new(vec![
        "k",
        "n",
        "configs",
        "optimal",
        "exact E[T]",
        "exact std",
        "sim mean",
        "sim std",
        "sim sem",
        "z-score",
    ]);

    for (k, n) in [
        (2usize, 4u64),
        (2, 8),
        (2, 12),
        (3, 6),
        (3, 9),
        (3, 12),
        (4, 8),
        (4, 12),
        (5, 10),
    ] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let graph = ConfigGraph::explore(&proto, n, 5_000_000).expect("graph fits");
        let sig = kp.stable_signature(n);
        let exact = hitting_moments(
            &graph,
            |cfg| {
                let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                sig.matches(&counts)
            },
            SolverOptions::default(),
        )
        .expect("solvable");

        let optimal = graph
            .min_interactions_to(|cfg| {
                let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                sig.matches(&counts)
            })
            .expect("stable set reachable");

        let cell = kpartition_cell(k, n, trials, seed);
        let s = cell.summary();
        let z = (s.mean - exact.mean) / s.sem.max(1e-12);
        table.row(vec![
            k.to_string(),
            n.to_string(),
            graph.num_configs().to_string(),
            optimal.to_string(),
            format!("{:.3}", exact.mean),
            format!("{:.3}", exact.std_dev),
            fmt_f64(s.mean),
            fmt_f64(s.std_dev),
            fmt_f64(s.sem),
            format!("{z:+.2}"),
        ]);
        assert!(
            z.abs() < 4.0,
            "k={k} n={n}: simulation drifted from the exact expectation (z = {z:.2})"
        );
    }

    println!("{}", table.to_markdown());
    println!(
        "All |z| < 4: the simulator's sample means are statistically \
         indistinguishable from the exact Markov-chain expectations."
    );
    let path = common::results_path("exact_vs_sim.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
