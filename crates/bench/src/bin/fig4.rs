//! Figure 4 reproduction: decomposition of the interaction count into
//! per-grouping increments `NI'_i` plus the remainder tail.
//!
//! Thin wrapper over the `fig4` sweep plan (`pp_sweep::plans::fig4`):
//! equivalent to `pp-sweep run fig4`, so runs are cached, resumable, and
//! parallel across cells. See that module for the cell grid and CSV
//! schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("fig4");
}
