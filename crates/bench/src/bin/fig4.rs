//! Figure 4 reproduction: decomposition of the interaction count into the
//! cost of each *i-th grouping* (`NI'_i = NI_i − NI_{i−1}`, where `NI_i`
//! is the interaction at which `#g_k` first reaches `i`), plus the tail
//! spent settling the `n mod k` leftover agents.
//!
//! The paper's observations to look for:
//! * `NI'_1 < NI'_2 < …` — each successive grouping costs more, because
//!   fewer free agents remain to feed the chain;
//! * for `n = c·k + j` with `j ∈ {2, …, k+1}` the cost of the final
//!   `(c+1)`-th grouping climbs steeply with `j` and dominates the total
//!   near `j ∈ {k, k+1}` (i.e. `n mod k ∈ {0, 1}`) — the source of
//!   Figure 3's sawtooth.
//!
//! Output: per `k`, a markdown table for one period of `n` around the
//! paper's emphasised region, and `results/fig4_k<k>.csv` with every
//! `(n, segment)` mean over the full Figure 3 grid.

use pp_analysis::experiments::kpartition_grouping_cell;
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;

fn main() {
    common::banner(
        "Figure 4",
        "interactions per i-th grouping (stacked decomposition)",
    );
    let trials = common::trials();
    let seed = common::master_seed();

    for k in [4usize, 6, 8] {
        let ku = k as u64;
        let mut csv = Table::new(vec!["k", "n", "segment", "mean", "sem"]);
        // Full grid for the CSV (matching fig3's range)…
        let ns: Vec<u64> = ((ku + 2)..=96).collect();
        // …and one highlighted period 4k+2 ..= 5k+1 for the console.
        let show: Vec<u64> = ((4 * ku + 2)..=(5 * ku + 1)).collect();
        let mut shown = Table::new(vec![
            "n", "groupings", "NI'_1", "NI'_last", "tail", "total",
        ]);
        for &n in &ns {
            let cell = kpartition_grouping_cell(k, n, trials, seed);
            let b = &cell.breakdown;
            for (i, s) in b.increments.iter().enumerate() {
                csv.row(vec![
                    k.to_string(),
                    n.to_string(),
                    format!("NI'_{}", i + 1),
                    fmt_f64(s.mean),
                    fmt_f64(s.sem),
                ]);
            }
            csv.row(vec![
                k.to_string(),
                n.to_string(),
                "tail".to_string(),
                fmt_f64(b.tail.mean),
                fmt_f64(b.tail.sem),
            ]);
            if show.contains(&n) {
                shown.row(vec![
                    n.to_string(),
                    b.increments.len().to_string(),
                    fmt_f64(b.increments.first().map_or(0.0, |s| s.mean)),
                    fmt_f64(b.increments.last().map_or(0.0, |s| s.mean)),
                    fmt_f64(b.tail.mean),
                    fmt_f64(b.mean_total()),
                ]);
            }
        }
        println!(
            "### k = {k} — one period n = {}..{} (NI'_last dominating near n mod k ∈ {{0,1}})\n",
            4 * ku + 2,
            5 * ku + 1
        );
        println!("{}", shown.to_markdown());
        let path = common::results_path(&format!("fig4_k{k}.csv"));
        csv.write_csv(&path).expect("write csv");
        println!("wrote {}\n", path.display());
    }
}
