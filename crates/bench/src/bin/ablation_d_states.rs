//! Ablation: the §3.2 "basic strategy" (rules 1–7, no D states) vs the
//! full protocol — deadlock rate and imbalance of silent-but-wrong
//! outcomes.
//!
//! Thin wrapper over the `ablation_d_states` sweep plan
//! (`pp_sweep::plans::ablation_d_states`): equivalent to `pp-sweep run
//! ablation_d_states`, so runs are cached, resumable, and parallel across
//! cells. See that module for the cell grid and CSV schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("ablation_d_states");
}
