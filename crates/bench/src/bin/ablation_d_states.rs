//! Ablation: what the `D` states buy (paper §3.2, Figure 2's narrative,
//! quantified).
//!
//! Runs the "basic strategy" protocol (rules 1–7, no chain abort/unwind)
//! under the uniform random scheduler. Without rules 8–10 the population
//! can deadlock with several partial chains and no free agents; the run
//! then ends in a *silent but non-uniform* configuration. For each
//! `(n, k)` we report the deadlock rate, the mean/max group imbalance of
//! failed runs, and — for context — the cost of the full protocol on the
//! same cell.
//!
//! Output: markdown table + `results/ablation_d_states.csv`.

use pp_analysis::experiments::kpartition_cell;
use pp_analysis::runner::{run_trials_full, TrialConfig};
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;
use pp_engine::population::CountPopulation;
use pp_engine::population::Population;
use pp_engine::seeds;
use pp_engine::stability::Silent;
use pp_protocols::kpartition::ablation::BasicStrategyKPartition;

fn main() {
    common::banner(
        "Ablation",
        "basic strategy (rules 1-7) vs full protocol: deadlock rate and imbalance",
    );
    let trials = common::trials();
    let seed = common::master_seed();

    let cells: Vec<(usize, u64)> = vec![(3, 12), (4, 12), (4, 24), (5, 20), (6, 24), (8, 32)];
    let mut table = Table::new(vec![
        "k",
        "n",
        "deadlock rate",
        "mean imbalance (failed)",
        "max imbalance",
        "mean interactions (basic)",
        "mean interactions (full)",
    ]);

    for &(k, n) in &cells {
        let bp = BasicStrategyKPartition::new(k);
        let proto = bp.compile();
        let cfg = TrialConfig {
            trials,
            master_seed: seeds::derive_labelled(seed, k as u64, n),
            max_interactions: 1_000_000_000,
        };
        let outcomes = run_trials_full(&proto, n, &Silent, cfg);

        let mut deadlocks = 0usize;
        let mut imbalance_sum = 0u64;
        let mut imbalance_max = 0u64;
        let mut interactions_sum = 0u64;
        let mut completed = 0usize;
        for o in &outcomes {
            if let Some(x) = o.interactions {
                interactions_sum += x;
                completed += 1;
            }
            let pop = CountPopulation::from_counts(o.final_counts.clone());
            let sizes = pop.group_sizes(&proto);
            let imb = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
            if bp.is_deadlocked(o.final_counts.as_slice()) {
                deadlocks += 1;
                imbalance_sum += imb;
                imbalance_max = imbalance_max.max(imb);
            } else {
                assert!(imb <= 1, "non-deadlocked basic run must be uniform");
            }
        }
        let full = kpartition_cell(k, n, trials, seed);

        table.row(vec![
            k.to_string(),
            n.to_string(),
            format!("{:.2}", deadlocks as f64 / outcomes.len() as f64),
            if deadlocks > 0 {
                fmt_f64(imbalance_sum as f64 / deadlocks as f64)
            } else {
                "-".to_string()
            },
            imbalance_max.to_string(),
            if completed > 0 {
                fmt_f64(interactions_sum as f64 / completed as f64)
            } else {
                "-".to_string()
            },
            fmt_f64(full.summary().mean),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "A non-zero deadlock rate confirms §3.2: rules 1-7 alone do not solve uniform \
         k-partition; the D states (rules 8-10) are what make every globally fair \
         execution stabilise uniformly."
    );
    let path = common::results_path("ablation_d_states.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
