//! Figure 5 reproduction: mean interactions vs `n = 120·n'` for
//! `k ∈ {3,4,5,6}` with `n mod k = 0` — superlinear but subexponential.
//!
//! Thin wrapper over the `fig5` sweep plan (`pp_sweep::plans::fig5`):
//! equivalent to `pp-sweep run fig5`, so runs are cached, resumable, and
//! parallel across cells. See that module for the cell grid and CSV
//! schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("fig5");
}
