//! Figure 5 reproduction: mean interactions vs `n = 120·n'`
//! (`n' ∈ 1..=8`) for `k ∈ {3, 4, 5, 6}`, with `n mod k = 0` throughout
//! to suppress the remainder sawtooth of Figure 3.
//!
//! The paper's observation: growth in `n` is "more than linear but less
//! than exponential". We print the measured means, the successive growth
//! ratios (decaying toward 1 ⇒ subexponential), and a power-law fit
//! `mean ∝ n^b` per `k` (finite b with high r² ⇒ polynomial).
//!
//! Output: a `k × n` markdown matrix, the per-`k` fits, and
//! `results/fig5.csv` with `k,n,trials,mean,std,sem,censored`.

use pp_analysis::experiments::kpartition_cell;
use pp_analysis::fit;
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;

fn main() {
    common::banner(
        "Figure 5",
        "interactions vs n = 120·n' for k in {3,4,5,6} (n mod k = 0)",
    );
    let trials = common::trials();
    let seed = common::master_seed();
    let ns: Vec<u64> = (1..=8).map(|np| 120 * np).collect();
    let ks = [3usize, 4, 5, 6];

    let mut csv = Table::new(vec!["k", "n", "trials", "mean", "std", "sem", "censored"]);
    let mut matrix = Table::new(
        std::iter::once("k / n".to_string())
            .chain(ns.iter().map(|n| n.to_string()))
            .collect::<Vec<_>>(),
    );
    let mut fits = Table::new(vec!["k", "power-law exponent b", "r^2"]);

    for &k in &ks {
        let mut row = vec![k.to_string()];
        let mut points: Vec<(f64, f64)> = Vec::new();
        for &n in &ns {
            let cell = kpartition_cell(k, n, trials, seed);
            let s = cell.summary();
            row.push(fmt_f64(s.mean));
            points.push((n as f64, s.mean));
            csv.row(vec![
                k.to_string(),
                n.to_string(),
                s.count.to_string(),
                fmt_f64(s.mean),
                fmt_f64(s.std_dev),
                fmt_f64(s.sem),
                cell.batch.censored.to_string(),
            ]);
        }
        matrix.row(row);
        let (b, r2) = fit::power_law_exponent(&points);
        fits.row(vec![k.to_string(), fmt_f64(b), fmt_f64(r2)]);
        let ratios = fit::growth_ratios(&points.iter().map(|p| p.1).collect::<Vec<_>>());
        println!(
            "k = {k}: growth ratios per n-doubling step {:?}",
            ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
        );
    }

    println!("\n### Mean interactions (rows: k, columns: n)\n");
    println!("{}", matrix.to_markdown());
    println!("### Power-law fits mean ∝ n^b (superlinear, subexponential expected)\n");
    println!("{}", fits.to_markdown());
    let path = common::results_path("fig5.csv");
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
