//! Baseline comparison: the paper's protocol vs the two alternatives its
//! introduction discusses.
//!
//! * **Composed bipartition** (`k = 2^h`): the strawman "repeat
//!   bipartition h times". Same `3k − 2` state count, but the naive
//!   composition loses exact uniformity when cohort sizes go odd —
//!   measured here as the worst group imbalance over trials.
//! * **Approximate k-partition** (stand-in for Delporte-Gallet et al.,
//!   every group ≥ `n/(2k)`): faster to stabilise, much weaker
//!   uniformity.
//!
//! For each protocol and `(k, n)` cell we report state count, mean
//! interactions to its own stability criterion, mean and max group
//! imbalance (`max − min` group size), and the `n/(2k)` guarantee check.
//!
//! Output: markdown table + `results/baselines.csv`.

use pp_analysis::runner::{run_trials_full, TrialConfig, TrialOutcome};
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;
use pp_engine::population::{CountPopulation, Population};
use pp_engine::protocol::CompiledProtocol;
use pp_engine::seeds;
use pp_engine::stability::StabilityCriterion;
use pp_protocols::hierarchical::HierarchicalPartition;
use pp_protocols::kpartition::UniformKPartition;

struct Row {
    protocol: &'static str,
    k: usize,
    n: u64,
    states: usize,
    mean_interactions: f64,
    mean_imbalance: f64,
    max_imbalance: u64,
    min_group_ok: bool,
}

fn measure<C: StabilityCriterion + Sync>(
    name: &'static str,
    proto: &CompiledProtocol,
    criterion: &C,
    k: usize,
    n: u64,
    trials: usize,
    seed: u64,
) -> Row {
    let cfg = TrialConfig {
        trials,
        master_seed: seeds::derive_labelled(seed, k as u64, n),
        max_interactions: 1_000_000_000_000,
    };
    let outcomes: Vec<TrialOutcome> = run_trials_full(proto, n, criterion, cfg);
    let mut sum_inter = 0u64;
    let mut completed = 0usize;
    let mut sum_imb = 0u64;
    let mut max_imb = 0u64;
    let mut min_group_ok = true;
    for o in &outcomes {
        if let Some(x) = o.interactions {
            sum_inter += x;
            completed += 1;
        }
        let pop = CountPopulation::from_counts(o.final_counts.clone());
        let sizes = pop.group_sizes(proto);
        let imb = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
        sum_imb += imb;
        max_imb = max_imb.max(imb);
        if sizes.iter().any(|&s| s < n / (2 * k as u64)) {
            min_group_ok = false;
        }
    }
    assert_eq!(completed, outcomes.len(), "{name}: censored trials");
    Row {
        protocol: name,
        k,
        n,
        states: proto.num_states(),
        mean_interactions: sum_inter as f64 / completed as f64,
        mean_imbalance: sum_imb as f64 / outcomes.len() as f64,
        max_imbalance: max_imb,
        min_group_ok,
    }
}

fn main() {
    common::banner(
        "Baselines",
        "paper's protocol vs composed bipartition vs approximate partition",
    );
    let trials = common::trials();
    let seed = common::master_seed();

    let mut table = Table::new(vec![
        "protocol",
        "k",
        "n",
        "states",
        "mean interactions",
        "mean imbalance",
        "max imbalance",
        "every group >= n/2k",
    ]);

    let push = |r: Row, table: &mut Table| {
        table.row(vec![
            r.protocol.to_string(),
            r.k.to_string(),
            r.n.to_string(),
            r.states.to_string(),
            fmt_f64(r.mean_interactions),
            fmt_f64(r.mean_imbalance),
            r.max_imbalance.to_string(),
            if r.min_group_ok { "yes" } else { "NO" }.to_string(),
        ]);
    };

    // Power-of-two k: paper's protocol vs the composed-bipartition
    // strawman (identical state count, 3k − 2). 96 and 480 are divisible
    // by 2^h (composed splits evenly); 99 ≡ 3 (mod 4) strands agents at
    // two levels of the same root-to-leaf path, pushing the composed
    // baseline's imbalance to 2 — beyond the ±1 the problem demands.
    for (k, n) in [(4usize, 96u64), (4, 99), (4, 480), (8, 96), (8, 99), (8, 480)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        push(
            measure(
                "uniform-k-partition (paper)",
                &proto,
                &kp.stable_signature(n),
                k,
                n,
                trials,
                seed,
            ),
            &mut table,
        );
        let hp = HierarchicalPartition::composed(k.trailing_zeros());
        let cproto = hp.compile();
        push(
            measure(
                "composed bipartition (2^h)",
                &cproto,
                &hp.stability(),
                k,
                n,
                trials,
                seed,
            ),
            &mut table,
        );
    }

    // Non-power-of-two k: the composition does not even exist; the
    // approximate baseline (fold 2^⌈log k⌉ leaves onto k groups) is the
    // only prior-work comparator, with its much weaker n/(2k) floor.
    for (k, n) in [(6usize, 96u64), (6, 480), (5, 100)] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        push(
            measure(
                "uniform-k-partition (paper)",
                &proto,
                &kp.stable_signature(n),
                k,
                n,
                trials,
                seed,
            ),
            &mut table,
        );
        let hp = HierarchicalPartition::approx(k);
        let aproto = hp.compile();
        push(
            measure(
                "approximate (>= n/2k)",
                &aproto,
                &hp.stability(),
                k,
                n,
                trials,
                seed,
            ),
            &mut table,
        );
    }

    println!("{}", table.to_markdown());
    println!(
        "Reading: only the paper's protocol keeps max imbalance <= 1; the composed \
         baseline trades uniformity for (sometimes) fewer interactions, and the \
         approximate baseline only promises the n/(2k) floor."
    );
    let path = common::results_path("baselines.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
