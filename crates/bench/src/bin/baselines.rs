//! Baseline comparison: the paper's protocol vs composed bipartition and
//! the approximate-partition stand-in (interactions + uniformity).
//!
//! Thin wrapper over the `baselines` sweep plan
//! (`pp_sweep::plans::baselines`): equivalent to `pp-sweep run
//! baselines`, so runs are cached, resumable, and parallel across cells.
//! See that module for the comparison grid and CSV schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("baselines");
}
