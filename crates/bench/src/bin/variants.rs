//! Extension experiment: the one-sided-abort variant vs the paper's
//! rule 8 — does softening chain collisions tame the exponential-in-k
//! cost?
//!
//! Thin wrapper over the `variants` sweep plan
//! (`pp_sweep::plans::variants`): equivalent to `pp-sweep run variants`,
//! so runs are cached, resumable, and parallel across cells. See that
//! module for the cell grid and CSV schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("variants");
}
