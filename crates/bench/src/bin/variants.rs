//! Extension experiment: the one-sided-abort variant vs the paper's
//! protocol — does softening rule 8 tame the exponential-in-k cost?
//!
//! Same state count (3k − 2), same stable configurations (model-checked
//! in the test suite); the only change is that off-diagonal chain
//! collisions sacrifice just the shorter chain. We sweep k at two
//! population sizes and report the speedup factor, plus exponential fits
//! of both curves.
//!
//! Output: markdown table + `results/variants.csv`.

use pp_analysis::fit;
use pp_analysis::runner::{run_trials, TrialConfig};
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;
use pp_engine::seeds;
use pp_protocols::kpartition::variant::OneSidedAbortKPartition;
use pp_protocols::kpartition::UniformKPartition;

fn main() {
    common::banner(
        "Variants",
        "one-sided chain abort vs the paper's rule 8 (both-abort)",
    );
    let trials = common::trials();
    let seed = common::master_seed();

    let mut table = Table::new(vec![
        "n", "k", "paper mean", "variant mean", "speedup",
    ]);

    for n in [240u64, 480] {
        let mut paper_pts = Vec::new();
        let mut variant_pts = Vec::new();
        for k in [3usize, 4, 5, 6, 8] {
            let kp = UniformKPartition::new(k);
            let paper_proto = kp.compile();
            let cfg = TrialConfig {
                trials,
                master_seed: seeds::derive_labelled(seed, k as u64, n),
                max_interactions: kp.interaction_budget(n),
            };
            let paper = run_trials(&paper_proto, n, &kp.stable_signature(n), cfg).mean();

            let v = OneSidedAbortKPartition::new(k);
            let vproto = v.compile();
            let variant = run_trials(&vproto, n, &v.stable_signature(n), cfg).mean();

            paper_pts.push((k as f64, paper));
            variant_pts.push((k as f64, variant));
            table.row(vec![
                n.to_string(),
                k.to_string(),
                fmt_f64(paper),
                fmt_f64(variant),
                format!("{:.2}x", paper / variant),
            ]);
        }
        let (pb, pr2) = fit::exponential_base(&paper_pts);
        let (vb, vr2) = fit::exponential_base(&variant_pts);
        println!(
            "n = {n}: paper ∝ {pb:.2}^k (r²={pr2:.2}), variant ∝ {vb:.2}^k (r²={vr2:.2})"
        );
    }

    println!("\n{}", table.to_markdown());
    println!(
        "The variant wins increasingly with k — consistent with §5.2's analysis \
         that destroyed chains are what makes the paper's protocol exponential. \
         (Correctness of the variant is model-checked, not proved; see \
         tests/model_check.rs.)"
    );
    let path = common::results_path("variants.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
