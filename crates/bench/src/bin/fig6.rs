//! Figure 6 reproduction: mean interactions vs `k` at fixed `n = 960`
//! (the paper plots this on a log axis), over the divisors of 960 so that
//! `n mod k = 0` throughout.
//!
//! The paper's observation: growth is *exponential in k* — each chain
//! must recruit `k − 2` free agents without colliding with another
//! chain-builder, whose probability shrinks exponentially with `k`. We
//! print means, successive growth ratios (roughly constant > 1 ⇒
//! exponential), and a semi-log fit `mean ∝ c^k`.
//!
//! Default grid `k ∈ {2, 3, 4, 5, 6, 8, 10, 12}`; extend with
//! `PP_FIG6_KMAX=16` (15 and 16 are the remaining divisors ≤ 16; expect
//! minutes per added k at 100 trials). Output: markdown table +
//! `results/fig6.csv`.

use pp_analysis::experiments::kpartition_cell;
use pp_analysis::fit;
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;

fn main() {
    common::banner("Figure 6", "interactions vs k at n = 960 (log scale)");
    let trials = common::trials();
    let seed = common::master_seed();
    let kmax: usize = std::env::var("PP_FIG6_KMAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let ks: Vec<usize> = [2usize, 3, 4, 5, 6, 8, 10, 12, 15, 16]
        .into_iter()
        .filter(|&k| k <= kmax)
        .collect();
    let n = 960u64;

    let mut table = Table::new(vec![
        "k", "trials", "mean", "log10(mean)", "std", "sem", "censored",
    ]);
    let mut points: Vec<(f64, f64)> = Vec::new();
    for &k in &ks {
        let cell = kpartition_cell(k, n, trials, seed);
        let s = cell.summary();
        println!("k = {k:2}: mean = {:>14}", fmt_f64(s.mean));
        table.row(vec![
            k.to_string(),
            s.count.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.mean.log10()),
            fmt_f64(s.std_dev),
            fmt_f64(s.sem),
            cell.batch.censored.to_string(),
        ]);
        points.push((k as f64, s.mean));
    }

    println!("\n### Mean interactions at n = 960\n");
    println!("{}", table.to_markdown());

    let (c, r2) = fit::exponential_base(&points);
    println!("semi-log fit: mean ∝ {c:.2}^k (r^2 = {r2:.3}) — exponential in k");
    let ratios = fit::growth_ratios(&points.iter().map(|p| p.1).collect::<Vec<_>>());
    println!(
        "successive growth ratios: {:?}",
        ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
    );

    let path = common::results_path("fig6.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
