//! Figure 6 reproduction: mean interactions vs `k` at `n = 960` —
//! exponential in `k`. Extend the grid with `PP_FIG6_KMAX=16`.
//!
//! Thin wrapper over the `fig6` sweep plan (`pp_sweep::plans::fig6`):
//! equivalent to `pp-sweep run fig6`, so runs are cached, resumable, and
//! parallel across cells. See that module for the cell grid and CSV
//! schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("fig6");
}
