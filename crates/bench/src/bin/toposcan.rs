//! Refresh the `toposcan` section of `BENCH_engine.json`: dynamics-loop
//! throughput (scheduler draws per second) for the complete graph vs
//! ring vs random-regular(4) at n = 10³ and n = 10⁵.
//!
//! ```text
//! toposcan [--budget B] [--out PATH]
//! ```
//!
//! k = 3, seed fixed, uniform edge scheduler, no churn. Both population
//! sizes share one draw budget (default 20M, the same cap
//! `kernelbench` uses for its censored naive cell): the complete cell at
//! n = 10³ stabilises well inside it, while the sparse families strand
//! and censor — by design, so their records compare per-draw throughput
//! on the honest `interactions_per_sec` basis rather than pretending
//! censored wall clocks are comparable (see `pp_bench::toposcan`).
//!
//! Unlike `kernelbench` (which owns the document and rewrites it whole),
//! this binary read-modify-writes: it parses the existing
//! `BENCH_engine.json`, replaces only the `toposcan` key, and re-encodes
//! — the kernel cells keep their committed numbers.

#![forbid(unsafe_code)]

use pp_bench::toposcan::{cell_json, measure, FAMILIES};
use pp_sweep::json::Value;

const K: usize = 3;
const SEED: u64 = 20180725;

fn parse_args() -> (u64, Option<String>) {
    let mut budget: u64 = 20_000_000;
    let mut out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--budget" => {
                budget = need(i).parse().expect("--budget: integer");
                i += 2;
            }
            "--out" => {
                out = Some(need(i).clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    (budget, out)
}

fn main() {
    let (budget, out) = parse_args();
    let mut cells = Vec::new();
    for n in [1_000u64, 100_000] {
        let ms: Vec<_> = FAMILIES
            .into_iter()
            .map(|(family, fragment)| measure(family, fragment, K, n, budget, SEED))
            .collect();
        for m in &ms {
            println!(
                "n={n}: {} {:.3e} draws/s (stabilised={}, {} effective)",
                m.family,
                m.interactions_per_sec(),
                m.stabilised,
                m.effective_interactions
            );
        }
        cells.push(cell_json(n, &ms));
    }
    let section = Value::obj([
        ("bench", Value::Str("topology_throughput".to_string())),
        ("k", Value::U64(K as u64)),
        ("seed", Value::U64(SEED)),
        ("budget", Value::U64(budget)),
        ("cells", Value::Arr(cells)),
    ]);

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let path = out.unwrap_or_else(|| default_path.to_string());
    // Read-modify-write: preserve every other section of the document.
    let mut doc = match std::fs::read_to_string(&path) {
        Ok(text) => Value::parse(&text)
            .unwrap_or_else(|e| panic!("{path} exists but does not parse: {e:?}")),
        Err(_) => Value::obj([]),
    };
    let Value::Obj(fields) = &mut doc else {
        panic!("{path}: top level is not a JSON object");
    };
    fields.insert("toposcan".to_string(), section);
    std::fs::write(&path, doc.encode() + "\n").expect("write BENCH_engine.json");
    println!("wrote {path}");
}
