//! Figure 3 reproduction: mean interactions to stability vs population
//! size `n`, for `k ∈ {4, 6, 8}`, sweeping consecutive `n`.
//!
//! The paper's observations to look for in the output:
//! * interaction counts grow with `n` overall, but *non-monotonically*:
//!   the count dips after each multiple of `k` and climbs steeply toward
//!   the next one — a sawtooth with period `k` driven by `n mod k`;
//! * the `n mod k ∈ {0, 1}` cells are locally the most expensive (the
//!   final grouping must scavenge the last free agents).
//!
//! Output: one markdown table per `k` and `results/fig3_k<k>.csv` with
//! columns `k,n,n_mod_k,trials,mean,std,sem,min,median,max,censored`.
//!
//! Grid: `n` from `k + 2` to 96 (every value, to expose the sawtooth).
//! Override trials/seed with `PP_TRIALS`/`PP_SEED`.

use pp_analysis::experiments::kpartition_cell;
use pp_analysis::table::{fmt_f64, Table};
use pp_bench::common;

fn main() {
    common::banner(
        "Figure 3",
        "interactions vs n for k in {4, 6, 8} (sawtooth with period k)",
    );
    let trials = common::trials();
    let seed = common::master_seed();

    for k in [4usize, 6, 8] {
        let mut table = Table::new(vec![
            "k", "n", "n mod k", "trials", "mean", "std", "sem", "min", "median", "max",
            "censored",
        ]);
        let ns: Vec<u64> = ((k as u64 + 2)..=96).collect();
        for &n in &ns {
            let cell = kpartition_cell(k, n, trials, seed);
            let s = cell.summary();
            table.row(vec![
                k.to_string(),
                n.to_string(),
                (n % k as u64).to_string(),
                s.count.to_string(),
                fmt_f64(s.mean),
                fmt_f64(s.std_dev),
                fmt_f64(s.sem),
                fmt_f64(s.min),
                fmt_f64(s.median),
                fmt_f64(s.max),
                cell.batch.censored.to_string(),
            ]);
        }
        println!("### k = {k}\n");
        println!("{}", table.to_markdown());
        let path = common::results_path(&format!("fig3_k{k}.csv"));
        table.write_csv(&path).expect("write csv");
        println!("wrote {}\n", path.display());
    }
}
