//! Figure 3 reproduction: mean interactions to stability vs population
//! size `n`, for `k ∈ {4, 6, 8}` — the sawtooth with period `k` driven by
//! `n mod k`.
//!
//! Thin wrapper over the `fig3` sweep plan (`pp_sweep::plans::fig3`):
//! equivalent to `pp-sweep run fig3`, so runs are cached, resumable, and
//! parallel across cells. See that module for the cell grid and CSV
//! schema.

#![forbid(unsafe_code)]

fn main() {
    pp_sweep::cli::delegate("fig3");
}
