//! Regenerate `BENCH_engine.json`: kernel throughput cells for the
//! naive / leap / batch kernels, including the giant-n batch cell.
//!
//! ```text
//! kernelbench [--giant N] [--wall-budget-secs S] [--out PATH]
//! ```
//!
//! Cells (k = 8, seed fixed):
//!
//! * n = 10³ — all three kernels run to stability (uncensored; the cell
//!   carries a wall-clock naive-vs-leap speedup).
//! * n = 10⁵ — naive capped at 20M interactions (censored), leap and
//!   batch run to stability; the cell-level speedup downgrades to the
//!   `interactions_per_sec` basis (see `pp_bench::kernelbench`).
//! * n = `--giant` (default 10⁸) — batch kernel only: neither the naive
//!   loop nor the leap kernel finishes such a cell in sane wall time,
//!   which is the point of the tau-leap kernel. The run goes to
//!   stability (uncensored) and the document records its throughput
//!   ratio against the leap kernel's n = 10⁵ cell as
//!   `giant_batch_vs_leap_ref` (basis: interactions per second — the
//!   cells do different total work, so wall clocks are not comparable).
//!
//! `--wall-budget-secs` makes the giant cell a CI gate: exit non-zero if
//! the batch run takes longer (or fails to stabilise). CI runs this with
//! `--giant 10000000` and uploads the refreshed JSON as an artifact; the
//! committed file at the workspace root is generated with the default
//! giant n = 10⁸.

#![forbid(unsafe_code)]

use pp_bench::kernelbench::{cell_json, measure, BenchKernel};
use pp_protocols::kpartition::UniformKPartition;
use pp_sweep::json::Value;

const K: usize = 8;
const SEED: u64 = 20180725;

fn parse_args() -> (u64, Option<f64>, Option<String>) {
    let mut giant: u64 = 100_000_000;
    let mut budget: Option<f64> = None;
    let mut out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--giant" => {
                giant = need(i).parse().expect("--giant: integer");
                i += 2;
            }
            "--wall-budget-secs" => {
                budget = Some(need(i).parse().expect("--wall-budget-secs: number"));
                i += 2;
            }
            "--out" => {
                out = Some(need(i).clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    (giant, budget, out)
}

fn main() {
    let (giant_n, wall_budget, out) = parse_args();
    let mut cells = Vec::new();

    // n = 10³: everything runs to stability.
    let n = 1_000u64;
    let budget = UniformKPartition::new(K).interaction_budget(n);
    let small: Vec<_> = [BenchKernel::Naive, BenchKernel::Leap, BenchKernel::Batch]
        .into_iter()
        .map(|kern| measure(kern, K, n, budget, SEED))
        .collect();
    for m in &small {
        println!(
            "n={n}: {} {:.3e} interactions/s (stabilised={})",
            m.kernel.label(),
            m.interactions_per_sec(),
            m.stabilised
        );
    }
    cells.push(cell_json(n, &small));

    // n = 10⁵: naive is censored at 20M interactions (representative
    // per-interaction throughput at a fraction of the cost), leap and
    // batch go to stability.
    let n = 100_000u64;
    let budget = UniformKPartition::new(K).interaction_budget(n);
    let mid = vec![
        measure(BenchKernel::Naive, K, n, 20_000_000, SEED),
        measure(BenchKernel::Leap, K, n, budget, SEED),
        measure(BenchKernel::Batch, K, n, budget, SEED),
    ];
    let leap_ref = mid[1].interactions_per_sec();
    for m in &mid {
        println!(
            "n={n}: {} {:.3e} interactions/s (stabilised={})",
            m.kernel.label(),
            m.interactions_per_sec(),
            m.stabilised
        );
    }
    cells.push(cell_json(n, &mid));

    // Giant n: batch only.
    let budget = UniformKPartition::new(K).interaction_budget(giant_n);
    let giant = measure(BenchKernel::Batch, K, giant_n, budget, SEED);
    println!(
        "n={giant_n}: batch {:.3e} interactions/s in {:.1}s (stabilised={})",
        giant.interactions_per_sec(),
        giant.seconds,
        giant.stabilised
    );
    let giant_vs_leap = giant.interactions_per_sec() / leap_ref.max(1e-12);
    println!("giant batch vs leap@n=100000: {giant_vs_leap:.0}x interactions/s");
    cells.push(cell_json(giant_n, &[giant]));

    let doc = Value::obj([
        ("bench", Value::Str("kernel_throughput".to_string())),
        ("k", Value::U64(K as u64)),
        ("seed", Value::U64(SEED)),
        ("cells", Value::Arr(cells)),
        ("giant_batch_vs_leap_ref", Value::U64(giant_vs_leap as u64)),
        (
            "giant_batch_vs_leap_ref_basis",
            Value::Str("interactions_per_sec".to_string()),
        ),
    ]);
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let path = out.unwrap_or_else(|| default_path.to_string());
    std::fs::write(&path, doc.encode() + "\n").expect("write BENCH_engine.json");
    println!("wrote {path}");

    if !giant.stabilised {
        eprintln!("kernelbench: giant batch cell censored at the interaction budget");
        std::process::exit(1);
    }
    if let Some(limit) = wall_budget {
        if giant.seconds > limit {
            eprintln!(
                "kernelbench: giant batch cell took {:.1}s, over the {limit:.1}s wall budget",
                giant.seconds
            );
            std::process::exit(1);
        }
    }
}
