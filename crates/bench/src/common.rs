//! Shared plumbing for the figure binaries: CLI-ish environment knobs,
//! output paths, and consistent headers.
//!
//! The knob resolution itself lives in [`pp_analysis::config`] so the
//! legacy binaries, `pp-sweep`, and CI all read the same values:
//!
//! * `PP_TRIALS` — trials per cell (default 100, the paper's count).
//! * `PP_SEED` — master seed (default 20180725, the paper's submission
//!   date).
//! * `PP_RESULTS_DIR` — output directory (default `results/` under the
//!   workspace root).

use std::path::PathBuf;

/// Trials per data point; `PP_TRIALS` overrides the paper's 100.
pub fn trials() -> usize {
    pp_analysis::config::trials()
}

/// Master seed; `PP_SEED` overrides the default.
pub fn master_seed() -> u64 {
    pp_analysis::config::master_seed()
}

/// Output path `results/<name>`; see [`pp_analysis::config::results_dir`]
/// for the resolution rules (including the `PP_RESULTS_DIR` override).
pub fn results_path(name: &str) -> PathBuf {
    pp_analysis::config::results_path(name)
}

/// Print the standard experiment banner.
pub fn banner(figure: &str, description: &str) {
    println!("== {figure} — {description}");
    println!(
        "   trials/cell = {}, master seed = {} (override with PP_TRIALS / PP_SEED)",
        trials(),
        master_seed()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_delegate_to_analysis_config() {
        assert_eq!(trials(), pp_analysis::config::trials());
        assert_eq!(master_seed(), pp_analysis::config::master_seed());
        assert_eq!(
            results_path("x.csv"),
            pp_analysis::config::results_path("x.csv")
        );
    }
}
