//! Shared plumbing for the figure binaries: CLI-ish environment knobs,
//! output paths, and consistent headers.
//!
//! Every binary accepts two environment variables so CI / quick runs can
//! dial effort without code changes:
//!
//! * `PP_TRIALS` — trials per cell (default 100, the paper's count).
//! * `PP_SEED` — master seed (default 20180725, the paper's submission
//!   date).
//!
//! Results go to `results/<name>.csv` relative to the workspace root (or
//! the current directory when run elsewhere).

use std::path::PathBuf;

/// Trials per data point; `PP_TRIALS` overrides the paper's 100.
pub fn trials() -> usize {
    std::env::var("PP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Master seed; `PP_SEED` overrides the default.
pub fn master_seed() -> u64 {
    std::env::var("PP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_180_725)
}

/// Output path `results/<name>` under the workspace root if it exists,
/// else under the current directory.
pub fn results_path(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results").join(name)
}

/// Print the standard experiment banner.
pub fn banner(figure: &str, description: &str) {
    println!("== {figure} — {description}");
    println!(
        "   trials/cell = {}, master seed = {} (override with PP_TRIALS / PP_SEED)",
        trials(),
        master_seed()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        // Only valid when the env vars are unset, which is the test default.
        if std::env::var("PP_TRIALS").is_err() {
            assert_eq!(trials(), 100);
        }
        if std::env::var("PP_SEED").is_err() {
            assert_eq!(master_seed(), 20_180_725);
        }
    }

    #[test]
    fn results_path_ends_with_results() {
        let p = results_path("x.csv");
        assert!(p.to_string_lossy().contains("results"));
        assert!(p.to_string_lossy().ends_with("x.csv"));
    }
}
