//! Naive-vs-leap kernel measurement: the numbers behind
//! `BENCH_engine.json` and the CI speedup smoke test.
//!
//! Both kernels simulate the same process — a uniform random scheduler
//! drawing ordered pairs of distinct agents — so the honest throughput
//! metric is *scheduler interactions per second*: identity (null)
//! interactions included, because the paper's time metric counts them
//! and the naive loop pays for each one. The leap kernel skips whole
//! identity runs in O(1), which is exactly where its advantage shows.

use std::time::Instant;

use pp_engine::observer::Observer;
use pp_engine::population::CountPopulation;
use pp_engine::protocol::StateId;
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::{RunError, Simulator};
use pp_protocols::kpartition::UniformKPartition;

/// Which simulation loop to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchKernel {
    /// One scheduler draw per interaction ([`Simulator::run`]).
    Naive,
    /// Geometric identity-run skipping ([`Simulator::run_leap`]).
    Leap,
}

impl BenchKernel {
    /// Lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            BenchKernel::Naive => "naive",
            BenchKernel::Leap => "leap",
        }
    }
}

/// One timed run of one kernel on one k-partition cell.
#[derive(Clone, Copy, Debug)]
pub struct KernelMeasurement {
    /// Which kernel ran.
    pub kernel: BenchKernel,
    /// Partition arity.
    pub k: usize,
    /// Population size.
    pub n: u64,
    /// Scheduler interactions simulated (identities included).
    pub interactions: u64,
    /// Interactions that changed the configuration.
    pub effective_interactions: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Whether the run reached the stable signature within the budget.
    pub stabilised: bool,
}

impl KernelMeasurement {
    /// Scheduler interactions per wall-clock second.
    pub fn interactions_per_sec(&self) -> f64 {
        self.interactions as f64 / self.seconds.max(1e-12)
    }
}

/// Counts effective interactions; works on the censored path too, where
/// `RunError` carries no counters. The leap kernel only reports
/// effective interactions, the naive kernel reports identities as well,
/// so counting `(p, q) != (p2, q2)` is right for both.
#[derive(Default)]
struct EffectiveCounter {
    effective: u64,
}

impl Observer for EffectiveCounter {
    #[inline]
    fn on_interaction(
        &mut self,
        _step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        _counts: &[u64],
    ) {
        if (p, q) != (p2, q2) {
            self.effective += 1;
        }
    }
}

/// Time one seeded k-partition run to stability (or to `budget`
/// interactions, whichever comes first) under the given kernel.
pub fn measure(kernel: BenchKernel, k: usize, n: u64, budget: u64, seed: u64) -> KernelMeasurement {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let criterion = kp.stable_signature(n);
    let mut pop = CountPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let sim = Simulator::new(&proto);
    let mut counter = EffectiveCounter::default();

    let t0 = Instant::now();
    let res = match kernel {
        BenchKernel::Naive => {
            sim.run_observed(&mut pop, &mut sched, &criterion, budget, &mut counter)
        }
        BenchKernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut counter)
        }
    };
    let seconds = t0.elapsed().as_secs_f64();

    let (interactions, stabilised) = match res {
        Ok(r) => {
            debug_assert_eq!(r.effective_interactions, counter.effective);
            (r.interactions, true)
        }
        // Censored at the budget: the kernel still simulated `limit`
        // interactions, so the throughput number stays honest.
        Err(RunError::InteractionLimit { limit }) => (limit, false),
        Err(e) => panic!("bench run failed: {e}"),
    };
    KernelMeasurement {
        kernel,
        k,
        n,
        interactions,
        effective_interactions: counter.effective,
        seconds,
        stabilised,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kernels_stabilise_a_small_cell() {
        for kernel in [BenchKernel::Naive, BenchKernel::Leap] {
            let m = measure(kernel, 3, 24, u64::MAX, 7);
            assert!(m.stabilised, "{:?} failed to stabilise", kernel);
            assert!(m.interactions >= m.effective_interactions);
            assert!(m.interactions_per_sec() > 0.0);
        }
    }

    #[test]
    fn censored_run_reports_the_budget() {
        let m = measure(BenchKernel::Naive, 3, 24, 10, 7);
        assert!(!m.stabilised);
        assert_eq!(m.interactions, 10);
    }
}
