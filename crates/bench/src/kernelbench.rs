//! Kernel measurement (naive vs leap vs batch): the numbers behind
//! `BENCH_engine.json` and the CI speedup smoke tests.
//!
//! All kernels simulate the same process — a uniform random scheduler
//! drawing ordered pairs of distinct agents — so the honest throughput
//! metric is *scheduler interactions per second*: identity (null)
//! interactions included, because the paper's time metric counts them
//! and the naive loop pays for each one. The leap kernel skips whole
//! identity runs in O(1), which is exactly where its advantage shows;
//! the batch kernel additionally fires whole tau-leaps of rule firings
//! in O(|rules|), which is where the giant-n regime opens up.
//!
//! ## Censoring semantics
//!
//! A measurement is *censored* when the run hit its interaction budget
//! before stabilising; a censored run did **less work than the task**
//! (run to stability), so wall-clock times of a censored and an
//! uncensored run are not comparable. Every per-kernel record therefore
//! carries its own `censored` flag, a cell is censored iff *any* of its
//! kernels is, and [`cell_json`] picks the speedup basis from the flags:
//! end-to-end `wall_clock` when both compared kernels completed the same
//! run, per-interaction `interactions_per_sec` (flat per-interaction
//! cost, honest under censoring) otherwise.

use std::time::Instant;

use pp_engine::observer::Observer;
use pp_engine::population::CountPopulation;
use pp_engine::protocol::StateId;
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::{RunError, Simulator};
use pp_protocols::kpartition::UniformKPartition;

/// Which simulation loop to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchKernel {
    /// One scheduler draw per interaction ([`Simulator::run`]).
    Naive,
    /// Geometric identity-run skipping ([`Simulator::run_leap`]).
    Leap,
    /// Tau-leap bulk firing with exact fallback ([`Simulator::run_batch`]).
    Batch,
}

impl BenchKernel {
    /// Lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            BenchKernel::Naive => "naive",
            BenchKernel::Leap => "leap",
            BenchKernel::Batch => "batch",
        }
    }
}

/// One timed run of one kernel on one k-partition cell.
#[derive(Clone, Copy, Debug)]
pub struct KernelMeasurement {
    /// Which kernel ran.
    pub kernel: BenchKernel,
    /// Partition arity.
    pub k: usize,
    /// Population size.
    pub n: u64,
    /// Scheduler interactions simulated (identities included).
    pub interactions: u64,
    /// Interactions that changed the configuration.
    pub effective_interactions: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Whether the run reached the stable signature within the budget.
    pub stabilised: bool,
}

impl KernelMeasurement {
    /// Scheduler interactions per wall-clock second.
    pub fn interactions_per_sec(&self) -> f64 {
        self.interactions as f64 / self.seconds.max(1e-12)
    }
}

/// Counts effective interactions; works on the censored path too, where
/// `RunError` carries no counters. The leap kernel only reports
/// effective interactions, the naive kernel reports identities as well,
/// so counting `(p, q) != (p2, q2)` is right for both; the batch kernel
/// reports each tau-leap's effective-firing total through
/// `on_leap_batch` and its exact-fallback interactions one by one.
#[derive(Default)]
struct EffectiveCounter {
    effective: u64,
}

impl Observer for EffectiveCounter {
    #[inline]
    fn on_interaction(
        &mut self,
        _step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        _counts: &[u64],
    ) {
        if (p, q) != (p2, q2) {
            self.effective += 1;
        }
    }

    #[inline]
    fn on_leap_batch(&mut self, _last_step: u64, _tau: u64, effective: u64, _counts: &[u64]) {
        self.effective += effective;
    }
}

/// Time one seeded k-partition run to stability (or to `budget`
/// interactions, whichever comes first) under the given kernel.
pub fn measure(kernel: BenchKernel, k: usize, n: u64, budget: u64, seed: u64) -> KernelMeasurement {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let criterion = kp.stable_signature(n);
    let mut pop = CountPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let sim = Simulator::new(&proto);
    let mut counter = EffectiveCounter::default();

    let t0 = Instant::now();
    let res = match kernel {
        BenchKernel::Naive => {
            sim.run_observed(&mut pop, &mut sched, &criterion, budget, &mut counter)
        }
        BenchKernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut counter)
        }
        BenchKernel::Batch => {
            sim.run_batch_observed(&mut pop, &mut sched, &criterion, budget, &mut counter)
        }
    };
    let seconds = t0.elapsed().as_secs_f64();

    let (interactions, stabilised) = match res {
        Ok(r) => {
            debug_assert_eq!(r.effective_interactions, counter.effective);
            (r.interactions, true)
        }
        // Censored at the budget: the kernel still simulated `limit`
        // interactions, so the throughput number stays honest.
        Err(RunError::InteractionLimit { limit }) => (limit, false),
        Err(e) => panic!("bench run failed: {e}"),
    };
    KernelMeasurement {
        kernel,
        k,
        n,
        interactions,
        effective_interactions: counter.effective,
        seconds,
        stabilised,
    }
}

/// One JSON record per measured kernel run, carrying the run's own
/// censoring flag (see the module docs on censoring semantics).
pub fn measurement_json(m: &KernelMeasurement) -> pp_sweep::json::Value {
    use pp_sweep::json::Value;
    Value::obj([
        ("kernel", Value::Str(m.kernel.label().to_string())),
        ("interactions", Value::U64(m.interactions)),
        (
            "effective_interactions",
            Value::U64(m.effective_interactions),
        ),
        ("micros", Value::U64((m.seconds * 1e6) as u64)),
        (
            "interactions_per_sec",
            Value::U64(m.interactions_per_sec() as u64),
        ),
        ("stabilised", Value::Bool(m.stabilised)),
        ("censored", Value::Bool(!m.stabilised)),
    ])
}

/// One cell of `BENCH_engine.json`: the measurements of every kernel
/// that ran at this population size, keyed by kernel label.
///
/// The cell-level `censored` flag is true iff any kernel's run was
/// censored; per-kernel flags live in the sub-records, so a cell where
/// naive hit its cap while leap stabilised reads `censored: true` at the
/// cell *and* `naive.censored: true` / `leap.censored: false` below it.
/// When both naive and leap ran, the cell carries their speedup: an
/// end-to-end wall-clock ratio (`speedup_basis: "wall_clock"`) when both
/// completed the run to stability, a throughput ratio
/// (`speedup_basis: "interactions_per_sec"`) when censoring made wall
/// times incomparable.
pub fn cell_json(n: u64, ms: &[KernelMeasurement]) -> pp_sweep::json::Value {
    use pp_sweep::json::Value;
    let censored = ms.iter().any(|m| !m.stabilised);
    let mut fields = vec![("n", Value::U64(n))];
    for m in ms {
        fields.push((m.kernel.label(), measurement_json(m)));
    }
    fields.push(("censored", Value::Bool(censored)));
    let naive = ms.iter().find(|m| m.kernel == BenchKernel::Naive);
    let leap = ms.iter().find(|m| m.kernel == BenchKernel::Leap);
    if let (Some(na), Some(le)) = (naive, leap) {
        let (speedup, basis) = if na.stabilised && le.stabilised {
            (na.seconds / le.seconds.max(1e-12), "wall_clock")
        } else {
            (
                le.interactions_per_sec() / na.interactions_per_sec().max(1e-12),
                "interactions_per_sec",
            )
        };
        fields.push(("speedup", Value::U64(speedup as u64)));
        fields.push(("speedup_basis", Value::Str(basis.to_string())));
    }
    Value::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_stabilise_a_small_cell() {
        for kernel in [BenchKernel::Naive, BenchKernel::Leap, BenchKernel::Batch] {
            let m = measure(kernel, 3, 24, u64::MAX, 7);
            assert!(m.stabilised, "{:?} failed to stabilise", kernel);
            assert!(m.interactions >= m.effective_interactions);
            assert!(m.interactions_per_sec() > 0.0);
        }
    }

    #[test]
    fn censored_run_reports_the_budget() {
        let m = measure(BenchKernel::Naive, 3, 24, 10, 7);
        assert!(!m.stabilised);
        assert_eq!(m.interactions, 10);
    }

    fn fake(kernel: BenchKernel, stabilised: bool, seconds: f64, ips: f64) -> KernelMeasurement {
        KernelMeasurement {
            kernel,
            k: 8,
            n: 1000,
            interactions: (ips * seconds) as u64,
            effective_interactions: 10,
            seconds,
            stabilised,
        }
    }

    #[test]
    fn cell_json_per_kernel_censoring_and_wall_basis() {
        // Both kernels completed the run: uncensored cell, wall-clock basis.
        let cell = cell_json(
            1000,
            &[
                fake(BenchKernel::Naive, true, 2.0, 1e6),
                fake(BenchKernel::Leap, true, 1.0, 2e6),
            ],
        )
        .encode();
        assert!(cell.contains("\"censored\":false"));
        assert!(cell.contains("\"speedup_basis\":\"wall_clock\""));
        assert!(cell.contains("\"speedup\":2"));
    }

    #[test]
    fn cell_json_censored_naive_downgrades_to_throughput_basis() {
        // Naive hit its cap, leap stabilised: the cell is censored, the
        // naive sub-record says so, the leap sub-record does not, and the
        // speedup switches to the per-interaction basis because the two
        // wall times cover different amounts of work.
        let cell = cell_json(
            100_000,
            &[
                fake(BenchKernel::Naive, false, 2.0, 1e6),
                fake(BenchKernel::Leap, true, 1.0, 50e6),
                fake(BenchKernel::Batch, true, 0.5, 100e6),
            ],
        )
        .encode();
        assert!(cell.contains("\"censored\":true"));
        assert!(cell.contains("\"speedup_basis\":\"interactions_per_sec\""));
        assert!(cell.contains("\"speedup\":50"));
        // Per-kernel flags diverge within the one cell.
        let naive_rec = cell.split("\"naive\":").nth(1).unwrap();
        assert!(naive_rec
            .split('}')
            .next()
            .unwrap()
            .contains("\"censored\":true"));
        let leap_rec = cell.split("\"leap\":").nth(1).unwrap();
        assert!(leap_rec
            .split('}')
            .next()
            .unwrap()
            .contains("\"censored\":false"));
    }

    #[test]
    fn cell_json_without_naive_has_no_speedup_pair() {
        let cell = cell_json(100_000_000, &[fake(BenchKernel::Batch, true, 1.0, 1e12)]).encode();
        assert!(cell.contains("\"censored\":false"));
        assert!(!cell.contains("speedup"));
    }
}
