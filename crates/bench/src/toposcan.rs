//! Topology throughput scan: the `toposcan` section of
//! `BENCH_engine.json`.
//!
//! Where [`crate::kernelbench`] compares simulation *kernels* on the
//! paper's complete graph, this module holds the kernel fixed (the
//! agent-based dynamics loop in [`pp_topo::run_dynamics`], the only one
//! that supports restricted topologies) and varies the *interaction
//! graph*: complete vs ring vs random-regular(4). The honest metric is
//! again scheduler draws per second, identities included — the dynamics
//! loop pays for every draw regardless of whether the sampled edge's
//! endpoints react.
//!
//! ## Censoring semantics
//!
//! Same contract as `kernelbench`: a run is *censored* when it exhausts
//! its draw budget before the stable signature holds. On sparse
//! topologies that is the expected outcome — the protocol's
//! chain-building progression strands once an agent's few neighbours
//! settle (see `pp_lint::topo`), so ring and random-regular cells
//! typically censor while the complete cell stabilises. Per-family
//! records carry their own `censored` flag, the cell is censored iff any
//! family is, and the cell-level complete-vs-ring speedup picks its
//! basis accordingly: end-to-end `wall_clock` only when both runs
//! completed the same task, per-draw `interactions_per_sec` otherwise.

use std::time::Instant;

use pp_engine::observer::Observer;
use pp_engine::protocol::StateId;
use pp_protocols::kpartition::UniformKPartition;
use pp_topo::Dynamics;

/// The topology families the scan measures, as `(json label, dynamics
/// topology fragment)` pairs. Labels are JSON object keys, so they avoid
/// the `:`/`=` punctuation of the parseable fragment form.
pub const FAMILIES: [(&str, &str); 3] = [
    ("complete", "complete"),
    ("ring", "ring"),
    ("rr4", "rr:d=4"),
];

/// One timed dynamics run of one topology family on one k-partition cell.
#[derive(Clone, Copy, Debug)]
pub struct TopoMeasurement {
    /// JSON label of the topology family (`"complete"`, `"ring"`, `"rr4"`).
    pub family: &'static str,
    /// Partition arity.
    pub k: usize,
    /// Population size.
    pub n: u64,
    /// Scheduler draws simulated (identity interactions included).
    pub interactions: u64,
    /// Draws that changed at least one agent's state.
    pub effective_interactions: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Whether the stable signature held within the draw budget.
    pub stabilised: bool,
}

impl TopoMeasurement {
    /// Scheduler draws per wall-clock second.
    pub fn interactions_per_sec(&self) -> f64 {
        self.interactions as f64 / self.seconds.max(1e-12)
    }
}

/// Counts every scheduler draw. [`pp_topo::DynRunOutcome`] reports the
/// draw total only for stabilised runs (`interactions` is `None` under
/// censoring), so the bench counts draws itself via the observer — the
/// dynamics loop reports each one, identities included.
#[derive(Default)]
struct DrawCounter {
    draws: u64,
}

impl Observer for DrawCounter {
    #[inline]
    fn on_interaction(
        &mut self,
        _step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        _counts: &[u64],
    ) {
        self.draws += 1;
    }
}

/// Time one seeded k-partition dynamics run on the given topology
/// family (a `FAMILIES`-style fragment) to stability or to `budget`
/// scheduler draws, whichever comes first. Uniform edge scheduler, no
/// churn — the scan isolates the cost of graph-restricted sampling.
pub fn measure(
    family: &'static str,
    fragment: &str,
    k: usize,
    n: u64,
    budget: u64,
    seed: u64,
) -> TopoMeasurement {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let criterion = kp.stable_signature(n);
    let dynamics = Dynamics::parse(&format!("{fragment};uniform;j0.l0.c0.p0"))
        .unwrap_or_else(|e| panic!("toposcan fragment {fragment}: {e}"));
    let mut counter = DrawCounter::default();

    let t0 = Instant::now();
    let outcome = pp_topo::run_dynamics(
        &proto,
        n as usize,
        &dynamics,
        &criterion,
        budget,
        seed,
        &mut counter,
    )
    .unwrap_or_else(|e| panic!("toposcan run on {fragment} failed: {e}"));
    let seconds = t0.elapsed().as_secs_f64();

    TopoMeasurement {
        family,
        k,
        n,
        interactions: counter.draws,
        effective_interactions: outcome.effective_interactions,
        seconds,
        stabilised: outcome.stabilised(),
    }
}

/// One JSON record per measured family run, carrying the run's own
/// censoring flag (schema mirrors `kernelbench::measurement_json`).
pub fn measurement_json(m: &TopoMeasurement) -> pp_sweep::json::Value {
    use pp_sweep::json::Value;
    Value::obj([
        ("family", Value::Str(m.family.to_string())),
        ("interactions", Value::U64(m.interactions)),
        (
            "effective_interactions",
            Value::U64(m.effective_interactions),
        ),
        ("micros", Value::U64((m.seconds * 1e6) as u64)),
        (
            "interactions_per_sec",
            Value::U64(m.interactions_per_sec() as u64),
        ),
        ("stabilised", Value::Bool(m.stabilised)),
        ("censored", Value::Bool(!m.stabilised)),
    ])
}

/// One cell of the `toposcan` section: every family measured at this
/// population size, keyed by family label, plus the cell-level
/// `censored` flag and the complete-vs-ring speedup with its basis —
/// the same `censored`/`speedup_basis` contract as the kernel cells.
pub fn cell_json(n: u64, ms: &[TopoMeasurement]) -> pp_sweep::json::Value {
    use pp_sweep::json::Value;
    let censored = ms.iter().any(|m| !m.stabilised);
    let mut fields = vec![("n", Value::U64(n))];
    for m in ms {
        fields.push((m.family, measurement_json(m)));
    }
    fields.push(("censored", Value::Bool(censored)));
    let complete = ms.iter().find(|m| m.family == "complete");
    let ring = ms.iter().find(|m| m.family == "ring");
    if let (Some(co), Some(ri)) = (complete, ring) {
        let (speedup, basis) = if co.stabilised && ri.stabilised {
            (ri.seconds / co.seconds.max(1e-12), "wall_clock")
        } else {
            (
                co.interactions_per_sec() / ri.interactions_per_sec().max(1e-12),
                "interactions_per_sec",
            )
        };
        fields.push(("speedup", Value::U64(speedup as u64)));
        fields.push(("speedup_basis", Value::Str(basis.to_string())));
    }
    Value::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_cell_stabilises_and_counts_draws() {
        let m = measure("complete", "complete", 3, 24, u64::MAX, 7);
        assert!(m.stabilised);
        assert!(m.interactions >= m.effective_interactions);
        assert!(m.effective_interactions > 0);
        assert!(m.interactions_per_sec() > 0.0);
    }

    #[test]
    fn sparse_cell_censors_at_the_budget() {
        // Ring at k = 3: the chain strands long before the signature
        // holds, so the run spends exactly its draw budget.
        let m = measure("ring", "ring", 3, 24, 2_000, 7);
        assert!(!m.stabilised);
        assert_eq!(m.interactions, 2_000);
    }

    fn fake(family: &'static str, stabilised: bool, seconds: f64, ips: f64) -> TopoMeasurement {
        TopoMeasurement {
            family,
            k: 3,
            n: 1000,
            interactions: (ips * seconds) as u64,
            effective_interactions: 10,
            seconds,
            stabilised,
        }
    }

    #[test]
    fn cell_json_downgrades_basis_when_ring_censors() {
        let cell = cell_json(
            1000,
            &[
                fake("complete", true, 1.0, 2e6),
                fake("ring", false, 1.0, 1e6),
                fake("rr4", false, 1.0, 1e6),
            ],
        );
        assert_eq!(
            cell.get("censored"),
            Some(&pp_sweep::json::Value::Bool(true))
        );
        assert_eq!(
            cell.get("speedup_basis").and_then(|v| v.as_str()),
            Some("interactions_per_sec")
        );
        assert_eq!(cell.get("speedup").and_then(|v| v.as_u64()), Some(2));
        let ring = cell.get("ring").expect("ring record");
        assert_eq!(
            ring.get("censored"),
            Some(&pp_sweep::json::Value::Bool(true))
        );
        let complete = cell.get("complete").expect("complete record");
        assert_eq!(
            complete.get("censored"),
            Some(&pp_sweep::json::Value::Bool(false))
        );
    }

    #[test]
    fn cell_json_uses_wall_clock_when_both_stabilise() {
        let cell = cell_json(
            1000,
            &[
                fake("complete", true, 1.0, 2e6),
                fake("ring", true, 3.0, 1e6),
            ],
        );
        assert_eq!(
            cell.get("speedup_basis").and_then(|v| v.as_str()),
            Some("wall_clock")
        );
        assert_eq!(cell.get("speedup").and_then(|v| v.as_u64()), Some(3));
    }
}
