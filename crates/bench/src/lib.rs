//! # pp-bench — experiment reproduction harness
//!
//! One binary per paper artifact (see `src/bin/`): `fig3`, `fig4`,
//! `fig5`, `fig6`, `ablation_d_states`, `baselines`. Each prints markdown
//! tables and writes CSV under `results/`. Criterion micro-benchmarks
//! live under `benches/`.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod common;
pub mod kernelbench;
pub mod toposcan;
