//! CI smoke test for the leap kernel's headline claim: at a reduced
//! population it must already be at least as fast as the naive loop in
//! scheduler interactions per second. Timing-sensitive, so it is
//! `#[ignore]`d by default and run in release mode by the CI step
//! `cargo test --release -p pp-bench -- --ignored`.

use pp_bench::kernelbench::{measure, BenchKernel};
use pp_protocols::kpartition::UniformKPartition;

#[test]
#[ignore = "timing-sensitive; CI runs it in release mode via -- --ignored"]
fn leap_not_slower_than_naive_at_reduced_n() {
    let (k, n, seed) = (8usize, 10_000u64, 20180725u64);
    let budget = UniformKPartition::new(k).interaction_budget(n);
    // Cap the naive run so the smoke test stays fast; per-interaction
    // cost is flat, so the censored throughput is representative.
    let naive = measure(BenchKernel::Naive, k, n, 5_000_000, seed);
    let leap = measure(BenchKernel::Leap, k, n, budget, seed);

    println!(
        "naive: {:.0} interactions/s ({} in {:.3}s, stabilised={})",
        naive.interactions_per_sec(),
        naive.interactions,
        naive.seconds,
        naive.stabilised
    );
    println!(
        "leap:  {:.0} interactions/s ({} in {:.3}s, {} effective, stabilised={})",
        leap.interactions_per_sec(),
        leap.interactions,
        leap.seconds,
        leap.effective_interactions,
        leap.stabilised
    );

    assert!(
        leap.stabilised,
        "leap must stabilise within the protocol budget"
    );
    assert!(
        leap.interactions_per_sec() >= naive.interactions_per_sec(),
        "leap ({:.0}/s) slower than naive ({:.0}/s)",
        leap.interactions_per_sec(),
        naive.interactions_per_sec()
    );
}
