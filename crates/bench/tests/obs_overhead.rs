//! CI guard for the observability overhead contract: a leap run with
//! the convergence-phase probe attached must stay within 2% of the
//! `NullObserver` baseline. The probe only classifies counts at
//! log-spaced checkpoints (interaction numbers 1, 2, 4, 8, …), so its
//! steady-state cost is a single branch per observer callback — the
//! hot kernel loops themselves are untouched by pp-obs/pp-sweep
//! timelines. Timing-sensitive, so `#[ignore]`d by default and run in
//! release mode by the CI step `cargo test --release -p pp-bench --
//! --ignored`.

use pp_engine::population::{CountPopulation, Population};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::Simulator;
use pp_engine::PhaseProbe;
use pp_protocols::kpartition::UniformKPartition;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of one leap run to stability, in seconds.
/// Minimum (not mean) so scheduler noise and cache warm-up inflate
/// neither side of the comparison.
fn best_leap_seconds(
    kp: &UniformKPartition,
    n: u64,
    seed: u64,
    reps: usize,
    with_probe: bool,
) -> f64 {
    let proto = kp.compile();
    let criterion = kp.stable_signature(n);
    let budget = kp.interaction_budget(n);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let t0 = Instant::now();
        let interactions = if with_probe {
            let mut probe = PhaseProbe::for_protocol(&proto).expect("ukp classifies");
            let r = Simulator::new(&proto)
                .run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut probe)
                .expect("cell stabilises");
            probe.finish(r.interactions, pop.counts());
            black_box(probe.segments().len());
            r.interactions
        } else {
            let r = Simulator::new(&proto)
                .run_leap_observed(
                    &mut pop,
                    &mut sched,
                    &criterion,
                    budget,
                    &mut pp_engine::observer::NullObserver,
                )
                .expect("cell stabilises");
            r.interactions
        };
        black_box(interactions);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
#[ignore = "timing-sensitive; CI runs it in release mode via -- --ignored"]
fn phase_probe_overhead_within_two_percent() {
    let (k, n, seed, reps) = (8usize, 10_000u64, 20180725u64, 9);
    let kp = UniformKPartition::new(k);
    // Interleave a warm-up of each variant before timed reps so neither
    // side pays one-time costs (page faults, branch training).
    let _ = best_leap_seconds(&kp, n, seed, 1, false);
    let _ = best_leap_seconds(&kp, n, seed, 1, true);
    let baseline = best_leap_seconds(&kp, n, seed, reps, false);
    let probed = best_leap_seconds(&kp, n, seed, reps, true);

    let overhead = probed / baseline - 1.0;
    println!(
        "leap k={k} n={n}: baseline {:.6}s, phase-probe {:.6}s, overhead {:+.2}%",
        baseline,
        probed,
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "phase probe costs {:.2}% on the leap kernel (contract: <= 2%)",
        overhead * 100.0
    );
}
