//! CI smoke test for the batch kernel's headline claim: in the giant-n
//! regime the tau-leap kernel must stabilise a population no other
//! kernel can touch, inside a wall-clock budget, and with throughput far
//! beyond the leap kernel's. Timing-sensitive, so it is `#[ignore]`d by
//! default and run in release mode by the CI step
//! `cargo test --release -p pp-bench -- --ignored`.

use pp_bench::kernelbench::{measure, BenchKernel};
use pp_protocols::kpartition::UniformKPartition;

/// Giant-n batch smoke: k = 8, n = 10⁷ to stability. The wall budget is
/// deliberately loose — 300 s for a run that takes ~90 s on a dev box,
/// since CI machines vary; the throughput floor is the
/// ISSUE's acceptance bar — at least 50× the leap kernel's scheduler
/// interactions per second measured on an n = 10⁵ cell in the same
/// process. The expected margin is orders of magnitude, so the factor-50
/// assertion has huge slack against machine noise.
#[test]
#[ignore = "timing-sensitive; CI runs it in release mode via -- --ignored"]
fn batch_stabilises_ten_million_agents_within_wall_budget() {
    const WALL_BUDGET_SECS: f64 = 300.0;
    let (k, seed) = (8usize, 20180725u64);

    let leap_n = 100_000u64;
    let leap_budget = UniformKPartition::new(k).interaction_budget(leap_n);
    let leap = measure(BenchKernel::Leap, k, leap_n, leap_budget, seed);
    assert!(leap.stabilised, "leap reference cell must stabilise");

    let n = 10_000_000u64;
    let budget = UniformKPartition::new(k).interaction_budget(n);
    let batch = measure(BenchKernel::Batch, k, n, budget, seed);

    println!(
        "leap@1e5:  {:.3e} interactions/s ({} in {:.3}s)",
        leap.interactions_per_sec(),
        leap.interactions,
        leap.seconds
    );
    println!(
        "batch@1e7: {:.3e} interactions/s ({} in {:.3}s, {} effective, stabilised={})",
        batch.interactions_per_sec(),
        batch.interactions,
        batch.seconds,
        batch.effective_interactions,
        batch.stabilised
    );

    assert!(
        batch.stabilised,
        "batch must stabilise n=1e7 within the protocol budget"
    );
    assert!(
        batch.seconds <= WALL_BUDGET_SECS,
        "batch took {:.1}s, over the {WALL_BUDGET_SECS}s wall budget",
        batch.seconds
    );
    assert!(
        batch.interactions_per_sec() >= 50.0 * leap.interactions_per_sec(),
        "batch ({:.3e}/s) under 50x leap reference ({:.3e}/s)",
        batch.interactions_per_sec(),
        leap.interactions_per_sec()
    );
}
