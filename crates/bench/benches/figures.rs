//! Criterion benchmarks, one group per paper artifact.
//!
//! These measure the *wall-clock cost of regenerating* each figure's data
//! points (the full-fidelity runs live in the `fig3..fig6` binaries;
//! here each group benches representative cells at reduced trial counts
//! so `cargo bench` finishes in minutes). Regressions here mean the
//! reproduction pipeline — protocol table, sampler, stability check —
//! got slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_analysis::experiments::{kpartition_cell, kpartition_grouping_cell};
use pp_analysis::runner::{run_trials_full, TrialConfig};
use pp_engine::stability::Silent;
use pp_protocols::hierarchical::HierarchicalPartition;
use pp_protocols::kpartition::ablation::BasicStrategyKPartition;

const TRIALS: usize = 5;
const SEED: u64 = 20_180_725;

/// Figure 3 cells: n-sweep at k ∈ {4, 6, 8} (one low, one high n each).
fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for &(k, n) in &[(4usize, 24u64), (4, 96), (6, 96), (8, 96)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| b.iter(|| kpartition_cell(k, n, TRIALS, SEED)),
        );
    }
    g.finish();
}

/// Figure 4 cells: the instrumented (observer-carrying) variant.
fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for &(k, n) in &[(4usize, 48u64), (6, 48)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| b.iter(|| kpartition_grouping_cell(k, n, TRIALS, SEED)),
        );
    }
    g.finish();
}

/// Figure 5 cells: large-n, n mod k = 0.
fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for &(k, n) in &[(3usize, 120u64), (6, 120), (3, 360)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| b.iter(|| kpartition_cell(k, n, TRIALS, SEED)),
        );
    }
    g.finish();
}

/// Figure 6 cells: fixed n = 960, growing k (the exponential axis).
/// Trials reduced further — these are the heaviest points.
fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for &k in &[2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            b.iter(|| kpartition_cell(k, 960, 2, SEED))
        });
    }
    g.finish();
}

/// Ablation + baseline pipelines (the non-figure experiment binaries).
fn ablation_and_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_baselines");
    g.sample_size(10);
    g.bench_function("basic_strategy_k4_n24", |b| {
        let bp = BasicStrategyKPartition::new(4);
        let proto = bp.compile();
        b.iter(|| {
            run_trials_full(
                &proto,
                24,
                &Silent,
                TrialConfig {
                    trials: TRIALS,
                    master_seed: SEED,
                    max_interactions: 1_000_000_000,
                },
            )
        })
    });
    g.bench_function("hierarchical_k8_n96", |b| {
        let hp = HierarchicalPartition::composed(3);
        let proto = hp.compile();
        let crit = hp.stability();
        b.iter(|| {
            run_trials_full(
                &proto,
                96,
                &crit,
                TrialConfig {
                    trials: TRIALS,
                    master_seed: SEED,
                    max_interactions: 1_000_000_000,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, fig3, fig4, fig5, fig6, ablation_and_baselines);
criterion_main!(benches);
