//! Engine micro-benchmarks: the hot-loop primitives whose cost
//! multiplies into every experiment — weighted pair sampling, the
//! interaction step for both population representations, and the
//! stability criteria.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_engine::population::{AgentPopulation, CountPopulation, Population};
use pp_engine::scheduler::{AgentScheduler, PairScheduler, UniformRandomScheduler};
use pp_engine::simulator::Simulator;
use pp_engine::stability::{GroupClosure, Never, Signature, Silent, StabilityCriterion};
use pp_protocols::kpartition::UniformKPartition;
use std::hint::black_box;

/// 10k interactions of the k-partition protocol on the count
/// representation, across k (state-count scaling of the sampler's O(|Q|)
/// scan).
fn count_population_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_steps_10k");
    for &k in &[4usize, 8, 16] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        g.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, _| {
            b.iter(|| {
                let mut pop = CountPopulation::new(&proto, 960);
                let mut sched = UniformRandomScheduler::from_seed(1);
                Simulator::new(&proto).run_fixed(
                    &mut pop,
                    &mut sched,
                    10_000,
                    &mut pp_engine::observer::NullObserver,
                );
                black_box(pop.counts()[0])
            })
        });
    }
    g.finish();
}

/// The same 10k interactions on the per-agent representation.
fn agent_population_steps(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    c.bench_function("agent_steps_10k_k8", |b| {
        b.iter(|| {
            let mut pop = AgentPopulation::new(&proto, 960);
            let mut sched = UniformRandomScheduler::from_seed(1);
            let _ = Simulator::new(&proto).run_agents(&mut pop, &mut sched, &Never, 10_000);
            black_box(pop.counts()[0])
        })
    });
}

/// Raw sampling cost (no transition application).
fn pair_sampling(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 960);
    // Spread agents over several states so the scan does real work.
    pop.set_count(kp.initial(), 300);
    pop.set_count(kp.g(1), 200);
    pop.set_count(kp.g(8), 200);
    pop.set_count(kp.m(2), 260);
    let apop = AgentPopulation::new(&proto, 960);
    c.bench_function("sample_pair_count", |b| {
        let mut sched = UniformRandomScheduler::from_seed(2);
        b.iter(|| black_box(sched.select_pair(&pop)))
    });
    c.bench_function("sample_pair_agent", |b| {
        let mut sched = UniformRandomScheduler::from_seed(2);
        b.iter(|| black_box(sched.select_agents(&apop)))
    });
}

/// Stability criteria on a mid-run configuration: the Signature check is
/// the per-effective-interaction cost of every figure run; Silent and
/// GroupClosure are the generic alternatives.
fn stability_checks(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 960);
    pop.set_count(kp.initial(), 400);
    pop.set_count(kp.g(1), 280);
    pop.set_count(kp.m(2), 280);
    let sig = kp.stable_signature(960);
    c.bench_function("criterion_signature", |b| {
        b.iter(|| black_box(sig.is_stable(&proto, pop.counts())))
    });
    c.bench_function("criterion_silent", |b| {
        b.iter(|| black_box(Silent.is_stable(&proto, pop.counts())))
    });
    c.bench_function("criterion_group_closure", |b| {
        let gc = GroupClosure::default();
        b.iter(|| black_box(gc.is_stable(&proto, pop.counts())))
    });
    // And at the stable configuration, where the closure search actually
    // runs (r = 0 here, so the closure is a single configuration).
    let mut stable = CountPopulation::new(&proto, 0);
    for x in 1..=8 {
        stable.set_count(kp.g(x), 120);
    }
    c.bench_function("criterion_group_closure_at_stable", |b| {
        let gc = GroupClosure::default();
        b.iter(|| black_box(gc.is_stable(&proto, stable.counts())))
    });
    let _ = Signature::exact(vec![0; proto.num_states()]);
}

/// Protocol compilation cost (table construction), across k.
fn compilation(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for &k in &[4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            b.iter(|| black_box(UniformKPartition::new(k).compile()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    count_population_steps,
    agent_population_steps,
    pair_sampling,
    stability_checks,
    compilation
);
criterion_main!(benches);
