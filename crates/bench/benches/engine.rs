//! Engine micro-benchmarks: the hot-loop primitives whose cost
//! multiplies into every experiment — weighted pair sampling, the
//! interaction step for both population representations, the stability
//! criteria, and the naive-vs-leap kernel comparison whose numbers land
//! in `BENCH_engine.json` at the workspace root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pp_bench::kernelbench::{measure, BenchKernel, KernelMeasurement};
use pp_engine::population::{AgentPopulation, CountPopulation, Population};
use pp_engine::scheduler::{AgentScheduler, PairScheduler, UniformRandomScheduler};
use pp_engine::simulator::Simulator;
use pp_engine::stability::{GroupClosure, Never, Signature, Silent, StabilityCriterion};
use pp_protocols::kpartition::UniformKPartition;
use std::hint::black_box;

/// 10k interactions of the k-partition protocol on the count
/// representation, across k (state-count scaling of the sampler's O(|Q|)
/// scan).
fn count_population_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_steps_10k");
    for &k in &[4usize, 8, 16] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        g.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, _| {
            b.iter(|| {
                let mut pop = CountPopulation::new(&proto, 960);
                let mut sched = UniformRandomScheduler::from_seed(1);
                Simulator::new(&proto).run_fixed(
                    &mut pop,
                    &mut sched,
                    10_000,
                    &mut pp_engine::observer::NullObserver,
                );
                black_box(pop.counts()[0])
            })
        });
    }
    g.finish();
}

/// The same 10k interactions on the per-agent representation.
fn agent_population_steps(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    c.bench_function("agent_steps_10k_k8", |b| {
        b.iter(|| {
            let mut pop = AgentPopulation::new(&proto, 960);
            let mut sched = UniformRandomScheduler::from_seed(1);
            let _ = Simulator::new(&proto).run_agents(&mut pop, &mut sched, &Never, 10_000);
            black_box(pop.counts()[0])
        })
    });
}

/// Raw sampling cost (no transition application).
fn pair_sampling(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 960);
    // Spread agents over several states so the scan does real work.
    pop.set_count(kp.initial(), 300);
    pop.set_count(kp.g(1), 200);
    pop.set_count(kp.g(8), 200);
    pop.set_count(kp.m(2), 260);
    let apop = AgentPopulation::new(&proto, 960);
    c.bench_function("sample_pair_count", |b| {
        let mut sched = UniformRandomScheduler::from_seed(2);
        b.iter(|| black_box(sched.select_pair(&pop)))
    });
    c.bench_function("sample_pair_agent", |b| {
        let mut sched = UniformRandomScheduler::from_seed(2);
        b.iter(|| black_box(sched.select_agents(&apop)))
    });
}

/// Stability criteria on a mid-run configuration: the Signature check is
/// the per-effective-interaction cost of every figure run; Silent and
/// GroupClosure are the generic alternatives.
fn stability_checks(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, 960);
    pop.set_count(kp.initial(), 400);
    pop.set_count(kp.g(1), 280);
    pop.set_count(kp.m(2), 280);
    let sig = kp.stable_signature(960);
    c.bench_function("criterion_signature", |b| {
        b.iter(|| black_box(sig.is_stable(&proto, pop.counts())))
    });
    c.bench_function("criterion_silent", |b| {
        b.iter(|| black_box(Silent.is_stable(&proto, pop.counts())))
    });
    c.bench_function("criterion_group_closure", |b| {
        let gc = GroupClosure::default();
        b.iter(|| black_box(gc.is_stable(&proto, pop.counts())))
    });
    // And at the stable configuration, where the closure search actually
    // runs (r = 0 here, so the closure is a single configuration).
    let mut stable = CountPopulation::new(&proto, 0);
    for x in 1..=8 {
        stable.set_count(kp.g(x), 120);
    }
    c.bench_function("criterion_group_closure_at_stable", |b| {
        let gc = GroupClosure::default();
        b.iter(|| black_box(gc.is_stable(&proto, stable.counts())))
    });
    let _ = Signature::exact(vec![0; proto.num_states()]);
}

/// Protocol compilation cost (table construction), across k.
fn compilation(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for &k in &[4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            b.iter(|| black_box(UniformKPartition::new(k).compile()))
        });
    }
    g.finish();
}

/// Naive vs leap, whole runs to stability (k = 8). The naive loop pays
/// for every scheduler draw, the leap kernel skips identity runs in
/// O(1); at n = 1000 both stabilise in bench-friendly time.
fn kernel_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_to_stability_k8");
    g.sample_size(3);
    let budget = UniformKPartition::new(8).interaction_budget(1_000);
    g.bench_function("naive/n1000", |b| {
        b.iter(|| black_box(measure(BenchKernel::Naive, 8, 1_000, budget, 1)))
    });
    g.bench_function("leap/n1000", |b| {
        b.iter(|| black_box(measure(BenchKernel::Leap, 8, 1_000, budget, 1)))
    });
    let budget_big = UniformKPartition::new(8).interaction_budget(100_000);
    g.bench_function("leap/n100000", |b| {
        b.iter(|| black_box(measure(BenchKernel::Leap, 8, 100_000, budget_big, 1)))
    });
    g.finish();
}

/// Overhead guard for the telemetry subsystem: a leap run to stability
/// with a [`pp_engine::TelemetryObserver`] attached must stay within
/// noise of the [`NullObserver`] baseline. The observer keeps plain
/// (non-atomic) tallies during the run and flushes to the shared
/// registry once on drop, so the difference should be unmeasurable; if
/// these two bars diverge, the overhead contract in DESIGN.md is broken.
fn telemetry_overhead(c: &mut Criterion) {
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    let criterion = kp.stable_signature(1_000);
    let budget = kp.interaction_budget(1_000);
    let mut g = c.benchmark_group("telemetry_overhead_leap_k8_n1000");
    g.sample_size(10);
    g.bench_function("null_observer", |b| {
        b.iter(|| {
            let mut pop = CountPopulation::new(&proto, 1_000);
            let mut sched = UniformRandomScheduler::from_seed(5);
            let r = Simulator::new(&proto)
                .run_leap_observed(
                    &mut pop,
                    &mut sched,
                    &criterion,
                    budget,
                    &mut pp_engine::observer::NullObserver,
                )
                .expect("bench cell stabilises");
            black_box(r.interactions)
        })
    });
    g.bench_function("telemetry_observer", |b| {
        b.iter(|| {
            let mut pop = CountPopulation::new(&proto, 1_000);
            let mut sched = UniformRandomScheduler::from_seed(5);
            let mut tel = pp_engine::TelemetryObserver::new();
            let r = Simulator::new(&proto)
                .run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut tel)
                .expect("bench cell stabilises");
            black_box(r.interactions)
        })
    });
    g.finish();
}

/// Same contract as `telemetry_overhead`: the trace recorder must stay
/// cheap enough to leave on during sweeps. `disabled` measures the
/// one-branch-per-callback cost of a recorder that is present but off;
/// `trace_recorder` measures full encoding (the final `finish` +
/// checksum included, since that is what a traced cell pays).
fn trace_overhead(c: &mut Criterion) {
    use pp_trace::{TraceKernel, TraceRecorder};
    let kp = UniformKPartition::new(8);
    let proto = kp.compile();
    let criterion = kp.stable_signature(1_000);
    let budget = kp.interaction_budget(1_000);
    let mut g = c.benchmark_group("trace_overhead_leap_k8_n1000");
    g.sample_size(10);
    g.bench_function("null_observer", |b| {
        b.iter(|| {
            let mut pop = CountPopulation::new(&proto, 1_000);
            let mut sched = UniformRandomScheduler::from_seed(5);
            let r = Simulator::new(&proto)
                .run_leap_observed(
                    &mut pop,
                    &mut sched,
                    &criterion,
                    budget,
                    &mut pp_engine::observer::NullObserver,
                )
                .expect("bench cell stabilises");
            black_box(r.interactions)
        })
    });
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut pop = CountPopulation::new(&proto, 1_000);
            let mut sched = UniformRandomScheduler::from_seed(5);
            let mut rec = TraceRecorder::disabled();
            let r = Simulator::new(&proto)
                .run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut rec)
                .expect("bench cell stabilises");
            black_box(r.interactions)
        })
    });
    g.bench_function("trace_recorder", |b| {
        b.iter(|| {
            let mut pop = CountPopulation::new(&proto, 1_000);
            let mut sched = UniformRandomScheduler::from_seed(5);
            let mut rec = TraceRecorder::for_run(&proto, &pop, 5, TraceKernel::Leap);
            let r = Simulator::new(&proto)
                .run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut rec)
                .expect("bench cell stabilises");
            black_box((r.interactions, rec.finish(pop.counts()).len()))
        })
    });
    g.finish();
}

/// One JSON record per measured kernel run.
fn measurement_json(m: &KernelMeasurement) -> pp_sweep::json::Value {
    use pp_sweep::json::Value;
    Value::obj([
        ("kernel", Value::Str(m.kernel.label().to_string())),
        ("interactions", Value::U64(m.interactions)),
        (
            "effective_interactions",
            Value::U64(m.effective_interactions),
        ),
        ("micros", Value::U64((m.seconds * 1e6) as u64)),
        (
            "interactions_per_sec",
            Value::U64(m.interactions_per_sec() as u64),
        ),
        ("stabilised", Value::Bool(m.stabilised)),
    ])
}

/// Measure both kernels at n ∈ {10³, 10⁵} and write `BENCH_engine.json`
/// at the workspace root. The naive run at n = 10⁵ is capped (censored)
/// at 20M interactions while the leap runs go to stability, so the two
/// runs did *different amounts of work*: their wall times are not
/// comparable and a wall-clock "speedup" would overstate the leap kernel
/// by exactly the censoring ratio. Each cell therefore carries an
/// explicit `censored` flag, the throughput ratio (per-interaction cost
/// is flat, so interactions/sec stays honest under censoring) as
/// `speedup` with its basis spelled out, and a wall-clock ratio only on
/// cells where both kernels completed the same run.
fn emit_bench_json() {
    use pp_sweep::json::Value;
    const K: usize = 8;
    const SEED: u64 = 20180725;
    let mut cells = Vec::new();
    for &(n, naive_budget) in &[(1_000u64, u64::MAX), (100_000, 20_000_000)] {
        let budget = UniformKPartition::new(K).interaction_budget(n);
        let naive = measure(BenchKernel::Naive, K, n, naive_budget.min(budget), SEED);
        let leap = measure(BenchKernel::Leap, K, n, budget, SEED);
        let censored = !(naive.stabilised && leap.stabilised);
        let speedup = leap.interactions_per_sec() / naive.interactions_per_sec().max(1e-12);
        println!(
            "kernel_json/n{n}: naive {:.3e}/s, leap {:.3e}/s — {speedup:.1}x throughput{}",
            naive.interactions_per_sec(),
            leap.interactions_per_sec(),
            if censored { " (censored cell)" } else { "" }
        );
        let mut fields = vec![
            ("n", Value::U64(n)),
            ("naive", measurement_json(&naive)),
            ("leap", measurement_json(&leap)),
            ("censored", Value::Bool(censored)),
            ("speedup", Value::U64(speedup as u64)),
            (
                "speedup_basis",
                Value::Str("interactions_per_sec".to_string()),
            ),
        ];
        if !censored {
            // Both kernels completed the task (run to stability), so
            // end-to-end wall times are comparable. The kernels consume
            // randomness differently, so this is one draw of the
            // to-stability time per kernel, not a matched-path ratio.
            let wall = naive.seconds / leap.seconds.max(1e-12);
            fields.push(("wall_speedup", Value::U64(wall as u64)));
        }
        cells.push(Value::obj(fields));
    }
    let doc = Value::obj([
        ("bench", Value::Str("kernel_throughput".to_string())),
        ("k", Value::U64(K as u64)),
        ("seed", Value::U64(SEED)),
        ("cells", Value::Arr(cells)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, doc.encode() + "\n").expect("write BENCH_engine.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    count_population_steps,
    agent_population_steps,
    pair_sampling,
    stability_checks,
    compilation,
    kernel_throughput,
    telemetry_overhead,
    trace_overhead
);

fn main() {
    benches();
    emit_bench_json();
}
