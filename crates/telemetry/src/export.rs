//! Snapshot, JSONL export/import, and the human-readable summary table.
//!
//! A [`Snapshot`] is a point-in-time copy of every series in a registry.
//! The JSONL form writes one JSON object per line so downstream tooling
//! can stream-parse it (and a truncated file still yields every complete
//! line); the whole format is integer-only, matching [`crate::json`].
//!
//! Line shapes:
//!
//! ```text
//! {"kind":"counter","name":"engine.interactions","value":123}
//! {"kind":"gauge","name":"sweep.shard.workers","value":8}
//! {"kind":"histogram","name":"engine.identity_run_len","count":9,"sum":512,
//!  "max":256,"buckets":[[1,4],[256,5]]}
//! ```
//!
//! Histogram buckets are `[lo, count]` pairs for non-empty buckets only,
//! where `lo` is the inclusive lower bound of the log₂ bucket. Labelled
//! series carry a `"labels":{...}` object.

use crate::json::Value;
use crate::metrics::{bucket_lo, HISTOGRAM_BUCKETS};
use crate::registry::{Entry, Metric, Registry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Point-in-time values of one metric series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Base metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub data: MetricData,
}

/// Captured value of a metric, by kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricData {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram aggregate plus non-empty `[bucket_lo, count]` pairs.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples (saturating).
        sum: u64,
        /// Largest sample.
        max: u64,
        /// `(bucket lower bound, sample count)` for non-empty buckets.
        buckets: Vec<(u64, u64)>,
    },
}

/// A point-in-time copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// One entry per registered series, in deterministic key order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Capture every series in `reg`.
    pub fn capture(reg: &Registry) -> Snapshot {
        let metrics = reg
            .entries()
            .into_iter()
            .map(
                |Entry {
                     name,
                     labels,
                     metric,
                 }| {
                    let data = match metric {
                        Metric::Counter(c) => MetricData::Counter(c.get()),
                        Metric::Gauge(g) => MetricData::Gauge(g.get()),
                        Metric::Histogram(h) => {
                            let buckets = h
                                .buckets()
                                .iter()
                                .enumerate()
                                .filter(|(_, &c)| c != 0)
                                .map(|(b, &c)| (bucket_lo(b), c))
                                .collect();
                            MetricData::Histogram {
                                count: h.count(),
                                sum: h.sum(),
                                max: h.max(),
                                buckets,
                            }
                        }
                    };
                    MetricSnapshot { name, labels, data }
                },
            )
            .collect();
        Snapshot { metrics }
    }

    /// Capture the process-wide registry.
    pub fn capture_global() -> Snapshot {
        Snapshot::capture(crate::registry::global())
    }

    /// Look up a series by base name (first match; unlabelled series
    /// have unique names).
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Counter/gauge value by name, if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        match &self.get(name)?.data {
            MetricData::Counter(v) | MetricData::Gauge(v) => Some(*v),
            MetricData::Histogram { .. } => None,
        }
    }

    /// Encode as JSONL, one series per line, trailing newline included.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&m.to_json().encode());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL form to `path` (atomic enough for our purposes:
    /// single writer at end of run).
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// Parse a JSONL export back into a snapshot. Fails on the first
    /// malformed line (blank lines are skipped).
    pub fn from_jsonl(text: &str) -> Result<Snapshot, String> {
        let mut metrics = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            metrics
                .push(MetricSnapshot::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(Snapshot { metrics })
    }

    /// Read and parse a JSONL export from `path`.
    pub fn read_jsonl(path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Snapshot::from_jsonl(&text)
    }

    /// Render a fixed-width summary table for terminals.
    ///
    /// Counters and gauges print one row each; histograms print
    /// count/mean/max. Labelled series are listed under their base name.
    pub fn summary_table(&self) -> String {
        if self.metrics.is_empty() {
            return "(no metrics recorded)\n".to_string();
        }
        let mut rows: Vec<(String, String, String)> = Vec::new();
        for m in &self.metrics {
            let mut name = m.name.clone();
            if !m.labels.is_empty() {
                name.push('{');
                for (i, (k, v)) in m.labels.iter().enumerate() {
                    if i > 0 {
                        name.push(',');
                    }
                    let _ = write!(name, "{k}={v}");
                }
                name.push('}');
            }
            let (kind, value) = match &m.data {
                MetricData::Counter(v) => ("counter", v.to_string()),
                MetricData::Gauge(v) => ("gauge", v.to_string()),
                MetricData::Histogram {
                    count, sum, max, ..
                } => {
                    let mean = if *count == 0 { 0 } else { sum / count };
                    ("histogram", format!("count={count} mean={mean} max={max}"))
                }
            };
            rows.push((name, kind.to_string(), value));
        }
        let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max(6);
        let kind_w = 9;
        let mut out = String::new();
        let _ = writeln!(out, "{:<name_w$}  {:<kind_w$}  value", "metric", "kind");
        let _ = writeln!(out, "{}  {}  -----", "-".repeat(name_w), "-".repeat(kind_w));
        for (name, kind, value) in rows {
            let _ = writeln!(out, "{name:<name_w$}  {kind:<kind_w$}  {value}");
        }
        out
    }
}

impl MetricSnapshot {
    /// JSON form of one series (see module docs for the line shapes).
    pub fn to_json(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Value::Str(self.name.clone()));
        if !self.labels.is_empty() {
            let labels = self
                .labels
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect();
            obj.insert("labels".to_string(), Value::Obj(labels));
        }
        match &self.data {
            MetricData::Counter(v) => {
                obj.insert("kind".to_string(), Value::Str("counter".into()));
                obj.insert("value".to_string(), Value::U64(*v));
            }
            MetricData::Gauge(v) => {
                obj.insert("kind".to_string(), Value::Str("gauge".into()));
                obj.insert("value".to_string(), Value::U64(*v));
            }
            MetricData::Histogram {
                count,
                sum,
                max,
                buckets,
            } => {
                obj.insert("kind".to_string(), Value::Str("histogram".into()));
                obj.insert("count".to_string(), Value::U64(*count));
                obj.insert("sum".to_string(), Value::U64(*sum));
                obj.insert("max".to_string(), Value::U64(*max));
                obj.insert(
                    "buckets".to_string(),
                    Value::Arr(
                        buckets
                            .iter()
                            .map(|(lo, c)| Value::u64_arr([*lo, *c]))
                            .collect(),
                    ),
                );
            }
        }
        Value::Obj(obj)
    }

    /// Parse one exported line back.
    pub fn from_json(v: &Value) -> Result<MetricSnapshot, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing name")?
            .to_string();
        let labels = match v.get("labels") {
            None => Vec::new(),
            Some(Value::Obj(m)) => m
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("label {k:?} is not a string"))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err("labels is not an object".into()),
        };
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing kind")?;
        let data = match kind {
            "counter" => MetricData::Counter(
                v.get("value")
                    .and_then(Value::as_u64)
                    .ok_or("missing value")?,
            ),
            "gauge" => MetricData::Gauge(
                v.get("value")
                    .and_then(Value::as_u64)
                    .ok_or("missing value")?,
            ),
            "histogram" => {
                let count = v
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or("missing count")?;
                let sum = v.get("sum").and_then(Value::as_u64).ok_or("missing sum")?;
                let max = v.get("max").and_then(Value::as_u64).ok_or("missing max")?;
                let buckets = v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or("missing buckets")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr().ok_or("bucket is not a pair")?;
                        match pair {
                            [lo, c] => Ok((
                                lo.as_u64().ok_or("bucket lo not u64")?,
                                c.as_u64().ok_or("bucket count not u64")?,
                            )),
                            _ => Err("bucket is not a pair".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                if buckets.len() > HISTOGRAM_BUCKETS {
                    return Err("too many buckets".into());
                }
                MetricData::Histogram {
                    count,
                    sum,
                    max,
                    buckets,
                }
            }
            other => return Err(format!("unknown metric kind {other:?}")),
        };
        Ok(MetricSnapshot { name, labels, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("engine.interactions").add(1234);
        reg.counter("engine.effective_interactions").add(400);
        reg.gauge("sweep.shard.workers").set(8);
        let h = reg.histogram("engine.identity_run_len");
        for v in [0u64, 1, 5, 5, 1024, u64::MAX] {
            h.record(v);
        }
        reg.counter_with("sweep.cell.trials", &[("cell", "fig3_k4_n96")])
            .add(20);
        reg
    }

    #[test]
    fn jsonl_round_trip() {
        // Satellite: an exported snapshot survives encode → parse intact.
        let snap = Snapshot::capture(&sample_registry());
        let text = snap.to_jsonl();
        let back = Snapshot::from_jsonl(&text).expect("parse own export");
        assert_eq!(back, snap);
        // And the round-trip is byte-stable.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_file_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "pp-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("metrics.jsonl");
        let snap = Snapshot::capture(&sample_registry());
        snap.write_jsonl(&path).expect("write");
        let back = Snapshot::read_jsonl(&path).expect("read");
        assert_eq!(back, snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_lookup_and_values() {
        let snap = Snapshot::capture(&sample_registry());
        assert_eq!(snap.value("engine.interactions"), Some(1234));
        assert_eq!(snap.value("sweep.shard.workers"), Some(8));
        assert_eq!(snap.value("engine.identity_run_len"), None); // histogram
        assert!(snap.get("no.such.metric").is_none());
        let MetricData::Histogram { count, max, .. } =
            &snap.get("engine.identity_run_len").unwrap().data
        else {
            panic!("expected histogram");
        };
        assert_eq!(*count, 6);
        assert_eq!(*max, u64::MAX);
    }

    #[test]
    fn histogram_buckets_export_as_lo_count_pairs() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(u64::MAX);
        let snap = Snapshot::capture(&reg);
        let MetricData::Histogram { buckets, .. } = &snap.get("h").unwrap().data else {
            panic!("expected histogram");
        };
        assert_eq!(buckets, &[(0, 1), (1, 2), (1u64 << 63, 1)]);
    }

    #[test]
    fn labels_survive_round_trip() {
        let snap = Snapshot::capture(&sample_registry());
        let labelled = snap
            .metrics
            .iter()
            .find(|m| !m.labels.is_empty())
            .expect("labelled series present");
        assert_eq!(labelled.name, "sweep.cell.trials");
        assert_eq!(
            labelled.labels,
            [("cell".to_string(), "fig3_k4_n96".to_string())]
        );
        let back = Snapshot::from_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Snapshot::from_jsonl("not json\n").is_err());
        assert!(Snapshot::from_jsonl("{\"name\":\"x\"}\n").is_err()); // missing kind
        assert!(Snapshot::from_jsonl("{\"kind\":\"counter\",\"name\":\"x\"}\n").is_err()); // no value
        assert!(Snapshot::from_jsonl("{\"kind\":\"rate\",\"name\":\"x\",\"value\":1}\n").is_err());
        // Blank lines are fine.
        let ok = Snapshot::from_jsonl("\n{\"kind\":\"counter\",\"name\":\"x\",\"value\":1}\n\n");
        assert_eq!(ok.unwrap().value("x"), Some(1));
    }

    #[test]
    fn summary_table_mentions_every_series() {
        let snap = Snapshot::capture(&sample_registry());
        let table = snap.summary_table();
        assert!(table.contains("engine.interactions"));
        assert!(table.contains("sweep.cell.trials{cell=fig3_k4_n96}"));
        assert!(table.contains("count=6"));
        assert_eq!(
            Snapshot::default().summary_table(),
            "(no metrics recorded)\n"
        );
    }
}
