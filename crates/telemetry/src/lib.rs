//! `pp-telemetry`: zero-dependency metrics core for the uniform
//! k-partition workspace.
//!
//! The paper's evaluation is about *where interactions go* — effective
//! vs. identity interactions, per-group completion cost, stabilisation
//! behaviour at scale. This crate provides the counters that answer
//! those questions cheaply enough to leave on during real runs:
//!
//! - [`Counter`] / [`Gauge`] — single `AtomicU64`s, relaxed ordering.
//! - [`Histogram`] — 65 fixed log₂ buckets covering all of `u64`;
//!   [`LocalHistogram`] batches hot-path samples without atomics.
//! - [`SpanTimer`] — RAII wall-clock spans in microseconds.
//! - [`Registry`] — named handles; [`global()`] is the process-wide
//!   instance, tests build their own for isolation.
//! - [`Snapshot`] — JSONL export/import and a terminal summary table.
//! - [`prom`] — Prometheus text exposition of a snapshot (served live by
//!   `pp-serve`'s `GET /metrics`) and a strict format validator.
//!
//! Overhead contract: the engine's hot loops are instrumented through
//! the existing `Observer` trait, never directly — with `NullObserver`
//! the instrumentation monomorphises away entirely, and the telemetry
//! observer itself tallies into plain `u64`s, touching shared atomics
//! only when a run finishes. The `telemetry_overhead` criterion group in
//! `pp-bench` guards this.
//!
//! No floats anywhere: durations are microseconds, ratios are left to
//! consumers, so exports stay exactly representable in the workspace's
//! integer-only JSON (the [`json`] module, which `pp-sweep` re-exports).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod registry;

pub use export::{MetricData, MetricSnapshot, Snapshot};
pub use metrics::{
    bucket_hi, bucket_lo, bucket_of, quantile_from_buckets, Counter, Gauge, Histogram,
    LocalHistogram, SpanTimer, HISTOGRAM_BUCKETS,
};
pub use prom::{to_prometheus, validate_exposition};
pub use registry::{counter, gauge, global, histogram, span, Entry, Metric, Registry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_global_flow() {
        // Names prefixed test.* so they are disjoint from production
        // series even though the global registry is shared across tests.
        counter("test.lib.events").add(2);
        gauge("test.lib.level").set_max(7);
        {
            let _t = span("test.lib.span_micros");
        }
        let snap = Snapshot::capture_global();
        assert!(snap.value("test.lib.events").unwrap() >= 2);
        assert!(snap.value("test.lib.level").unwrap() >= 7);
        let MetricData::Histogram { count, .. } = &snap.get("test.lib.span_micros").unwrap().data
        else {
            panic!("span should register a histogram");
        };
        assert!(*count >= 1);
        let back = Snapshot::from_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(back, snap);
    }
}
