//! The metric registry: named handles to shared counters, gauges, and
//! histograms.
//!
//! A [`Registry`] maps metric names (plus optional labels) to
//! `Arc`-shared primitives. Lookup takes a mutex, so call sites hold on
//! to the returned handle instead of re-resolving per event — the record
//! path then touches only the primitive's atomics. A process-wide
//! instance is available via [`global()`]; tests that need exact counts
//! construct their own `Registry` so parallel test threads cannot bleed
//! into each other's numbers.
//!
//! Naming scheme: `layer.subsystem.metric` in snake_case, e.g.
//! `engine.effective_interactions`, `sweep.cells.cache_hits`,
//! `verify.frontier_peak`. Per-entity series use labels
//! (`sweep.cell.wall_micros{cell=fig3_k4_n96}`) rather than mangled
//! names, so exports can aggregate across the label dimension.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A handle stored in the registry.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Instantaneous value.
    Gauge(Arc<Gauge>),
    /// Log₂-bucketed histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered series: a base name, its labels, and the primitive.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Base metric name (`engine.interactions`).
    pub name: String,
    /// Label pairs, sorted by key; empty for unlabelled metrics.
    pub labels: Vec<(String, String)>,
    /// The shared primitive.
    pub metric: Metric,
}

/// Render the unique registry key for a name + label set.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

/// A collection of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// — that is a naming-scheme bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Labelled counter, e.g. `("sweep.cell.trials", &[("cell", stem)])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.resolve(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.resolve(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.resolve(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn resolve(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let key = series_key(name, &labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        entries
            .entry(key)
            .or_insert_with(|| Entry {
                name: name.to_string(),
                labels,
                metric: make(),
            })
            .metric
            .clone()
    }

    /// All registered series, sorted by key (deterministic export order).
    pub fn entries(&self) -> Vec<Entry> {
        self.entries
            .lock()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reset every registered metric to zero (series stay registered).
    pub fn reset(&self) {
        for e in self.entries() {
            match e.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide registry. All production instrumentation lands
/// here; `pp-sweep run --metrics` exports it at the end of the run.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand: counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand: gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand: histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Shorthand: RAII timer recording into a global-registry histogram.
pub fn span(name: &str) -> crate::metrics::SpanTimer {
    crate::metrics::SpanTimer::new(histogram(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_instance() {
        let reg = Registry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn labels_distinguish_series_and_sort_canonically() {
        let reg = Registry::new();
        let a = reg.counter_with("cell.trials", &[("cell", "a")]);
        let b = reg.counter_with("cell.trials", &[("cell", "b")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 2);
        // Label order must not create distinct series.
        let c1 = reg.counter_with("m", &[("x", "1"), ("y", "2")]);
        let c2 = reg.counter_with("m", &[("y", "2"), ("x", "1")]);
        c1.inc();
        assert_eq!(c2.get(), 1);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("oops");
        let _ = reg.gauge("oops");
    }

    #[test]
    fn entries_are_sorted_and_reset_works() {
        let reg = Registry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").add(5);
        reg.gauge("c.gauge").set(9);
        let names: Vec<String> = reg.entries().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, ["a.first", "b.second", "c.gauge"]);
        reg.reset();
        assert_eq!(reg.counter("a.first").get(), 0);
        assert_eq!(reg.gauge("c.gauge").get(), 0);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn concurrent_registration_and_increment() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        reg.counter("shared.events").inc();
                        reg.counter_with("labelled.events", &[("shard", "0")])
                            .add(i % 2);
                    }
                });
            }
        });
        assert_eq!(reg.counter("shared.events").get(), 800);
        assert_eq!(
            reg.counter_with("labelled.events", &[("shard", "0")]).get(),
            8 * 50
        );
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global().counter("test.registry.global_singleton");
        let b = counter("test.registry.global_singleton");
        a.inc();
        assert!(b.get() >= 1);
    }
}
