//! Minimal JSON encoding/decoding shared by the metrics exporter and the
//! sweep result store.
//!
//! Everything this workspace persists is flat and numeric (counter
//! values, interaction counts, count vectors), so a full serialization
//! framework would be pure overhead — and the offline build environment
//! could not fetch one anyway. This module implements exactly the subset
//! those formats emit: objects, arrays, unsigned 64-bit integers,
//! strings, `null`, and booleans. No floats: everything persisted is
//! integral, which is also what makes re-encoding byte-stable.
//!
//! (Historically this lived in `pp-sweep`; it moved here so the
//! telemetry core stays dependency-free while `pp-sweep` re-exports it
//! unchanged.)

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value (no floats; see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer (encoded with a leading `-`). Non-negative
    /// integers always use [`Value::U64`], so each integer has exactly
    /// one representation and re-encoding stays byte-stable.
    I64(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; `BTreeMap` so encoding order is canonical.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Array of unsigned integers.
    pub fn u64_arr(xs: impl IntoIterator<Item = u64>) -> Value {
        Value::Arr(xs.into_iter().map(Value::U64).collect())
    }

    /// `interactions`-style optional integer.
    pub fn opt_u64(x: Option<u64>) -> Value {
        match x {
            Some(v) => Value::U64(v),
            None => Value::Null,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Unsigned integer contents, if that is what this is.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// Signed integer contents: an `I64` directly, or a `U64` that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// String contents, if that is what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if that is what this is.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(x)` for `U64(x)`, `None` for `Null`; `Err`-like `None`
    /// collapses to `None` as well (callers validate shape separately).
    pub fn as_opt_u64(&self) -> Option<u64> {
        self.as_u64()
    }

    /// Encode to a compact canonical string (object keys sorted).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(x) => {
                let _ = write!(out, "{x}");
            }
            Value::I64(x) => {
                let _ = write!(out, "{x}");
            }
            Value::Str(s) => encode_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; `Err` carries a byte offset and
    /// message. Trailing whitespace is allowed, other trailing content is
    /// an error (journal/JSONL lines must be exactly one value).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }
}

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') | Some(b'-') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        // Reject the float/exponent forms the persisted formats never write.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the persisted format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .ok_or_else(|| self.err("invalid number"))?;
        if negative {
            // Canonical form: negative integers parse to I64, everything
            // else to U64, so parse ∘ encode is the identity.
            text.parse()
                .map(Value::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse()
                .map(Value::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_store_shapes() {
        let v = Value::obj([
            ("key", Value::Str("ukp:k=4|n=96".into())),
            (
                "trials",
                Value::Arr(vec![
                    Value::obj([
                        ("trial", Value::U64(0)),
                        ("interactions", Value::U64(1234)),
                        ("completions", Value::u64_arr([10, 20])),
                        ("final_counts", Value::Null),
                    ]),
                    Value::obj([("trial", Value::U64(1)), ("interactions", Value::Null)]),
                ]),
            ),
        ]);
        let text = v.encode();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let a = Value::obj([("b", Value::U64(1)), ("a", Value::U64(2))]);
        // BTreeMap: keys sorted regardless of insertion order.
        assert_eq!(a.encode(), "{\"a\":2,\"b\":1}");
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        assert!(Value::parse("{\"a\":1").is_err());
        assert!(Value::parse("{\"a\":1} x").is_err());
        assert!(Value::parse("{\"a\":1.5}").is_err());
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{\"a\"").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("line\n\"quote\"\\tab\t\u{1}".into());
        assert_eq!(Value::parse(&v.encode()).unwrap(), v);
    }
}
