//! Metric primitives: atomic counters, gauges, log₂-bucketed histograms,
//! and RAII span timers.
//!
//! Everything here is plain `std::sync::atomic` — no locks on the record
//! path, no allocation after construction, no floats. All exported
//! quantities are `u64` (durations are recorded in microseconds), which
//! keeps snapshots exactly representable in the no-float JSON encoding
//! used across the workspace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64 for
/// `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Map a value to its log₂ bucket index (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `b`.
#[inline]
pub fn bucket_lo(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and per-run snapshots).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written-wins instantaneous value (worker counts, frontier
/// sizes). `set_max` supports high-water-mark gauges updated from
/// several threads.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently lower.
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket resolution (factor-of-two) is deliberate: the quantities we
/// histogram — identity-run lengths, cell wall times — span many orders
/// of magnitude, and the paper-level questions ("are identity runs
/// mostly thousands or millions of steps at this n?") only need the
/// exponent. 65 fixed buckets cover the full `u64` range with no
/// configuration and no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow (2^64 µs ≈ 580k years) would
        // otherwise silently wrap.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts, indexed by bucket.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Integer mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Merge a batch of locally accumulated samples (one atomic RMW per
    /// non-empty bucket instead of one per sample).
    pub fn merge(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (b, &c) in local.buckets.iter().enumerate() {
            if c != 0 {
                self.buckets[b].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(local.sum))
            })
            .ok();
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// Reset all buckets and aggregates to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Unsynchronised histogram for hot-path accumulation on one thread;
/// flush into a shared [`Histogram`] with [`Histogram::merge`].
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// New empty local histogram.
    pub const fn new() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample (no atomics).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// RAII wall-clock timer: records elapsed microseconds into a histogram
/// when dropped.
///
/// ```
/// use pp_telemetry::{Histogram, SpanTimer};
/// use std::sync::Arc;
///
/// let hist = Arc::new(Histogram::new());
/// {
///     let _span = SpanTimer::new(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    hist: std::sync::Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Start timing; the sample lands in `hist` on drop.
    pub fn new(hist: std::sync::Arc<Histogram>) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed so far (the value that will be recorded).
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let elapsed = self.elapsed_micros();
        self.hist.record(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Satellite: exact boundary behaviour. Bucket 0 = {0},
        // bucket b>=1 = [2^(b-1), 2^b - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for b in 1..=63usize {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_of(lo), b, "lower edge of bucket {b}");
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_of(hi), b, "upper edge of bucket {b}");
            assert_eq!(bucket_lo(b), lo);
        }
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_u64_max_without_panicking() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.buckets()[64], 2);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1041);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.mean(), 173);
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 2); // 1, 1
        assert_eq!(b[3], 1); // 7
        assert_eq!(b[4], 1); // 8
        assert_eq!(b[11], 1); // 1024
    }

    #[test]
    fn local_histogram_merge_matches_direct_recording() {
        let direct = Histogram::new();
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 3, 3, 100, u64::MAX] {
            direct.record(v);
            local.record(v);
        }
        shared.merge(&local);
        assert_eq!(shared.count(), direct.count());
        assert_eq!(shared.sum(), direct.sum());
        assert_eq!(shared.max(), direct.max());
        assert_eq!(shared.buckets(), direct.buckets());
    }

    #[test]
    fn concurrent_counter_increments() {
        // Satellite: counters shared across sharded sweep workers must
        // not lose increments.
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_records() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }

    #[test]
    fn gauge_set_and_set_max() {
        let g = Gauge::new();
        g.set(10);
        assert_eq!(g.get(), 10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(20);
        assert_eq!(g.get(), 20);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let t = SpanTimer::new(Arc::clone(&h));
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(t.elapsed_micros() >= 1000);
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1000, "slept 2ms, recorded {}µs", h.max());
    }
}
