//! Metric primitives: atomic counters, gauges, log₂-bucketed histograms,
//! and RAII span timers.
//!
//! Everything here is plain `std::sync::atomic` — no locks on the record
//! path, no allocation after construction, no floats. All exported
//! quantities are `u64` (durations are recorded in microseconds), which
//! keeps snapshots exactly representable in the no-float JSON encoding
//! used across the workspace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64 for
/// `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Map a value to its log₂ bucket index (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `b`.
#[inline]
pub fn bucket_lo(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// Inclusive upper bound of bucket `b`.
#[inline]
pub fn bucket_hi(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// Bucket-interpolated quantile estimate from sparse `(bucket lower
/// bound, sample count)` pairs sorted ascending — exactly the shape the
/// snapshot exporter emits, so quantiles computed live (from a
/// [`Histogram`]) and offline (from `metrics.jsonl` or a `/metrics`
/// scrape) use one estimator and cannot drift.
///
/// The quantile `pct_num / pct_den` (e.g. `50/100` for the median) is
/// resolved by nearest rank, then interpolated inside the owning bucket
/// by assuming its samples sit at the midpoints of `count` equal slices
/// of the bucket's `[lo, hi]` range. All-integer math; returns `None`
/// for an empty histogram or a quantile outside `[0, 1]`.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], pct_num: u64, pct_den: u64) -> Option<u64> {
    if pct_den == 0 || pct_num > pct_den {
        return None;
    }
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let rank = ((pct_num as u128 * total as u128).div_ceil(pct_den as u128)).max(1) as u64;
    let mut seen = 0u64;
    for &(lo, c) in buckets {
        if c != 0 && rank <= seen + c {
            // Log₂ buckets: [0,0] for zeros, else [lo, 2·lo − 1].
            let hi = if lo == 0 {
                0
            } else {
                lo.saturating_mul(2).wrapping_sub(1).max(lo)
            };
            let j = rank - seen; // 1-based position within this bucket
            let offset = ((hi - lo) as u128 * (2 * j as u128 - 1)) / (2 * c as u128);
            return Some(lo + offset as u64);
        }
        seen += c;
    }
    // Sorted non-empty buckets always contain the rank; defensive only.
    buckets.last().map(|&(lo, _)| lo)
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and per-run snapshots).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written-wins instantaneous value (worker counts, frontier
/// sizes). `set_max` supports high-water-mark gauges updated from
/// several threads.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently lower.
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket resolution (factor-of-two) is deliberate: the quantities we
/// histogram — identity-run lengths, cell wall times — span many orders
/// of magnitude, and the paper-level questions ("are identity runs
/// mostly thousands or millions of steps at this n?") only need the
/// exponent. 65 fixed buckets cover the full `u64` range with no
/// configuration and no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow (2^64 µs ≈ 580k years) would
        // otherwise silently wrap.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts, indexed by bucket.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Integer mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Bucket-interpolated quantile `pct_num / pct_den` of the recorded
    /// samples (see [`quantile_from_buckets`]); `None` when empty.
    pub fn quantile(&self, pct_num: u64, pct_den: u64) -> Option<u64> {
        let sparse: Vec<(u64, u64)> = self
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (bucket_lo(b), c))
            .collect();
        quantile_from_buckets(&sparse, pct_num, pct_den)
    }

    /// Merge a batch of locally accumulated samples (one atomic RMW per
    /// non-empty bucket instead of one per sample).
    pub fn merge(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (b, &c) in local.buckets.iter().enumerate() {
            if c != 0 {
                self.buckets[b].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(local.sum))
            })
            .ok();
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// Reset all buckets and aggregates to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Unsynchronised histogram for hot-path accumulation on one thread;
/// flush into a shared [`Histogram`] with [`Histogram::merge`].
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// New empty local histogram.
    pub const fn new() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample (no atomics).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// RAII wall-clock timer: records elapsed microseconds into a histogram
/// when dropped.
///
/// ```
/// use pp_telemetry::{Histogram, SpanTimer};
/// use std::sync::Arc;
///
/// let hist = Arc::new(Histogram::new());
/// {
///     let _span = SpanTimer::new(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    hist: std::sync::Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Start timing; the sample lands in `hist` on drop.
    pub fn new(hist: std::sync::Arc<Histogram>) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed so far (the value that will be recorded).
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let elapsed = self.elapsed_micros();
        self.hist.record(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Satellite: exact boundary behaviour. Bucket 0 = {0},
        // bucket b>=1 = [2^(b-1), 2^b - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for b in 1..=63usize {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_of(lo), b, "lower edge of bucket {b}");
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_of(hi), b, "upper edge of bucket {b}");
            assert_eq!(bucket_lo(b), lo);
        }
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_u64_max_without_panicking() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.buckets()[64], 2);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1041);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.mean(), 173);
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 2); // 1, 1
        assert_eq!(b[3], 1); // 7
        assert_eq!(b[4], 1); // 8
        assert_eq!(b[11], 1); // 1024
    }

    #[test]
    fn local_histogram_merge_matches_direct_recording() {
        let direct = Histogram::new();
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 3, 3, 100, u64::MAX] {
            direct.record(v);
            local.record(v);
        }
        shared.merge(&local);
        assert_eq!(shared.count(), direct.count());
        assert_eq!(shared.sum(), direct.sum());
        assert_eq!(shared.max(), direct.max());
        assert_eq!(shared.buckets(), direct.buckets());
    }

    #[test]
    fn concurrent_counter_increments() {
        // Satellite: counters shared across sharded sweep workers must
        // not lose increments.
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_records() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }

    #[test]
    fn gauge_set_and_set_max() {
        let g = Gauge::new();
        g.set(10);
        assert_eq!(g.get(), 10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(20);
        assert_eq!(g.get(), 20);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let t = SpanTimer::new(Arc::clone(&h));
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(t.elapsed_micros() >= 1000);
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1000, "slept 2ms, recorded {}µs", h.max());
    }

    #[test]
    fn quantile_edges() {
        let h = Histogram::new();
        assert_eq!(h.quantile(50, 100), None); // empty
        h.record(7);
        assert_eq!(h.quantile(0, 100), h.quantile(100, 100)); // single sample
        assert_eq!(h.quantile(50, 0), None); // invalid denominator
        assert_eq!(h.quantile(101, 100), None); // > 1
        let q = h.quantile(50, 100).unwrap();
        assert!((4..=7).contains(&q), "7 lives in bucket [4,7], got {q}");
    }

    #[test]
    fn quantile_is_monotone_and_bucket_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut last = 0;
        for pct in [1, 10, 25, 50, 75, 90, 99, 100] {
            let q = h.quantile(pct, 100).unwrap();
            assert!(q >= last, "p{pct} = {q} < previous {last}");
            last = q;
        }
        // The true median of 1..=1000 is ~500, which lives in [512,1023]'s
        // neighbour [256,511]; bucket resolution allows either bucket.
        let p50 = h.quantile(50, 100).unwrap();
        assert!((256..=1023).contains(&p50), "median estimate {p50}");
        let p100 = h.quantile(100, 100).unwrap();
        assert!((512..=1023).contains(&p100), "max estimate {p100}");
    }

    #[test]
    fn quantile_from_buckets_matches_exact_ranks() {
        // Samples: one zero, three in [2,3], four in [8,15].
        let buckets = [(0u64, 1u64), (2, 3), (8, 4)];
        assert_eq!(quantile_from_buckets(&buckets, 1, 8), Some(0));
        // Rank 4 = last of the [2,3] bucket: midpoint of its 3rd slice.
        let q = quantile_from_buckets(&buckets, 50, 100).unwrap();
        assert!((2..=3).contains(&q));
        // Rank 8 = last of the [8,15] bucket: near its top.
        let q = quantile_from_buckets(&buckets, 100, 100).unwrap();
        assert!((8..=15).contains(&q));
    }

    #[test]
    fn bucket_hi_pairs_with_bucket_lo() {
        assert_eq!(bucket_hi(0), 0);
        for b in 1..64 {
            assert_eq!(
                bucket_hi(b),
                bucket_lo(b + 1).wrapping_sub(1).max(bucket_lo(b))
            );
            assert_eq!(bucket_of(bucket_hi(b)), b);
            assert_eq!(bucket_of(bucket_lo(b)), b);
        }
        assert_eq!(bucket_hi(64), u64::MAX);
    }
}
