//! Prometheus text exposition: render a [`Snapshot`] in the
//! `text/plain; version=0.0.4` format, plus a strict validator used by
//! tests, `pp-serve-load --ci`, and the CI serve smoke job.
//!
//! Rendering stays within the workspace's no-float discipline: every
//! sample value is a `u64`, and histogram `le` bounds are the inclusive
//! integer upper bounds of the log₂ buckets ([`bucket_hi`]), with the
//! mandatory `+Inf` bucket, `_sum`, and `_count` series. Metric names are
//! mangled to the Prometheus charset (`.` → `_`), labels are escaped per
//! the exposition format, and all series of one metric are grouped under
//! a single `# TYPE` line as the format requires.

use crate::export::{MetricData, MetricSnapshot, Snapshot};
use crate::metrics::bucket_hi;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Content-Type value for the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Mangle a workspace metric name (`serve.request.micros`) into the
/// Prometheus charset (`serve_request_micros`).
pub fn mangle_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render `{k="v",...}`; `extra` appends one more pair (the `le` label).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", mangle_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn kind_of(data: &MetricData) -> &'static str {
    match data {
        MetricData::Counter(_) => "counter",
        MetricData::Gauge(_) => "gauge",
        MetricData::Histogram { .. } => "histogram",
    }
}

/// Render `snap` as Prometheus text exposition.
pub fn to_prometheus(snap: &Snapshot) -> String {
    // Group series by mangled metric name: the format requires all
    // samples of a metric to sit together under one # TYPE line.
    let mut by_name: BTreeMap<String, Vec<&MetricSnapshot>> = BTreeMap::new();
    for m in &snap.metrics {
        by_name.entry(mangle_name(&m.name)).or_default().push(m);
    }
    let mut out = String::new();
    for (name, series) in &by_name {
        let kind = kind_of(&series[0].data);
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for m in series {
            match &m.data {
                MetricData::Counter(v) | MetricData::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_block(&m.labels, None));
                }
                MetricData::Histogram {
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    let mut cumulative = 0u64;
                    for &(lo, c) in buckets {
                        cumulative += c;
                        // Inclusive integer upper bound of the log₂ bucket
                        // [lo, 2·lo − 1] ({0} for the zero bucket).
                        let hi = if lo == 0 {
                            0
                        } else {
                            lo.saturating_mul(2).wrapping_sub(1).max(lo)
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            label_block(&m.labels, Some(("le", &hi.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {count}",
                        label_block(&m.labels, Some(("le", "+Inf")))
                    );
                    let _ = writeln!(out, "{name}_sum{} {sum}", label_block(&m.labels, None));
                    let _ = writeln!(out, "{name}_count{} {count}", label_block(&m.labels, None));
                }
            }
        }
    }
    out
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: u64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: {line}");
    let (head, value_str) = line
        .rsplit_once(' ')
        .ok_or_else(|| err("no value separator"))?;
    let value: u64 = value_str
        .parse()
        .map_err(|_| err("sample value is not a u64"))?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label block"))?;
            let mut labels = Vec::new();
            if !body.is_empty() {
                for pair in body.split("\",") {
                    let pair = pair.strip_suffix('"').unwrap_or(pair);
                    let (k, v) = pair
                        .split_once("=\"")
                        .ok_or_else(|| err("malformed label pair"))?;
                    labels.push((k.to_string(), v.to_string()));
                }
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty()
        || name.starts_with(|c: char| c.is_ascii_digit())
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(err("invalid metric name"));
    }
    for (k, _) in &labels {
        if k.is_empty()
            || k.starts_with(|c: char| c.is_ascii_digit())
            || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(err("invalid label name"));
        }
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Validate a Prometheus text exposition as produced by
/// [`to_prometheus`]: every sample typed, names well-formed, values
/// integral, `# TYPE` lines unique, and for each histogram series the
/// buckets cumulative and capped by an `+Inf` bucket that agrees with
/// `_count`, with `_sum`/`_count` both present.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {lineno}: malformed # TYPE line"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric kind {kind}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate # TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        samples.push(parse_sample(line, lineno)?);
    }

    // Histogram bookkeeping: base name + non-le labels → bucket list etc.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut hist_buckets: BTreeMap<SeriesKey, Vec<(Option<u64>, u64)>> = BTreeMap::new();
    let mut hist_sum: BTreeMap<SeriesKey, u64> = BTreeMap::new();
    let mut hist_count: BTreeMap<SeriesKey, u64> = BTreeMap::new();

    for s in &samples {
        let declared = types.get(&s.name).cloned();
        match declared.as_deref() {
            Some("counter") | Some("gauge") => continue,
            Some("histogram") => {
                return Err(format!(
                    "histogram {} exposed without _bucket/_sum/_count suffix",
                    s.name
                ));
            }
            _ => {}
        }
        // Histogram component sample?
        let comp = [("_bucket", 0usize), ("_sum", 1), ("_count", 2)]
            .iter()
            .find_map(|&(suffix, which)| {
                s.name
                    .strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                    .map(|base| (base.to_string(), which))
            });
        let Some((base, which)) = comp else {
            return Err(format!("sample {} has no # TYPE declaration", s.name));
        };
        let mut labels = s.labels.clone();
        let mut le = None;
        if which == 0 {
            let pos = labels
                .iter()
                .position(|(k, _)| k == "le")
                .ok_or_else(|| format!("{}_bucket sample without le label", base))?;
            let (_, v) = labels.remove(pos);
            le = Some(if v == "+Inf" {
                None
            } else {
                Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("{}_bucket has non-integer le=\"{v}\"", base))?,
                )
            });
        }
        let key = (base, labels);
        match which {
            0 => hist_buckets
                .entry(key)
                .or_default()
                .push((le.unwrap(), s.value)),
            1 => {
                hist_sum.insert(key, s.value);
            }
            _ => {
                hist_count.insert(key, s.value);
            }
        }
    }

    for (key, buckets) in &hist_buckets {
        let (base, labels) = key;
        let ctx = || format!("{base}{:?}", labels);
        let mut last = 0u64;
        let mut inf: Option<u64> = None;
        let mut last_le: Option<u64> = None;
        for (le, cum) in buckets {
            if *cum < last {
                return Err(format!("{}: buckets not cumulative", ctx()));
            }
            last = *cum;
            match le {
                None => {
                    if inf.is_some() {
                        return Err(format!("{}: duplicate +Inf bucket", ctx()));
                    }
                    inf = Some(*cum);
                }
                Some(b) => {
                    if let Some(prev) = last_le {
                        if *b <= prev {
                            return Err(format!("{}: le bounds not increasing", ctx()));
                        }
                    }
                    if inf.is_some() {
                        return Err(format!("{}: bucket after +Inf", ctx()));
                    }
                    last_le = Some(*b);
                }
            }
        }
        let inf = inf.ok_or_else(|| format!("{}: missing +Inf bucket", ctx()))?;
        let count = hist_count
            .get(key)
            .ok_or_else(|| format!("{}: missing _count", ctx()))?;
        if !hist_sum.contains_key(key) {
            return Err(format!("{}: missing _sum", ctx()));
        }
        if inf != *count {
            return Err(format!(
                "{}: +Inf bucket {inf} disagrees with _count {count}",
                ctx()
            ));
        }
    }
    // Orphan _sum/_count without any bucket line is still a malformed
    // histogram exposition.
    for key in hist_sum.keys().chain(hist_count.keys()) {
        if !hist_buckets.contains_key(key) {
            return Err(format!("{}: histogram without _bucket samples", key.0));
        }
    }
    Ok(())
}

/// `bucket_hi` re-exported check helper for downstream code that wants
/// the `le` bound of bucket `b` exactly as the renderer emits it.
pub fn le_bound(b: usize) -> u64 {
    bucket_hi(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("serve.requests").add(3);
        reg.counter_with("serve.cells", &[("source", "cache")])
            .add(2);
        reg.counter_with("serve.cells", &[("source", "simulated")])
            .add(5);
        reg.gauge("serve.queue.depth").set(7);
        let h = reg.histogram("serve.request.micros");
        for v in [0, 1, 3, 900, 1_000_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn renders_and_validates() {
        let text = to_prometheus(&Snapshot::capture(&sample_registry()));
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE serve_requests counter"));
        assert!(text.contains("serve_requests 3"));
        assert!(text.contains("serve_cells{source=\"cache\"} 2"));
        assert!(text.contains("serve_cells{source=\"simulated\"} 5"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_request_micros_bucket{le=\"0\"} 1"));
        assert!(text.contains("serve_request_micros_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("serve_request_micros_sum 1000904"));
        assert!(text.contains("serve_request_micros_count 5"));
        // One # TYPE line per metric even with several labelled series.
        assert_eq!(text.matches("# TYPE serve_cells counter").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_integer_le() {
        let reg = Registry::new();
        let h = reg.histogram("x");
        h.record(1); // bucket [1,1]
        h.record(2); // bucket [2,3]
        h.record(3); // bucket [2,3]
        let text = to_prometheus(&Snapshot::capture(&reg));
        assert!(text.contains("x_bucket{le=\"1\"} 1"));
        assert!(text.contains("x_bucket{le=\"3\"} 3"));
        assert!(text.contains("x_bucket{le=\"+Inf\"} 3"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn mangling_and_escaping() {
        assert_eq!(mangle_name("serve.request.micros"), "serve_request_micros");
        assert_eq!(mangle_name("9lives"), "_lives");
        assert_eq!(mangle_name("a-b c"), "a_b_c");
        let reg = Registry::new();
        reg.counter_with("m", &[("path", "a\"b\\c\nd")]).inc();
        let text = to_prometheus(&Snapshot::capture(&reg));
        assert!(text.contains("m{path=\"a\\\"b\\\\c\\nd\"} 1"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        let cases: &[(&str, &str)] = &[
            ("x 1\n", "no # TYPE"),
            ("# TYPE x counter\nx 1.5\n", "float value"),
            ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"),
            ("# TYPE x summary\n", "unknown kind"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
                "missing +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3\n",
                "+Inf vs _count disagreement",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
                "missing _sum",
            ),
            ("# TYPE h histogram\nh_sum 1\nh_count 1\n", "no buckets"),
            ("# TYPE x counter\n2x 1\n", "bad name"),
        ];
        for (text, why) in cases {
            assert!(validate_exposition(text).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn valid_hand_written_exposition_passes() {
        let text = "\
# TYPE up gauge
up 1
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_bucket{le=\"3\"} 4
h_bucket{le=\"+Inf\"} 4
h_sum 9
h_count 4
";
        validate_exposition(text).unwrap();
    }
}
