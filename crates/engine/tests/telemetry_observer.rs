//! Observer composition: `Chain` forwarding and telemetry riding along
//! with measurement observers under both kernels.
//!
//! The telemetry subsystem only works if attaching it changes nothing:
//! chained hooks must all fire (including the leap-only
//! `on_identity_run`), and a measurement observer must see the exact same
//! events whether or not a `TelemetryObserver` is chained behind it.

use pp_engine::metrics::TelemetryObserver;
use pp_engine::observer::{Chain, GroupCompletionObserver, Observer};
use pp_engine::population::CountPopulation;
use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::Simulator;
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::Silent;
use pp_telemetry::{Registry, Snapshot};

/// Epidemic: (I, S) → (I, I); I is group 2, so watching I's count gives
/// one "completion" per infection.
fn epidemic() -> CompiledProtocol {
    let mut spec = ProtocolSpec::new("epidemic");
    let s = spec.add_state("S", 1);
    let i = spec.add_state("I", 2);
    spec.set_initial(s);
    spec.add_rule_symmetric(i, s, i, i);
    spec.compile().unwrap()
}

fn seeded_pop(proto: &CompiledProtocol, n: u64) -> CountPopulation {
    let s = proto.state_by_name("S").unwrap();
    let i = proto.state_by_name("I").unwrap();
    let mut pop = CountPopulation::new(proto, n);
    pop.set_count(s, n - 1);
    pop.set_count(i, 1);
    pop
}

/// Records every hook invocation verbatim.
#[derive(Default)]
struct Probe {
    interactions: Vec<(u64, StateId, StateId, StateId, StateId)>,
    identity_runs: Vec<(u64, u64)>,
}

impl Observer for Probe {
    fn on_interaction(
        &mut self,
        step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        _counts: &[u64],
    ) {
        self.interactions.push((step, p, q, p2, q2));
    }

    fn on_identity_run(&mut self, last_step: u64, skipped: u64, _counts: &[u64]) {
        self.identity_runs.push((last_step, skipped));
    }
}

#[test]
fn chain_forwards_on_identity_run_to_both_sides() {
    let mut chained = Chain(Probe::default(), Probe::default());
    let a = StateId(0);
    chained.on_identity_run(10, 7, &[2, 0]);
    chained.on_interaction(11, a, a, a, a, &[2, 0]);
    chained.on_identity_run(20, 3, &[2, 0]);
    for probe in [&chained.0, &chained.1] {
        assert_eq!(probe.identity_runs, [(10, 7), (20, 3)]);
        assert_eq!(probe.interactions.len(), 1);
    }
}

#[test]
fn leap_kernel_reaches_chained_identity_run_hooks() {
    // End-to-end: both sides of a chain see the identity runs the leap
    // kernel skips, and their views agree event-for-event.
    let proto = epidemic();
    let mut pop = seeded_pop(&proto, 32);
    let mut sched = UniformRandomScheduler::from_seed(23);
    let mut obs = Chain(Probe::default(), Probe::default());
    let res = Simulator::new(&proto)
        .run_leap_observed(&mut pop, &mut sched, &Silent, 1_000_000, &mut obs)
        .unwrap();
    assert!(
        !obs.0.identity_runs.is_empty(),
        "a 32-agent epidemic run skips at least one identity run"
    );
    assert_eq!(obs.0.identity_runs, obs.1.identity_runs);
    assert_eq!(obs.0.interactions, obs.1.interactions);
    let skipped: u64 = obs.0.identity_runs.iter().map(|(_, g)| g).sum();
    assert_eq!(skipped + obs.0.interactions.len() as u64, res.interactions);
}

#[test]
fn telemetry_observer_is_invisible_to_chained_measurement() {
    // Satellite: GroupCompletionObserver + TelemetryObserver compose
    // correctly under both kernels — same seed, same completions as the
    // measurement observer running alone.
    let proto = epidemic();
    let watched = proto.state_by_name("I").unwrap();
    let n = 48u64;
    for leap in [false, true] {
        let seed = 77u64;

        // Alone.
        let mut alone = GroupCompletionObserver::new(watched);
        let mut pop = seeded_pop(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let sim = Simulator::new(&proto);
        let res_alone = if leap {
            sim.run_leap_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut alone)
        } else {
            sim.run_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut alone)
        }
        .unwrap();

        // Chained with telemetry.
        let reg = Registry::new();
        let mut chained = Chain(
            GroupCompletionObserver::new(watched),
            TelemetryObserver::in_registry(&reg),
        );
        let mut pop = seeded_pop(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let res_chained = if leap {
            sim.run_leap_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut chained)
        } else {
            sim.run_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut chained)
        }
        .unwrap();

        // Observers never touch RNG or dynamics: bit-identical runs.
        assert_eq!(res_alone, res_chained, "leap = {leap}");
        assert_eq!(
            alone.completions(),
            chained.0.completions(),
            "completions diverged with telemetry chained (leap = {leap})"
        );
        assert_eq!(
            chained.0.completions().len() as u64,
            n, // watched count goes 1 → n; max starts at 0 so n new maxima
            "epidemic ends fully infected (leap = {leap})"
        );

        // And the telemetry side tallied the whole run.
        let Chain(_, mut tel) = chained;
        tel.flush();
        let snap = Snapshot::capture(&reg);
        assert_eq!(
            snap.value("engine.interactions"),
            Some(res_chained.interactions),
            "leap = {leap}"
        );
        assert_eq!(
            snap.value("engine.effective_interactions"),
            Some(res_chained.effective_interactions),
            "leap = {leap}"
        );
    }
}
