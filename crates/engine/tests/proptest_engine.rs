//! Property-based tests of the engine's core guarantees, independent of
//! any particular protocol: sampling distribution correctness,
//! representation equivalence, compilation totality, and stability
//! criterion soundness.

use pp_engine::population::{AgentPopulation, CountPopulation, Population};
use pp_engine::protocol::StateId;
use pp_engine::scheduler::{PairScheduler, UniformRandomScheduler};
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::{enabled_pairs, GroupClosure, Silent, StabilityCriterion};
use proptest::prelude::*;

/// A random small protocol: `num_states` states with arbitrary group
/// labels and `num_rules` random (possibly conflicting-then-deduped)
/// transition rules.
fn arb_protocol() -> impl Strategy<Value = pp_engine::protocol::CompiledProtocol> {
    (2usize..6, 0usize..12, any::<u64>()).prop_map(|(num_states, num_rules, seed)| {
        // Derive everything from the seed so the case is reproducible.
        let mut z = seed;
        let mut next = move || {
            z = z
                .wrapping_add(0x9E3779B97F4A7C15)
                .rotate_left(17)
                .wrapping_mul(0x2545F4914F6CDD1D);
            z
        };
        let mut spec = ProtocolSpec::new("random");
        for i in 0..num_states {
            spec.add_state(format!("s{i}"), (next() % 3 + 1) as u16);
        }
        spec.set_initial(StateId(0));
        for _ in 0..num_rules {
            let s = |v: u64| StateId((v % num_states as u64) as u16);
            let (p, q, p2, q2) = (s(next()), s(next()), s(next()), s(next()));
            // Overwrite-conflicts would fail compilation; keep first-wins
            // semantics by only adding rules for unseen ordered pairs.
            spec.add_rule(p, q, p2, q2);
            if spec.compile().is_err() {
                // Undo by rebuilding without the conflicting rule: simplest
                // is to skip — recompile check below tolerates this.
                break;
            }
        }
        match spec.compile() {
            Ok(p) => p,
            Err(_) => {
                // Fall back to the rule-free protocol (always valid).
                let mut spec = ProtocolSpec::new("fallback");
                for i in 0..num_states {
                    spec.add_state(format!("s{i}"), 1);
                }
                spec.set_initial(StateId(0));
                spec.compile().unwrap()
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// δ is total: every ordered pair maps to valid states, and the
    /// identity/group-changing masks agree with δ pointwise.
    #[test]
    fn compiled_tables_are_total_and_consistent(proto in arb_protocol()) {
        let s = proto.num_states();
        for p in proto.states() {
            for q in proto.states() {
                let (p2, q2) = proto.delta(p, q);
                prop_assert!(p2.index() < s && q2.index() < s);
                prop_assert_eq!(proto.is_identity(p, q), p2 == p && q2 == q);
                let gc = proto.group_of(p2) != proto.group_of(p)
                    || proto.group_of(q2) != proto.group_of(q);
                prop_assert_eq!(proto.is_group_changing(p, q), gc);
            }
        }
    }

    /// Interactions conserve the number of agents in both representations
    /// and the representations track each other exactly under the same
    /// interaction sequence.
    #[test]
    fn representations_track_each_other(
        proto in arb_protocol(),
        n in 2usize..20,
        steps in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut apop = AgentPopulation::new(&proto, n);
        let mut cpop = CountPopulation::new(&proto, n as u64);
        let mut rng_state = seed | 1;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for _ in 0..steps {
            let i = (next() % n as u64) as usize;
            let mut j = (next() % (n as u64 - 1)) as usize;
            if j >= i { j += 1; }
            let (p, q, p2, q2) = apop.interact(&proto, i, j);
            if p != p2 || q != q2 {
                cpop.apply(p, q, p2, q2);
            }
        }
        prop_assert_eq!(apop.counts(), cpop.counts());
        prop_assert_eq!(apop.num_agents(), n as u64);
        prop_assert_eq!(cpop.counts().iter().sum::<u64>(), n as u64);
    }

    /// The uniform pair sampler only ever proposes enabled pairs.
    #[test]
    fn sampler_proposes_only_enabled_pairs(
        counts in proptest::collection::vec(0u64..5, 2..6).prop_filter(
            "need two agents", |c| c.iter().sum::<u64>() >= 2),
        seed in any::<u64>(),
    ) {
        let mut spec = ProtocolSpec::new("t");
        for i in 0..counts.len() {
            spec.add_state(format!("s{i}"), 1);
        }
        spec.set_initial(StateId(0));
        let proto = spec.compile().unwrap();
        let pop = CountPopulation::from_counts(counts.clone());
        let enabled: Vec<(StateId, StateId)> = enabled_pairs(&counts).collect();
        let mut sched = UniformRandomScheduler::from_seed(seed);
        for _ in 0..50 {
            let pair = sched.select_pair(&pop);
            prop_assert!(enabled.contains(&pair), "{pair:?} not enabled in {counts:?}");
        }
        let _ = proto;
    }

    /// Soundness of `Silent`: a silent configuration has no enabled
    /// non-identity transition, so applying any enabled pair leaves the
    /// configuration unchanged.
    #[test]
    fn silent_configs_are_fixed_points(proto in arb_protocol(), seed in any::<u64>()) {
        // Build a random configuration of ≤ 12 agents.
        let s = proto.num_states();
        let mut counts = vec![0u64; s];
        let mut z = seed | 1;
        for _ in 0..12 {
            z ^= z << 13; z ^= z >> 7; z ^= z << 17;
            counts[(z % s as u64) as usize] += 1;
        }
        if Silent.is_stable(&proto, &counts) {
            for (p, q) in enabled_pairs(&counts) {
                prop_assert_eq!(proto.delta(p, q), (p, q));
            }
        }
    }

    /// GroupClosure is at least as strict as "no enabled group-changing
    /// transition" and never reports stable when Silent would move groups.
    #[test]
    fn group_closure_is_conservative(proto in arb_protocol(), seed in any::<u64>()) {
        let s = proto.num_states();
        let mut counts = vec![0u64; s];
        let mut z = seed | 1;
        for _ in 0..8 {
            z ^= z << 13; z ^= z >> 7; z ^= z << 17;
            counts[(z % s as u64) as usize] += 1;
        }
        if GroupClosure::default().is_stable(&proto, &counts) {
            prop_assert!(
                enabled_pairs(&counts).all(|(p, q)| !proto.is_group_changing(p, q))
            );
        }
        // And silence implies group stability, always.
        if Silent.is_stable(&proto, &counts) {
            prop_assert!(GroupClosure::default().is_stable(&proto, &counts));
        }
    }
}
