//! Convergence-phase classification and the [`PhaseProbe`] observer.
//!
//! Algorithm 1's convergence story has three macroscopic regimes that
//! are readable straight off the count vector:
//!
//! * **chain building** — free agents (`initial`, `initial'`) are still
//!   flipping (rules 1–4) or a builder chain (`m_i`) is recruiting
//!   (rules 5–7);
//! * **repair** — a chain collision (rule 8) left demolishers (`d_i`)
//!   walking settled groups back down (rules 9–10);
//! * **stable** — no demolishers and at most one free-or-builder agent
//!   left: the partition cannot change any more. The Lemma 4–6 stable
//!   signature keeps exactly one `m_r` member when `n mod k ≥ 2` and one
//!   flipping free agent when `n mod k = 1`, so a lone leftover of
//!   either kind is part of stability, not evidence of building.
//!
//! [`PhaseMap`] compiles a protocol's state names into per-state roles
//! once; [`PhaseProbe`] rides the existing [`Observer`] seam and samples
//! the classification at logarithmically-spaced checkpoints (steps 1, 2,
//! 4, 8, ...), recording a segment only when the phase changes. The
//! probe therefore costs one comparison per interaction in the naive
//! kernel and is closed-form over the leap kernel's identity runs
//! (counts are constant inside a run, so checkpoint samples inside it
//! are all equal); under the batch kernel, checkpoints inside a tau-leap
//! resolve to the leap-end configuration, which is the same resolution
//! limit every other observer has there. Like all observers it never
//! touches scheduling or RNG state, so attaching it leaves trajectories
//! bit-identical.

use crate::observer::Observer;
use crate::protocol::{CompiledProtocol, StateId};

/// The macroscopic convergence regime of a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Free agents flipping or a builder chain recruiting (rules 1–7).
    ChainBuilding,
    /// Demolishers walking settled groups back down (rules 8–10 aftermath).
    Repair,
    /// No demolishers, at most one free-or-builder agent left.
    Stable,
}

impl Phase {
    /// Stable wire label (used in timeline JSON and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::ChainBuilding => "chain_building",
            Phase::Repair => "repair",
            Phase::Stable => "stable",
        }
    }

    /// Parse a wire label back.
    pub fn parse(s: &str) -> Option<Phase> {
        match s {
            "chain_building" => Some(Phase::ChainBuilding),
            "repair" => Some(Phase::Repair),
            "stable" => Some(Phase::Stable),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Free,
    Settled,
    Builder,
    Demolisher,
}

/// Per-state roles compiled from a protocol's state names.
///
/// Understands the k-partition naming convention (`initial`, `initial'`,
/// `g{i}`, `m{i}`, `d{i}`); [`PhaseMap::for_protocol`] returns `None`
/// for protocols whose states don't fit it, which callers treat as
/// "phase timelines unavailable" rather than an error.
#[derive(Clone, Debug)]
pub struct PhaseMap {
    roles: Vec<Role>,
}

impl PhaseMap {
    /// Compile `proto`'s state names into roles, if they follow the
    /// k-partition convention.
    pub fn for_protocol(proto: &CompiledProtocol) -> Option<PhaseMap> {
        let role_of = |name: &str| -> Option<Role> {
            if name == "initial" || name == "initial'" {
                return Some(Role::Free);
            }
            let (head, rest) = name.split_at(1);
            if rest.is_empty() || rest.parse::<usize>().is_err() {
                return None;
            }
            match head {
                "g" => Some(Role::Settled),
                "m" => Some(Role::Builder),
                "d" => Some(Role::Demolisher),
                _ => None,
            }
        };
        let roles = proto
            .states()
            .map(|s: StateId| role_of(proto.state_name(s)))
            .collect::<Option<Vec<Role>>>()?;
        Some(PhaseMap { roles })
    }

    /// Classify a count vector (indexed by state, as the simulator hands
    /// observers) into its phase.
    ///
    /// Assumes `counts` is reachable. By Lemma 1, a reachable
    /// configuration with no demolishers and `free + builders ≤ 1` has
    /// its group counts pinned to the Lemma 4–6 stable signature (the
    /// lone leftover is the `m_r` member for `n mod k ≥ 2`, the flipping
    /// free agent for `n mod k = 1`), so that predicate *is* stability;
    /// two or more free/builder agents mean the chain is still forming.
    pub fn classify(&self, counts: &[u64]) -> Phase {
        let mut free = 0u64;
        let mut builders = 0u64;
        let mut demolishers = 0u64;
        for (role, &c) in self.roles.iter().zip(counts) {
            match role {
                Role::Free => free += c,
                Role::Builder => builders += c,
                Role::Demolisher => demolishers += c,
                Role::Settled => {}
            }
        }
        if demolishers > 0 {
            Phase::Repair
        } else if free + builders > 1 {
            Phase::ChainBuilding
        } else {
            Phase::Stable
        }
    }
}

/// Observer sampling the [`Phase`] at logarithmically-spaced checkpoints
/// (interaction numbers 1, 2, 4, 8, ...), recording one `(step, phase)`
/// segment per phase change. Call [`PhaseProbe::finish`] after the run
/// to pin the terminal classification at the final interaction count.
#[derive(Clone, Debug)]
pub struct PhaseProbe {
    map: PhaseMap,
    next: u64,
    segments: Vec<(u64, Phase)>,
    checkpoints: u64,
}

impl PhaseProbe {
    /// A probe for `map`'s protocol, with its first checkpoint at step 1.
    pub fn new(map: PhaseMap) -> PhaseProbe {
        PhaseProbe {
            map,
            next: 1,
            segments: Vec::new(),
            checkpoints: 0,
        }
    }

    /// Convenience: compile the map and build a probe in one call.
    pub fn for_protocol(proto: &CompiledProtocol) -> Option<PhaseProbe> {
        PhaseMap::for_protocol(proto).map(PhaseProbe::new)
    }

    fn observe(&mut self, step: u64, counts: &[u64]) {
        self.checkpoints += 1;
        let phase = self.map.classify(counts);
        if self.segments.last().map(|&(_, p)| p) != Some(phase) {
            self.segments.push((step, phase));
        }
    }

    /// Resolve every checkpoint in `(..=last_step]` against one constant
    /// (or end-of-window) count vector and advance past `last_step`.
    fn drain_checkpoints(&mut self, at_step: u64, last_step: u64, counts: &[u64]) {
        if self.next > last_step {
            return;
        }
        self.observe(at_step.max(self.next), counts);
        let mut n = self.next.saturating_mul(2);
        while n <= last_step {
            self.checkpoints += 1;
            n = n.saturating_mul(2);
        }
        self.next = n;
    }

    /// Record the terminal classification at `total_steps` (the run's
    /// final interaction count), closing the timeline.
    pub fn finish(&mut self, total_steps: u64, counts: &[u64]) {
        let phase = self.map.classify(counts);
        if self.segments.last().map(|&(_, p)| p) != Some(phase) || self.segments.is_empty() {
            self.segments.push((total_steps.max(1), phase));
        }
    }

    /// The recorded `(first step observed, phase)` segments, in order.
    pub fn segments(&self) -> &[(u64, Phase)] {
        &self.segments
    }

    /// Number of checkpoints resolved (including closed-form ones).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// The most recently observed phase, if any checkpoint fired yet.
    pub fn current_phase(&self) -> Option<Phase> {
        self.segments.last().map(|&(_, p)| p)
    }
}

impl Observer for PhaseProbe {
    #[inline]
    fn on_interaction(
        &mut self,
        step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        counts: &[u64],
    ) {
        if step >= self.next {
            self.drain_checkpoints(step.min(self.next), step, counts);
        }
    }

    #[inline]
    fn on_identity_run(&mut self, last_step: u64, _skipped: u64, counts: &[u64]) {
        // Counts are constant across the run, so the earliest checkpoint
        // inside it stands for all of them.
        self.drain_checkpoints(self.next, last_step, counts);
    }

    #[inline]
    fn on_leap_batch(&mut self, last_step: u64, _tau: u64, _effective: u64, counts: &[u64]) {
        // Intermediate configurations inside a tau-leap were never
        // sampled; checkpoints inside it resolve at the leap end.
        self.drain_checkpoints(last_step, last_step, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    /// A protocol skeleton with k-partition state names (k = 3); rules
    /// are irrelevant for classification tests.
    fn named_proto() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("phase-naming");
        let ini = spec.add_state("initial", 1);
        spec.add_state("initial'", 1);
        spec.add_state("g1", 1);
        spec.add_state("g2", 2);
        spec.add_state("g3", 3);
        spec.add_state("m2", 2);
        spec.add_state("m3", 3);
        spec.add_state("d1", 1);
        spec.set_initial(ini);
        spec.add_rule_symmetric(ini, ini, ini, ini);
        spec.compile().unwrap()
    }

    #[test]
    fn roles_drive_classification() {
        let map = PhaseMap::for_protocol(&named_proto()).unwrap();
        // indices: initial, initial', g1, g2, g3, m2, m3, d1
        assert_eq!(
            map.classify(&[5, 1, 0, 0, 0, 0, 0, 0]),
            Phase::ChainBuilding
        );
        // A recruiting chain (m2 + m3) with free agents still around.
        assert_eq!(
            map.classify(&[2, 0, 1, 1, 1, 1, 1, 0]),
            Phase::ChainBuilding
        );
        // One free agent AND one member left: still transient (rule 5 fires).
        assert_eq!(
            map.classify(&[1, 0, 2, 2, 2, 0, 1, 0]),
            Phase::ChainBuilding
        );
        assert_eq!(map.classify(&[0, 1, 2, 2, 1, 1, 0, 1]), Phase::Repair);
        // n mod k = 1: the lone free agent keeps flipping but the
        // partition is fixed.
        assert_eq!(map.classify(&[1, 0, 2, 2, 2, 0, 0, 0]), Phase::Stable);
        // n mod k = 0: everyone settled.
        assert_eq!(map.classify(&[0, 0, 3, 2, 2, 0, 0, 0]), Phase::Stable);
        // n mod k = 2: the stable signature keeps exactly one m2 member.
        assert_eq!(map.classify(&[0, 0, 3, 2, 2, 1, 0, 0]), Phase::Stable);
    }

    #[test]
    fn foreign_protocols_have_no_phase_map() {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        let proto = spec.compile().unwrap();
        assert!(PhaseMap::for_protocol(&proto).is_none());
    }

    #[test]
    fn checkpoints_are_log_spaced_and_segments_dedup() {
        let proto = named_proto();
        let mut probe = PhaseProbe::for_protocol(&proto).unwrap();
        let building = [4u64, 0, 1, 0, 0, 1, 0, 0];
        let repairing = [1u64, 0, 1, 1, 0, 0, 0, 1];
        let stable = [1u64, 0, 2, 2, 1, 0, 0, 0];
        let a = StateId(0);
        for step in 1..=100u64 {
            let counts: &[u64] = if step < 20 {
                &building
            } else if step < 70 {
                &repairing
            } else {
                &stable
            };
            probe.on_interaction(step, a, a, a, a, counts);
        }
        probe.finish(100, &stable);
        // Checkpoints 1,2,4,8,16 (building), 32,64 (repair), then the
        // finish pin (stable) — phase changes land on checkpoint steps.
        assert_eq!(probe.checkpoints(), 7);
        assert_eq!(
            probe.segments(),
            &[
                (1, Phase::ChainBuilding),
                (32, Phase::Repair),
                (100, Phase::Stable),
            ]
        );
    }

    #[test]
    fn identity_runs_resolve_checkpoints_in_closed_form() {
        let proto = named_proto();
        let building = [4u64, 0, 1, 0, 0, 1, 0, 0];
        let a = StateId(0);

        let mut naive = PhaseProbe::for_protocol(&proto).unwrap();
        for step in 1..=1000u64 {
            naive.on_interaction(step, a, a, a, a, &building);
        }

        let mut leap = PhaseProbe::for_protocol(&proto).unwrap();
        // Same 1000 constant-count steps, delivered as 3 identity runs
        // and two effective interactions.
        leap.on_identity_run(400, 400, &building);
        leap.on_interaction(401, a, a, a, a, &building);
        leap.on_identity_run(900, 499, &building);
        leap.on_interaction(901, a, a, a, a, &building);
        leap.on_identity_run(1000, 99, &building);

        assert_eq!(naive.checkpoints(), leap.checkpoints());
        assert_eq!(naive.segments(), leap.segments());
    }

    #[test]
    fn finish_records_terminal_phase_once() {
        let proto = named_proto();
        let stable = [0u64, 0, 3, 3, 2, 0, 0, 0];
        let mut probe = PhaseProbe::for_protocol(&proto).unwrap();
        probe.finish(50, &stable);
        probe.finish(60, &stable); // idempotent for an unchanged phase
        assert_eq!(probe.segments(), &[(50, Phase::Stable)]);
        assert_eq!(probe.current_phase(), Some(Phase::Stable));
    }
}
