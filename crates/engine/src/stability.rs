//! Stability criteria — when has an execution "solved" its problem?
//!
//! The paper measures "the total number of interactions until a population
//! reaches a stable configuration" (§5). A configuration is *stable* for
//! uniform k-partition when group sizes are balanced and **no agent ever
//! changes its group again** in any continuation (§2.2). Deciding this
//! generically requires reasoning about all reachable continuations, so the
//! engine offers a spectrum of criteria:
//!
//! * [`Silent`] — no enabled transition changes any state. Sound for every
//!   protocol (a silent configuration is a sink) but incomplete for the
//!   paper's protocol: when `n mod k = 1` the lone free agent keeps
//!   flipping `initial ↔ initial'` (rules 3–4), so the stable configuration
//!   is never silent.
//! * [`GroupClosure`] — explores the set of configurations reachable from
//!   the current one and reports stable iff no group-changing transition is
//!   enabled anywhere in that closure. Sound *and* complete for group
//!   stability, at the cost of a bounded search; cheap in practice because
//!   the closure of a truly stable configuration of the k-partition
//!   protocol has at most `#free + 1` elements (only free-agent flips
//!   remain).
//! * [`Signature`] — an exact, O(|Q|) predicate on the count vector,
//!   supplied by the protocol implementation (e.g. the Lemma 4–6
//!   characterisation of the k-partition protocol's stable
//!   configurations). This is what the figure harnesses use; tests verify
//!   it agrees with [`GroupClosure`].
//! * [`Never`] — never stable; for fixed-length runs.

use crate::population::{CountPopulation, Population};
use crate::protocol::{CompiledProtocol, StateId};
use std::collections::HashSet;

/// Decides whether a configuration (count vector) is stable.
///
/// ```
/// use pp_engine::spec::ProtocolSpec;
/// use pp_engine::stability::{Silent, StabilityCriterion};
///
/// let mut spec = ProtocolSpec::new("epidemic");
/// let s = spec.add_state("S", 1);
/// let i = spec.add_state("I", 2);
/// spec.set_initial(s);
/// spec.add_rule_symmetric(i, s, i, i);
/// let proto = spec.compile().unwrap();
///
/// // [S, I] counts: an infection is still possible at [1, 2]…
/// assert!(!Silent.is_stable(&proto, &[1, 2]));
/// // …but [0, 3] is a sink.
/// assert!(Silent.is_stable(&proto, &[0, 3]));
/// ```
pub trait StabilityCriterion {
    /// Whether the configuration given by `counts` is stable.
    ///
    /// Called by the simulator once at the start of a run and after every
    /// count-changing interaction (identity interactions cannot change
    /// stability).
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool;

    /// An incremental checker for this criterion, initialised at `counts`.
    ///
    /// The leap kernel ([`crate::simulator::Simulator::run_leap`]) drives
    /// the returned [`StabilityTracker`] with the ±1 count deltas of every
    /// applied transition, so criteria that can fold deltas (notably
    /// [`Signature`]) answer stability in O(1) per interaction instead of
    /// an O(|Q|) rescan. The default implementation falls back to
    /// re-evaluating [`StabilityCriterion::is_stable`] on every query,
    /// which is always correct.
    fn tracker<'a>(
        &'a self,
        _proto: &CompiledProtocol,
        _counts: &[u64],
    ) -> Box<dyn StabilityTracker + 'a>
    where
        Self: Sized,
    {
        Box::new(RescanTracker { criterion: self })
    }
}

/// Incremental form of a [`StabilityCriterion`]: consumes the ±1 count
/// deltas of applied transitions and answers stability queries between
/// them.
///
/// The simulator applies the four deltas of one transition
/// (`p: −1, q: −1, p2: +1, q2: +1`) before querying
/// [`StabilityTracker::is_stable`], so implementations may observe
/// transient configurations mid-transition but are only *asked* about
/// consistent ones.
pub trait StabilityTracker {
    /// Fold one count delta (`delta ∈ {−1, +1}`) on state `s`.
    fn apply_delta(&mut self, s: StateId, delta: i64);

    /// Whether the current configuration (equal to `counts`) is stable.
    fn is_stable(&mut self, proto: &CompiledProtocol, counts: &[u64]) -> bool;

    /// A cheap *distance-to-stability* hint: how many independently
    /// tracked constraints are currently violated, if the tracker knows.
    ///
    /// The batch kernel ([`crate::simulator::Simulator::run_batch`]) uses
    /// this to hand control back to the exact leap kernel when the
    /// configuration is close to stable, so terminal behaviour is never
    /// approximated. `None` (the default) means the tracker cannot
    /// quantify the distance; the batch kernel then relies on its other
    /// fallback triggers alone.
    fn violations_hint(&self) -> Option<u64> {
        None
    }
}

/// Default tracker: ignores deltas and rescans via the wrapped criterion.
struct RescanTracker<'a, C: ?Sized> {
    criterion: &'a C,
}

impl<C: StabilityCriterion + ?Sized> StabilityTracker for RescanTracker<'_, C> {
    #[inline(always)]
    fn apply_delta(&mut self, _s: StateId, _delta: i64) {}

    #[inline]
    fn is_stable(&mut self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        // Each call is a full O(|Q|)-or-worse re-evaluation; counting them
        // shows how much a criterion loses by not providing an incremental
        // tracker. One relaxed add is noise next to the rescan itself.
        crate::metrics::engine_metrics().stability_rescans.inc();
        self.criterion.is_stable(proto, counts)
    }
}

/// Returns every ordered pair `(p, q)` enabled in `counts`
/// (`counts[p] ≥ 1`, and `counts[q] ≥ 2` when `p == q`).
///
/// Skips zero-count states up front, so the cost is quadratic in the
/// number of *occupied* states rather than in |Q|.
pub fn enabled_pairs(counts: &[u64]) -> impl Iterator<Item = (StateId, StateId)> + '_ {
    let nz: Vec<(u16, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= 1)
        .map(|(i, &c)| (i as u16, c))
        .collect();
    let mut pairs = Vec::with_capacity(nz.len() * nz.len());
    for &(pi, _) in &nz {
        for &(qi, cq) in &nz {
            if pi != qi || cq >= 2 {
                pairs.push((StateId(pi), StateId(qi)));
            }
        }
    }
    pairs.into_iter()
}

/// No enabled transition changes any state: the configuration is a sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl StabilityCriterion for Silent {
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        enabled_pairs(counts).all(|(p, q)| proto.is_identity(p, q))
    }
}

/// Complete group-stability check by closure exploration.
///
/// Reports stable iff no configuration reachable from `counts` enables a
/// group-changing transition. The search aborts (reporting *unstable*) once
/// `max_closure` distinct configurations have been visited, which keeps the
/// check bounded when invoked on a far-from-stable configuration; the
/// default bound of `4096` comfortably covers the flip-only closures of
/// genuinely stable configurations.
#[derive(Clone, Copy, Debug)]
pub struct GroupClosure {
    /// Abort threshold on the number of explored configurations.
    pub max_closure: usize,
}

impl Default for GroupClosure {
    fn default() -> Self {
        GroupClosure { max_closure: 4096 }
    }
}

impl StabilityCriterion for GroupClosure {
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        // Fast necessary condition: no *currently* enabled group-changing
        // transition. This rejects almost every mid-run configuration
        // without touching the closure search.
        if enabled_pairs(counts).any(|(p, q)| proto.is_group_changing(p, q)) {
            return false;
        }
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut stack = vec![counts.to_vec()];
        seen.insert(counts.to_vec());
        while let Some(cfg) = stack.pop() {
            if seen.len() > self.max_closure {
                return false;
            }
            for (p, q) in enabled_pairs(&cfg).collect::<Vec<_>>() {
                if proto.is_group_changing(p, q) {
                    return false;
                }
                if proto.is_identity(p, q) {
                    continue;
                }
                let (p2, q2) = proto.delta(p, q);
                let mut next = cfg.clone();
                next[p.index()] -= 1;
                next[q.index()] -= 1;
                next[p2.index()] += 1;
                next[q2.index()] += 1;
                if seen.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
        true
    }
}

/// Exact target signature on the count vector.
///
/// `fixed[s] = Some(c)` requires `counts[s] == c`; states not fixed must be
/// covered by a *pool*: a set of states whose counts must sum to a given
/// value (e.g. "exactly one agent in `{initial, initial'}`" for the
/// `n mod k = 1` case of Lemma 6).
#[derive(Clone, Debug)]
pub struct Signature {
    fixed: Vec<Option<u64>>,
    pools: Vec<(Vec<StateId>, u64)>,
}

impl Signature {
    /// Build a signature. Every state must either appear in `fixed` (as
    /// `Some`) or belong to exactly one pool; unconstrained states would
    /// make the predicate vacuous, so they are rejected.
    pub fn new(fixed: Vec<Option<u64>>, pools: Vec<(Vec<StateId>, u64)>) -> Self {
        let mut covered: Vec<bool> = fixed.iter().map(Option::is_some).collect();
        for (states, _) in &pools {
            for s in states {
                assert!(
                    !covered[s.index()],
                    "state {s:?} constrained twice in stability signature"
                );
                covered[s.index()] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "every state must be constrained by a stability signature"
        );
        Signature { fixed, pools }
    }

    /// Signature requiring exactly the given counts (no pools).
    pub fn exact(counts: Vec<u64>) -> Self {
        Signature {
            fixed: counts.into_iter().map(Some).collect(),
            pools: Vec::new(),
        }
    }

    /// Check the signature directly against a count vector.
    pub fn matches(&self, counts: &[u64]) -> bool {
        debug_assert_eq!(counts.len(), self.fixed.len());
        for (c, f) in counts.iter().zip(&self.fixed) {
            if let Some(want) = f {
                if c != want {
                    return false;
                }
            }
        }
        self.pools
            .iter()
            .all(|(states, want)| states.iter().map(|s| counts[s.index()]).sum::<u64>() == *want)
    }
}

impl StabilityCriterion for Signature {
    #[inline]
    fn is_stable(&self, _proto: &CompiledProtocol, counts: &[u64]) -> bool {
        self.matches(counts)
    }

    fn tracker<'a>(
        &'a self,
        _proto: &CompiledProtocol,
        counts: &[u64],
    ) -> Box<dyn StabilityTracker + 'a> {
        Box::new(SignatureTracker::new(self, counts))
    }
}

/// How a state is constrained inside a [`SignatureTracker`].
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// `counts[s]` must equal `want`; `cur` is the maintained count.
    Fixed { cur: u64, want: u64 },
    /// The state belongs to pool `i`; its count feeds `pool_cur[i]`.
    Pool(usize),
}

/// O(1)-per-delta incremental checker for [`Signature`].
///
/// Maintains each fixed state's count and each pool's sum alongside a
/// single violation counter (one unit per unsatisfied fixed state or
/// pool), so a stability query is a comparison with zero.
#[derive(Clone, Debug)]
pub struct SignatureTracker {
    slots: Vec<Slot>,
    pool_cur: Vec<u64>,
    pool_want: Vec<u64>,
    violations: usize,
}

impl SignatureTracker {
    /// Tracker for `sig`, initialised at configuration `counts`.
    pub fn new(sig: &Signature, counts: &[u64]) -> Self {
        debug_assert_eq!(counts.len(), sig.fixed.len());
        let mut slots = vec![Slot::Pool(usize::MAX); counts.len()];
        for (s, f) in sig.fixed.iter().enumerate() {
            if let Some(want) = f {
                slots[s] = Slot::Fixed {
                    cur: counts[s],
                    want: *want,
                };
            }
        }
        let mut pool_cur = Vec::with_capacity(sig.pools.len());
        let mut pool_want = Vec::with_capacity(sig.pools.len());
        for (i, (states, want)) in sig.pools.iter().enumerate() {
            for s in states {
                slots[s.index()] = Slot::Pool(i);
            }
            pool_cur.push(states.iter().map(|s| counts[s.index()]).sum());
            pool_want.push(*want);
        }
        let mut violations = 0;
        for slot in &slots {
            if let Slot::Fixed { cur, want } = slot {
                if cur != want {
                    violations += 1;
                }
            }
        }
        violations += pool_cur
            .iter()
            .zip(&pool_want)
            .filter(|(c, w)| c != w)
            .count();
        SignatureTracker {
            slots,
            pool_cur,
            pool_want,
            violations,
        }
    }
}

impl StabilityTracker for SignatureTracker {
    #[inline]
    fn apply_delta(&mut self, s: StateId, delta: i64) {
        match &mut self.slots[s.index()] {
            Slot::Fixed { cur, want } => {
                let was_ok = *cur == *want;
                if delta >= 0 {
                    *cur += delta as u64;
                } else {
                    *cur -= delta.unsigned_abs();
                }
                let now_ok = *cur == *want;
                if was_ok && !now_ok {
                    self.violations += 1;
                } else if !was_ok && now_ok {
                    self.violations -= 1;
                }
            }
            Slot::Pool(i) => {
                let i = *i;
                let was_ok = self.pool_cur[i] == self.pool_want[i];
                if delta >= 0 {
                    self.pool_cur[i] += delta as u64;
                } else {
                    self.pool_cur[i] -= delta.unsigned_abs();
                }
                let now_ok = self.pool_cur[i] == self.pool_want[i];
                if was_ok && !now_ok {
                    self.violations += 1;
                } else if !was_ok && now_ok {
                    self.violations -= 1;
                }
            }
        }
    }

    #[inline(always)]
    fn is_stable(&mut self, _proto: &CompiledProtocol, _counts: &[u64]) -> bool {
        self.violations == 0
    }

    #[inline(always)]
    fn violations_hint(&self) -> Option<u64> {
        Some(self.violations as u64)
    }
}

/// Never stable — run until the interaction limit.
#[derive(Clone, Copy, Debug, Default)]
pub struct Never;

impl StabilityCriterion for Never {
    #[inline(always)]
    fn is_stable(&self, _proto: &CompiledProtocol, _counts: &[u64]) -> bool {
        false
    }
}

/// Stable when *either* criterion fires; records nothing.
#[derive(Clone, Copy, Debug)]
pub struct Either<A, B>(
    /// First criterion.
    pub A,
    /// Second criterion.
    pub B,
);

impl<A: StabilityCriterion, B: StabilityCriterion> StabilityCriterion for Either<A, B> {
    #[inline]
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        self.0.is_stable(proto, counts) || self.1.is_stable(proto, counts)
    }

    fn tracker<'a>(
        &'a self,
        proto: &CompiledProtocol,
        counts: &[u64],
    ) -> Box<dyn StabilityTracker + 'a> {
        struct EitherTracker<'a> {
            a: Box<dyn StabilityTracker + 'a>,
            b: Box<dyn StabilityTracker + 'a>,
        }
        impl StabilityTracker for EitherTracker<'_> {
            #[inline]
            fn apply_delta(&mut self, s: StateId, delta: i64) {
                self.a.apply_delta(s, delta);
                self.b.apply_delta(s, delta);
            }
            #[inline]
            fn is_stable(&mut self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
                self.a.is_stable(proto, counts) || self.b.is_stable(proto, counts)
            }
            #[inline]
            fn violations_hint(&self) -> Option<u64> {
                // Stability needs only one side to fire, so the distance
                // is the nearer of the two hints.
                match (self.a.violations_hint(), self.b.violations_hint()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
        }
        Box::new(EitherTracker {
            a: self.0.tracker(proto, counts),
            b: self.1.tracker(proto, counts),
        })
    }
}

/// Convenience: evaluate a criterion against a [`CountPopulation`].
pub fn is_stable<C: StabilityCriterion>(
    crit: &C,
    proto: &CompiledProtocol,
    pop: &CountPopulation,
) -> bool {
    crit.is_stable(proto, pop.counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    /// Epidemic with a "refractory flip": (I, I) -> (J, J), (J, J) -> (I, I)
    /// where I and J are both group 2. Once everyone is infected the
    /// population keeps flipping between I and J — never silent, but group
    /// membership is fixed.
    fn flipping_epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("flip");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        let j = spec.add_state("J", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.add_rule_symmetric(j, s, j, j);
        spec.add_rule(i, i, j, j);
        spec.add_rule(j, j, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn silent_detects_sinks_only() {
        let p = flipping_epidemic();
        // counts: [S, I, J]
        assert!(!Silent.is_stable(&p, &[3, 1, 0])); // infection enabled
        assert!(!Silent.is_stable(&p, &[0, 2, 0])); // flip enabled
        assert!(Silent.is_stable(&p, &[0, 1, 1])); // (I, J) is identity
        assert!(Silent.is_stable(&p, &[0, 1, 0])); // single agent
        assert!(Silent.is_stable(&p, &[1, 0, 0])); // lone susceptible
    }

    #[test]
    fn group_closure_sees_through_flips() {
        let p = flipping_epidemic();
        // All infected, flipping forever: group-stable but not silent.
        assert!(GroupClosure::default().is_stable(&p, &[0, 4, 0]));
        assert!(!Silent.is_stable(&p, &[0, 4, 0]));
        // One susceptible left: infection will change its group.
        assert!(!GroupClosure::default().is_stable(&p, &[1, 3, 0]));
    }

    #[test]
    fn group_closure_rejects_latent_instability() {
        // Protocol where the group change is two hops away:
        // (a, a) -> (b, b) keeps group 1; (b, b) -> (c, c) moves to group 2.
        let mut spec = ProtocolSpec::new("latent");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, c, c);
        let p = spec.compile().unwrap();
        // No group-changing transition is *currently* enabled at [2,0,0],
        // but one becomes enabled after the (a,a) flip.
        assert!(!GroupClosure::default().is_stable(&p, &[2, 0, 0]));
        assert!(GroupClosure::default().is_stable(&p, &[1, 1, 0]));
        let _ = (a, b, c);
    }

    #[test]
    fn signature_pools() {
        let p = flipping_epidemic();
        let i = p.state_by_name("I").unwrap();
        let j = p.state_by_name("J").unwrap();
        let sig = Signature::new(vec![Some(0), None, None], vec![(vec![i, j], 4)]);
        assert!(sig.is_stable(&p, &[0, 4, 0]));
        assert!(sig.is_stable(&p, &[0, 1, 3]));
        assert!(!sig.is_stable(&p, &[0, 3, 0]));
        assert!(!sig.is_stable(&p, &[1, 3, 1]));
    }

    #[test]
    fn signature_exact() {
        let sig = Signature::exact(vec![1, 2, 3]);
        assert!(sig.matches(&[1, 2, 3]));
        assert!(!sig.matches(&[1, 2, 4]));
    }

    #[test]
    #[should_panic(expected = "constrained twice")]
    fn signature_rejects_double_constraint() {
        Signature::new(vec![Some(0), Some(1)], vec![(vec![StateId(1)], 1)]);
    }

    #[test]
    #[should_panic(expected = "must be constrained")]
    fn signature_rejects_unconstrained_state() {
        Signature::new(vec![Some(0), None], vec![]);
    }

    #[test]
    fn either_combines() {
        let p = flipping_epidemic();
        let sig = Signature::exact(vec![9, 9, 9]);
        let both = Either(sig, Silent);
        assert!(both.is_stable(&p, &[0, 1, 1])); // silent side
        assert!(both.is_stable(&p, &[9, 9, 9])); // signature side
        assert!(!both.is_stable(&p, &[1, 1, 0]));
    }

    #[test]
    fn never_is_never_stable() {
        let p = flipping_epidemic();
        assert!(!Never.is_stable(&p, &[0, 0, 0]));
    }

    #[test]
    fn enabled_pairs_respects_multiplicity() {
        let pairs: Vec<_> = enabled_pairs(&[1, 2]).collect();
        // (0,0) needs two agents in state 0 -> absent.
        assert!(!pairs.contains(&(StateId(0), StateId(0))));
        assert!(pairs.contains(&(StateId(0), StateId(1))));
        assert!(pairs.contains(&(StateId(1), StateId(0))));
        assert!(pairs.contains(&(StateId(1), StateId(1))));
    }
}
