//! Stability criteria — when has an execution "solved" its problem?
//!
//! The paper measures "the total number of interactions until a population
//! reaches a stable configuration" (§5). A configuration is *stable* for
//! uniform k-partition when group sizes are balanced and **no agent ever
//! changes its group again** in any continuation (§2.2). Deciding this
//! generically requires reasoning about all reachable continuations, so the
//! engine offers a spectrum of criteria:
//!
//! * [`Silent`] — no enabled transition changes any state. Sound for every
//!   protocol (a silent configuration is a sink) but incomplete for the
//!   paper's protocol: when `n mod k = 1` the lone free agent keeps
//!   flipping `initial ↔ initial'` (rules 3–4), so the stable configuration
//!   is never silent.
//! * [`GroupClosure`] — explores the set of configurations reachable from
//!   the current one and reports stable iff no group-changing transition is
//!   enabled anywhere in that closure. Sound *and* complete for group
//!   stability, at the cost of a bounded search; cheap in practice because
//!   the closure of a truly stable configuration of the k-partition
//!   protocol has at most `#free + 1` elements (only free-agent flips
//!   remain).
//! * [`Signature`] — an exact, O(|Q|) predicate on the count vector,
//!   supplied by the protocol implementation (e.g. the Lemma 4–6
//!   characterisation of the k-partition protocol's stable
//!   configurations). This is what the figure harnesses use; tests verify
//!   it agrees with [`GroupClosure`].
//! * [`Never`] — never stable; for fixed-length runs.

use crate::population::{CountPopulation, Population};
use crate::protocol::{CompiledProtocol, StateId};
use std::collections::HashSet;

/// Decides whether a configuration (count vector) is stable.
///
/// ```
/// use pp_engine::spec::ProtocolSpec;
/// use pp_engine::stability::{Silent, StabilityCriterion};
///
/// let mut spec = ProtocolSpec::new("epidemic");
/// let s = spec.add_state("S", 1);
/// let i = spec.add_state("I", 2);
/// spec.set_initial(s);
/// spec.add_rule_symmetric(i, s, i, i);
/// let proto = spec.compile().unwrap();
///
/// // [S, I] counts: an infection is still possible at [1, 2]…
/// assert!(!Silent.is_stable(&proto, &[1, 2]));
/// // …but [0, 3] is a sink.
/// assert!(Silent.is_stable(&proto, &[0, 3]));
/// ```
pub trait StabilityCriterion {
    /// Whether the configuration given by `counts` is stable.
    ///
    /// Called by the simulator once at the start of a run and after every
    /// count-changing interaction (identity interactions cannot change
    /// stability).
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool;
}

/// Returns every ordered pair `(p, q)` enabled in `counts`
/// (`counts[p] ≥ 1`, and `counts[q] ≥ 2` when `p == q`).
pub fn enabled_pairs(counts: &[u64]) -> impl Iterator<Item = (StateId, StateId)> + '_ {
    counts.iter().enumerate().flat_map(move |(pi, &cp)| {
        counts
            .iter()
            .enumerate()
            .filter(move |&(qi, &cq)| cp >= 1 && cq >= if pi == qi { 2 } else { 1 })
            .map(move |(qi, _)| (StateId(pi as u16), StateId(qi as u16)))
    })
}

/// No enabled transition changes any state: the configuration is a sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl StabilityCriterion for Silent {
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        enabled_pairs(counts).all(|(p, q)| proto.is_identity(p, q))
    }
}

/// Complete group-stability check by closure exploration.
///
/// Reports stable iff no configuration reachable from `counts` enables a
/// group-changing transition. The search aborts (reporting *unstable*) once
/// `max_closure` distinct configurations have been visited, which keeps the
/// check bounded when invoked on a far-from-stable configuration; the
/// default bound of `4096` comfortably covers the flip-only closures of
/// genuinely stable configurations.
#[derive(Clone, Copy, Debug)]
pub struct GroupClosure {
    /// Abort threshold on the number of explored configurations.
    pub max_closure: usize,
}

impl Default for GroupClosure {
    fn default() -> Self {
        GroupClosure { max_closure: 4096 }
    }
}

impl StabilityCriterion for GroupClosure {
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        // Fast necessary condition: no *currently* enabled group-changing
        // transition. This rejects almost every mid-run configuration
        // without touching the closure search.
        if enabled_pairs(counts).any(|(p, q)| proto.is_group_changing(p, q)) {
            return false;
        }
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut stack = vec![counts.to_vec()];
        seen.insert(counts.to_vec());
        while let Some(cfg) = stack.pop() {
            if seen.len() > self.max_closure {
                return false;
            }
            for (p, q) in enabled_pairs(&cfg).collect::<Vec<_>>() {
                if proto.is_group_changing(p, q) {
                    return false;
                }
                if proto.is_identity(p, q) {
                    continue;
                }
                let (p2, q2) = proto.delta(p, q);
                let mut next = cfg.clone();
                next[p.index()] -= 1;
                next[q.index()] -= 1;
                next[p2.index()] += 1;
                next[q2.index()] += 1;
                if seen.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
        true
    }
}

/// Exact target signature on the count vector.
///
/// `fixed[s] = Some(c)` requires `counts[s] == c`; states not fixed must be
/// covered by a *pool*: a set of states whose counts must sum to a given
/// value (e.g. "exactly one agent in `{initial, initial'}`" for the
/// `n mod k = 1` case of Lemma 6).
#[derive(Clone, Debug)]
pub struct Signature {
    fixed: Vec<Option<u64>>,
    pools: Vec<(Vec<StateId>, u64)>,
}

impl Signature {
    /// Build a signature. Every state must either appear in `fixed` (as
    /// `Some`) or belong to exactly one pool; unconstrained states would
    /// make the predicate vacuous, so they are rejected.
    pub fn new(fixed: Vec<Option<u64>>, pools: Vec<(Vec<StateId>, u64)>) -> Self {
        let mut covered: Vec<bool> = fixed.iter().map(Option::is_some).collect();
        for (states, _) in &pools {
            for s in states {
                assert!(
                    !covered[s.index()],
                    "state {s:?} constrained twice in stability signature"
                );
                covered[s.index()] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "every state must be constrained by a stability signature"
        );
        Signature { fixed, pools }
    }

    /// Signature requiring exactly the given counts (no pools).
    pub fn exact(counts: Vec<u64>) -> Self {
        Signature {
            fixed: counts.into_iter().map(Some).collect(),
            pools: Vec::new(),
        }
    }

    /// Check the signature directly against a count vector.
    pub fn matches(&self, counts: &[u64]) -> bool {
        debug_assert_eq!(counts.len(), self.fixed.len());
        for (c, f) in counts.iter().zip(&self.fixed) {
            if let Some(want) = f {
                if c != want {
                    return false;
                }
            }
        }
        self.pools
            .iter()
            .all(|(states, want)| states.iter().map(|s| counts[s.index()]).sum::<u64>() == *want)
    }
}

impl StabilityCriterion for Signature {
    #[inline]
    fn is_stable(&self, _proto: &CompiledProtocol, counts: &[u64]) -> bool {
        self.matches(counts)
    }
}

/// Never stable — run until the interaction limit.
#[derive(Clone, Copy, Debug, Default)]
pub struct Never;

impl StabilityCriterion for Never {
    #[inline(always)]
    fn is_stable(&self, _proto: &CompiledProtocol, _counts: &[u64]) -> bool {
        false
    }
}

/// Stable when *either* criterion fires; records nothing.
#[derive(Clone, Copy, Debug)]
pub struct Either<A, B>(
    /// First criterion.
    pub A,
    /// Second criterion.
    pub B,
);

impl<A: StabilityCriterion, B: StabilityCriterion> StabilityCriterion for Either<A, B> {
    #[inline]
    fn is_stable(&self, proto: &CompiledProtocol, counts: &[u64]) -> bool {
        self.0.is_stable(proto, counts) || self.1.is_stable(proto, counts)
    }
}

/// Convenience: evaluate a criterion against a [`CountPopulation`].
pub fn is_stable<C: StabilityCriterion>(
    crit: &C,
    proto: &CompiledProtocol,
    pop: &CountPopulation,
) -> bool {
    crit.is_stable(proto, pop.counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    /// Epidemic with a "refractory flip": (I, I) -> (J, J), (J, J) -> (I, I)
    /// where I and J are both group 2. Once everyone is infected the
    /// population keeps flipping between I and J — never silent, but group
    /// membership is fixed.
    fn flipping_epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("flip");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        let j = spec.add_state("J", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.add_rule_symmetric(j, s, j, j);
        spec.add_rule(i, i, j, j);
        spec.add_rule(j, j, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn silent_detects_sinks_only() {
        let p = flipping_epidemic();
        // counts: [S, I, J]
        assert!(!Silent.is_stable(&p, &[3, 1, 0])); // infection enabled
        assert!(!Silent.is_stable(&p, &[0, 2, 0])); // flip enabled
        assert!(Silent.is_stable(&p, &[0, 1, 1])); // (I, J) is identity
        assert!(Silent.is_stable(&p, &[0, 1, 0])); // single agent
        assert!(Silent.is_stable(&p, &[1, 0, 0])); // lone susceptible
    }

    #[test]
    fn group_closure_sees_through_flips() {
        let p = flipping_epidemic();
        // All infected, flipping forever: group-stable but not silent.
        assert!(GroupClosure::default().is_stable(&p, &[0, 4, 0]));
        assert!(!Silent.is_stable(&p, &[0, 4, 0]));
        // One susceptible left: infection will change its group.
        assert!(!GroupClosure::default().is_stable(&p, &[1, 3, 0]));
    }

    #[test]
    fn group_closure_rejects_latent_instability() {
        // Protocol where the group change is two hops away:
        // (a, a) -> (b, b) keeps group 1; (b, b) -> (c, c) moves to group 2.
        let mut spec = ProtocolSpec::new("latent");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, c, c);
        let p = spec.compile().unwrap();
        // No group-changing transition is *currently* enabled at [2,0,0],
        // but one becomes enabled after the (a,a) flip.
        assert!(!GroupClosure::default().is_stable(&p, &[2, 0, 0]));
        assert!(GroupClosure::default().is_stable(&p, &[1, 1, 0]));
        let _ = (a, b, c);
    }

    #[test]
    fn signature_pools() {
        let p = flipping_epidemic();
        let i = p.state_by_name("I").unwrap();
        let j = p.state_by_name("J").unwrap();
        let sig = Signature::new(vec![Some(0), None, None], vec![(vec![i, j], 4)]);
        assert!(sig.is_stable(&p, &[0, 4, 0]));
        assert!(sig.is_stable(&p, &[0, 1, 3]));
        assert!(!sig.is_stable(&p, &[0, 3, 0]));
        assert!(!sig.is_stable(&p, &[1, 3, 1]));
    }

    #[test]
    fn signature_exact() {
        let sig = Signature::exact(vec![1, 2, 3]);
        assert!(sig.matches(&[1, 2, 3]));
        assert!(!sig.matches(&[1, 2, 4]));
    }

    #[test]
    #[should_panic(expected = "constrained twice")]
    fn signature_rejects_double_constraint() {
        Signature::new(vec![Some(0), Some(1)], vec![(vec![StateId(1)], 1)]);
    }

    #[test]
    #[should_panic(expected = "must be constrained")]
    fn signature_rejects_unconstrained_state() {
        Signature::new(vec![Some(0), None], vec![]);
    }

    #[test]
    fn either_combines() {
        let p = flipping_epidemic();
        let sig = Signature::exact(vec![9, 9, 9]);
        let both = Either(sig, Silent);
        assert!(both.is_stable(&p, &[0, 1, 1])); // silent side
        assert!(both.is_stable(&p, &[9, 9, 9])); // signature side
        assert!(!both.is_stable(&p, &[1, 1, 0]));
    }

    #[test]
    fn never_is_never_stable() {
        let p = flipping_epidemic();
        assert!(!Never.is_stable(&p, &[0, 0, 0]));
    }

    #[test]
    fn enabled_pairs_respects_multiplicity() {
        let pairs: Vec<_> = enabled_pairs(&[1, 2]).collect();
        // (0,0) needs two agents in state 0 -> absent.
        assert!(!pairs.contains(&(StateId(0), StateId(0))));
        assert!(pairs.contains(&(StateId(0), StateId(1))));
        assert!(pairs.contains(&(StateId(1), StateId(0))));
        assert!(pairs.contains(&(StateId(1), StateId(1))));
    }
}
