//! # pp-engine — a population protocol simulation engine
//!
//! This crate implements the computational substrate used by the paper
//! *"A Population Protocol for Uniform k-partition under Global Fairness"*
//! (Yasumi, Kitamura, Ooshita, Izumi, Inoue; IJNC 9(1), 2019): a simulator
//! for population protocols in the model of Angluin et al., where a
//! population of `n` anonymous, finite-state agents repeatedly performs
//! pairwise interactions chosen by a scheduler, and each interaction updates
//! the two participants' states through a deterministic transition function
//! `δ : Q × Q → Q × Q`.
//!
//! ## Architecture
//!
//! * [`spec`] — declarative protocol descriptions: named states, transition
//!   rules, an output map `f : Q → {1..k}` assigning each state to a group.
//! * [`protocol`] — [`protocol::CompiledProtocol`], a dense `|Q| × |Q|`
//!   transition table with precomputed identity/group-changing masks and
//!   structural property checks (determinism is structural, symmetry is
//!   verified).
//! * [`population`] — two interchangeable population representations:
//!   [`population::CountPopulation`] (a count vector over states; exact for
//!   complete interaction graphs because agents are anonymous) and
//!   [`population::AgentPopulation`] (one state per agent; supports
//!   per-agent traces, fault injection, and arbitrary interaction graphs).
//! * [`scheduler`] — interaction schedulers. The paper's evaluation uses the
//!   uniform-random-pair scheduler, which satisfies global fairness with
//!   probability 1 on infinite executions.
//! * [`stability`] — criteria deciding when a configuration is *stable*
//!   (the paper's convergence metric is "number of interactions until a
//!   stable configuration").
//! * [`simulator`] — the execution driver, with an [`observer`] hook for
//!   recording events such as group-completion times. Offers a naive
//!   one-interaction-per-step loop, a [`leap`] kernel that skips identity
//!   interactions in closed form, and a tau-leap [`batch`] kernel that
//!   fires whole batches of rules per step (with a [`fleet`] runner
//!   advancing many trials in lockstep).
//! * [`trace`] — scripted executions and human-readable configuration
//!   pretty-printing (used to replay the paper's Figures 1 and 2).
//! * [`seeds`] — deterministic seed derivation for reproducible experiment
//!   fan-out.
//!
//! ## Quick example
//!
//! ```
//! use pp_engine::spec::ProtocolSpec;
//! use pp_engine::population::{CountPopulation, Population};
//! use pp_engine::scheduler::UniformRandomScheduler;
//! use pp_engine::simulator::Simulator;
//! use pp_engine::stability::Silent;
//!
//! // A toy 2-state "epidemic" protocol: (S, I) -> (I, I).
//! let mut spec = ProtocolSpec::new("epidemic");
//! let s = spec.add_state("S", 1);
//! let i = spec.add_state("I", 2);
//! spec.set_initial(s);
//! spec.add_rule(i, s, i, i);
//! spec.add_rule(s, i, i, i);
//! let proto = spec.compile().unwrap();
//!
//! let mut pop = CountPopulation::new(&proto, 50);
//! pop.set_count(s, 49);
//! pop.set_count(i, 1);
//! let mut sched = UniformRandomScheduler::from_seed(7);
//! let result = Simulator::new(&proto)
//!     .run(&mut pop, &mut sched, &Silent, 1_000_000)
//!     .unwrap();
//! assert_eq!(pop.count(i), 50);
//! assert!(result.interactions > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod batch;
pub mod dot;
pub mod fleet;
pub mod leap;
pub mod metrics;
pub mod observer;
pub mod phase;
pub mod population;
pub mod protocol;
pub mod scheduler;
pub mod seeds;
pub mod simulator;
pub mod spec;
pub mod stability;
pub mod trace;

pub use batch::{BatchConfig, BatchCore, BatchTrial, Scratch, StepOutcome};
pub use fleet::{run_batch_fleet, FleetSummary};
pub use metrics::{engine_metrics, EngineMetrics, TelemetryObserver};
pub use phase::{Phase, PhaseMap, PhaseProbe};
pub use population::{AgentPopulation, CountPopulation, Population};
pub use protocol::{CompiledProtocol, GroupId, RuleId, StateId};
pub use scheduler::UniformRandomScheduler;
pub use simulator::{FixedRunSummary, RunError, RunResult, Simulator};
pub use spec::ProtocolSpec;
