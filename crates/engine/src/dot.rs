//! GraphViz (DOT) export for protocols and configuration graphs.
//!
//! Two views matter when studying a protocol like uniform k-partition:
//!
//! * the **rule graph** ([`protocol_dot`]) — states as nodes (clustered
//!   by group under `f`), one edge per non-identity ordered rule,
//!   labelled with the partner state: the paper's Algorithm 1 as a
//!   picture;
//! * the **configuration graph** ([`config_graph_dot`], fed by
//!   `pp-verify`) — configurations as nodes, transitions as edges,
//!   terminal/stable nodes highlighted: the object global fairness
//!   quantifies over.
//!
//! Both emit plain DOT text; render with `dot -Tsvg`.

use crate::protocol::CompiledProtocol;
use std::fmt::Write as _;

/// Render the protocol's non-identity rules as a DOT digraph.
///
/// Each non-identity ordered rule `(p, q) → (p2, q2)` contributes an edge
/// `p → p2` labelled `"q / q2"` (what the partner was and became). States
/// are grouped into clusters by their `f` value, so the k groups of a
/// partition protocol appear as k boxes.
pub fn protocol_dot(proto: &CompiledProtocol) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", proto.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=11];");

    // Clusters by group.
    for g in 1..=proto.num_groups() {
        let members: Vec<_> = proto
            .states()
            .filter(|&s| proto.group_of(s).number() == g)
            .collect();
        if members.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_g{g} {{");
        let _ = writeln!(out, "    label=\"group {g}\"; style=dashed;");
        for s in members {
            let shape = if s == proto.initial_state() {
                ", shape=doublecircle"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{}\" [label=\"{}\"{shape}];",
                proto.state_name(s),
                proto.state_name(s)
            );
        }
        let _ = writeln!(out, "  }}");
    }

    for (p, q, p2, q2) in proto.non_identity_rules() {
        if p2 != p {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{} / {}\", fontsize=9];",
                proto.state_name(p),
                proto.state_name(p2),
                proto.state_name(q),
                proto.state_name(q2),
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Render a configuration graph (nodes given as pretty-printed labels and
/// edges as index pairs) as DOT. `stable` marks nodes to highlight.
///
/// This is deliberately decoupled from `pp-verify`'s `ConfigGraph` type
/// (which lives downstream of this crate); callers pass the pieces:
///
/// ```
/// use pp_engine::dot::config_graph_dot;
/// let dot = config_graph_dot(
///     "mini",
///     &["3·a".to_string(), "1·a 2·b".to_string()],
///     &[(0, 1)],
///     &[false, true],
/// );
/// assert!(dot.contains("\"c0\" -> \"c1\""));
/// ```
pub fn config_graph_dot(
    name: &str,
    labels: &[String],
    edges: &[(u32, u32)],
    stable: &[bool],
) -> String {
    assert_eq!(labels.len(), stable.len());
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for (i, label) in labels.iter().enumerate() {
        let style = if stable[i] {
            ", style=filled, fillcolor=lightgreen"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"c{i}\" [label=\"{label}\"{style}];");
    }
    for &(a, b) in edges {
        let _ = writeln!(out, "  \"c{a}\" -> \"c{b}\";");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    fn toy() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("toy");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, b, b, b);
        spec.compile().unwrap()
    }

    #[test]
    fn protocol_dot_contains_states_rules_and_clusters() {
        let dot = protocol_dot(&toy());
        assert!(dot.starts_with("digraph \"toy\""));
        assert!(dot.contains("subgraph cluster_g1"));
        assert!(dot.contains("subgraph cluster_g2"));
        assert!(dot.contains("doublecircle")); // initial state marker
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn protocol_dot_omits_identity_rules() {
        let dot = protocol_dot(&toy());
        // b never changes state: no outgoing edge from b.
        assert!(!dot.contains("\"b\" -> "));
    }

    #[test]
    fn config_graph_dot_marks_stable_nodes() {
        let dot = config_graph_dot(
            "g",
            &["x".into(), "y".into()],
            &[(0, 1), (1, 1)],
            &[false, true],
        );
        assert!(dot.contains("\"c1\" [label=\"y\", style=filled"));
        assert!(dot.contains("\"c0\" -> \"c1\""));
        assert!(dot.contains("\"c1\" -> \"c1\""));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        config_graph_dot("g", &["x".into()], &[], &[true, false]);
    }
}
