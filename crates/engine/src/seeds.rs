//! Deterministic seed derivation.
//!
//! Experiments fan out into many independent trials (the paper runs 100
//! per data point). Each trial must get a statistically independent RNG
//! stream, and the whole experiment must be reproducible from one recorded
//! master seed. [`derive()`] maps `(master, index)` to a trial seed with a
//! SplitMix64 finaliser — the standard well-mixed 64-bit permutation — so
//! trial seeds are decorrelated even for adjacent indices.

/// SplitMix64 finalisation step: a bijective avalanche mix on 64 bits.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for trial `index` of an experiment with the given
/// `master` seed.
#[inline]
pub fn derive(master: u64, index: u64) -> u64 {
    // Two rounds: one to spread the master, one to mix in the index.
    splitmix64(splitmix64(master).wrapping_add(index))
}

/// Derive a sub-experiment master from a master seed and a label hash —
/// used when one experiment sweeps several (n, k) cells and each cell runs
/// its own batch of trials.
#[inline]
pub fn derive_labelled(master: u64, label_a: u64, label_b: u64) -> u64 {
    splitmix64(derive(master, label_a).wrapping_add(splitmix64(label_b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, 7), derive(42, 7));
        assert_eq!(derive_labelled(42, 7, 9), derive_labelled(42, 7, 9));
    }

    #[test]
    fn derive_separates_indices() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| derive(123, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn derive_separates_masters() {
        assert_ne!(derive(1, 0), derive(2, 0));
        assert_ne!(derive_labelled(1, 2, 3), derive_labelled(1, 3, 2));
    }

    #[test]
    fn splitmix_avalanche_changes_many_bits() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0);
        let b = splitmix64(1);
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "{differing} bits differ");
    }
}
